//! A thread-level BSP (bulk-synchronous parallel) block executor: the
//! reference interpretation of the SIMT model.
//!
//! The production kernels in this workspace are *vectorized* — they
//! process data warp-by-warp with explicit loops, which is fast on the
//! host. This module provides the slow-but-obviously-correct
//! counterpart: a block of simulated threads, each defined by a
//! closure, executed in lockstep **phases** separated by barriers
//! (`__syncthreads`). Warp-wide intrinsics and shared-memory atomics
//! are exposed per phase, with the same exact collision accounting as
//! the vectorized path.
//!
//! Its role is cross-validation: tests run small kernels through both
//! implementations and require bit-identical results and identical
//! collision counts (see `count.rs`'s tests in the `sampleselect`
//! crate and the tests below).
//!
//! Two features support the differential conformance suite:
//!
//! * a [`WarpSchedule`] — phases may execute warps in deterministic
//!   order or in a seed-shuffled order. A data-race-free kernel must
//!   produce bit-identical results under every schedule;
//! * an opt-in SIMT sanitizer ([`BlockExec::with_sanitizer`]) that
//!   tracks per-phase shared-memory access sets and reports races,
//!   barrier divergence, uninitialized reads, out-of-bounds accesses,
//!   and mixed atomic/plain access as structured
//!   [`SanitizerFinding`]s instead of panicking.

use std::fmt;

use crate::cost::KernelCost;
use crate::sanitizer::{SanitizerConfig, SanitizerFinding, SanitizerKind, SanitizerReport};
use crate::warp::{ballot, warp_atomic_stats, WARP_SIZE};

/// The order in which a phase visits the block's warps.
///
/// Lanes always run in lane order within their warp (SIMT lockstep);
/// the *warp* interleaving is what real hardware never guarantees, so
/// the conformance suite runs kernels under both variants and requires
/// bit-identical results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WarpSchedule {
    /// Warps run in ascending id order (the legacy behaviour).
    #[default]
    Sequential,
    /// Warps run in a deterministic pseudo-random permutation derived
    /// from the seed (Fisher–Yates over a SplitMix64 stream).
    Shuffled { seed: u64 },
}

/// A rejected shared-memory access: index past the block's allocation.
///
/// Returned by the checked accessors [`BlockExec::try_smem_read`] /
/// [`BlockExec::try_smem_write`]. The infallible wrappers panic with
/// this message when no sanitizer is installed, and degrade to a
/// recorded [`SanitizerKind::OutOfBounds`] finding (read-as-zero /
/// dropped write) when one is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SmemAccessError {
    /// The offending word index.
    pub index: usize,
    /// The block's shared-memory size in words.
    pub len: usize,
    /// True for a write, false for a read.
    pub write: bool,
}

impl fmt::Display for SmemAccessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "shared-memory {} out of bounds: word {} in a {}-word block",
            if self.write { "write" } else { "read" },
            self.index,
            self.len
        )
    }
}

impl std::error::Error for SmemAccessError {}

const NO_TID: u32 = u32::MAX;

/// Per-block sanitizer tracking state: per-phase access sets over the
/// shared words, a persistent init map, and per-thread barrier counts.
struct SanState {
    cfg: SanitizerConfig,
    findings: Vec<SanitizerFinding>,
    truncated: u64,
    accesses: u64,
    /// Thread that wrote each word this phase (`NO_TID` = none).
    writer: Vec<u32>,
    /// First thread that read each word this phase (`NO_TID` = none).
    reader: Vec<u32>,
    /// Word was atomically accessed this phase.
    atomic: Vec<bool>,
    /// Word has ever been written (persists across phases).
    init: Vec<bool>,
    /// Words touched this phase, for cheap per-phase reset.
    touched: Vec<usize>,
    /// Conditional barriers executed per thread this phase.
    thread_barriers: Vec<u64>,
    phase_index: u64,
}

impl SanState {
    fn new(cfg: SanitizerConfig, num_threads: usize, shared_words: usize) -> Self {
        Self {
            cfg,
            findings: Vec::new(),
            truncated: 0,
            accesses: 0,
            writer: vec![NO_TID; shared_words],
            reader: vec![NO_TID; shared_words],
            atomic: vec![false; shared_words],
            init: vec![false; shared_words],
            touched: Vec::new(),
            thread_barriers: vec![0; num_threads],
            phase_index: 0,
        }
    }

    fn record(
        &mut self,
        kind: SanitizerKind,
        index: usize,
        thread: Option<u32>,
        other_thread: Option<u32>,
    ) {
        if self.findings.len() >= self.cfg.max_findings {
            self.truncated += 1;
            return;
        }
        self.findings.push(SanitizerFinding {
            kind,
            index,
            phase: self.phase_index,
            thread,
            other_thread,
            context: "smem".to_string(),
        });
    }

    fn touch(&mut self, idx: usize) {
        if self.writer[idx] == NO_TID && self.reader[idx] == NO_TID && !self.atomic[idx] {
            self.touched.push(idx);
        }
    }

    /// An in-bounds read by `tid` (None = host-side access outside any
    /// phase, which is exempt from race and init tracking).
    fn track_read(&mut self, idx: usize, tid: Option<usize>) {
        self.accesses += 1;
        let Some(tid) = tid else { return };
        let tid = tid as u32;
        if self.cfg.uninit && !self.init[idx] {
            self.record(SanitizerKind::UninitRead, idx, Some(tid), None);
        }
        if self.cfg.races && self.writer[idx] != NO_TID && self.writer[idx] != tid {
            let other = self.writer[idx];
            self.record(SanitizerKind::ReadWriteRace, idx, Some(tid), Some(other));
        }
        if self.cfg.atomics && self.atomic[idx] {
            self.record(SanitizerKind::MixedAtomic, idx, Some(tid), None);
        }
        self.touch(idx);
        if self.reader[idx] == NO_TID {
            self.reader[idx] = tid;
        }
    }

    /// An in-bounds write by `tid` (None = host-side setup, exempt from
    /// race tracking but still marks the word initialized).
    fn track_write(&mut self, idx: usize, tid: Option<usize>) {
        self.accesses += 1;
        let Some(tid) = tid else {
            self.init[idx] = true;
            return;
        };
        let tid = tid as u32;
        if self.cfg.races && self.writer[idx] != NO_TID && self.writer[idx] != tid {
            let other = self.writer[idx];
            self.record(SanitizerKind::WriteWriteRace, idx, Some(tid), Some(other));
        }
        if self.cfg.races && self.reader[idx] != NO_TID && self.reader[idx] != tid {
            let other = self.reader[idx];
            self.record(SanitizerKind::ReadWriteRace, idx, Some(tid), Some(other));
        }
        if self.cfg.atomics && self.atomic[idx] {
            self.record(SanitizerKind::MixedAtomic, idx, Some(tid), None);
        }
        self.touch(idx);
        self.writer[idx] = tid;
        self.init[idx] = true;
    }

    /// An atomic access to `idx` (warp-granular; no single thread id).
    fn track_atomic(&mut self, idx: usize) {
        self.accesses += 1;
        if self.cfg.atomics && (self.writer[idx] != NO_TID || self.reader[idx] != NO_TID) {
            let other = if self.writer[idx] != NO_TID {
                self.writer[idx]
            } else {
                self.reader[idx]
            };
            self.record(SanitizerKind::MixedAtomic, idx, None, Some(other));
        }
        self.touch(idx);
        self.atomic[idx] = true;
        self.init[idx] = true;
    }

    fn oob(&mut self, idx: usize, tid: Option<usize>) {
        if self.cfg.bounds {
            self.record(SanitizerKind::OutOfBounds, idx, tid.map(|t| t as u32), None);
        }
    }

    /// Close the current barrier interval: check conditional-barrier
    /// convergence and clear the per-phase access sets.
    fn end_phase(&mut self) {
        if self.cfg.barriers {
            let min = self.thread_barriers.iter().copied().min().unwrap_or(0);
            let max = self.thread_barriers.iter().copied().max().unwrap_or(0);
            if min != max {
                let hi = self.thread_barriers.iter().position(|&b| b == max);
                let lo = self.thread_barriers.iter().position(|&b| b == min);
                self.record(
                    SanitizerKind::BarrierDivergence,
                    max as usize,
                    hi.map(|t| t as u32),
                    lo.map(|t| t as u32),
                );
            }
        }
        for &idx in &self.touched {
            self.writer[idx] = NO_TID;
            self.reader[idx] = NO_TID;
            self.atomic[idx] = false;
        }
        self.touched.clear();
        self.thread_barriers.iter_mut().for_each(|b| *b = 0);
        self.phase_index += 1;
    }

    fn report(&self) -> SanitizerReport {
        SanitizerReport {
            findings: self.findings.clone(),
            truncated: self.truncated,
            phases: self.phase_index,
            accesses: self.accesses,
        }
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A simulated thread block executing in BSP phases.
///
/// Threads do not run concurrently; each *phase* is a closure invoked
/// once per thread, and phases are separated by implicit barriers. This
/// models any CUDA kernel of the form
/// `phase; __syncthreads(); phase; …` — which covers every kernel in
/// the paper.
pub struct BlockExec {
    num_threads: usize,
    /// Shared memory as 32-bit words (the granularity of the paper's
    /// counters; element payloads use their own typed arrays).
    shared_u32: Vec<u32>,
    /// Resource usage accrued by this block.
    pub cost: KernelCost,
    barriers: u64,
    schedule: WarpSchedule,
    /// Thread currently executing inside a phase closure; `None`
    /// between phases (host-style setup and readback).
    current_tid: Option<usize>,
    san: Option<Box<SanState>>,
}

impl BlockExec {
    /// Create a block of `num_threads` threads with `shared_words`
    /// 32-bit words of shared memory (zero-initialized).
    pub fn new(num_threads: usize, shared_words: usize) -> Self {
        assert!(
            num_threads > 0 && num_threads.is_multiple_of(WARP_SIZE),
            "thread blocks are whole warps"
        );
        let mut cost = KernelCost::new();
        cost.blocks = 1;
        Self {
            num_threads,
            shared_u32: vec![0; shared_words],
            cost,
            barriers: 0,
            schedule: WarpSchedule::Sequential,
            current_tid: None,
            san: None,
        }
    }

    /// Create a block with the SIMT sanitizer armed: shared-memory
    /// accesses are tracked per phase and violations are recorded as
    /// [`SanitizerFinding`]s (retrieved via
    /// [`BlockExec::take_sanitizer_report`]) instead of panicking.
    pub fn with_sanitizer(num_threads: usize, shared_words: usize, cfg: SanitizerConfig) -> Self {
        let mut block = Self::new(num_threads, shared_words);
        block.san = Some(Box::new(SanState::new(cfg, num_threads, shared_words)));
        block
    }

    /// Set the warp execution order used by subsequent phases.
    pub fn set_schedule(&mut self, schedule: WarpSchedule) {
        self.schedule = schedule;
    }

    pub fn schedule(&self) -> WarpSchedule {
        self.schedule
    }

    pub fn num_threads(&self) -> usize {
        self.num_threads
    }

    pub fn num_warps(&self) -> usize {
        self.num_threads / WARP_SIZE
    }

    /// Whether the sanitizer is armed on this block.
    pub fn sanitizer_enabled(&self) -> bool {
        self.san.is_some()
    }

    /// Snapshot of the sanitizer's findings so far (None when the
    /// sanitizer is not armed).
    pub fn sanitizer_report(&self) -> Option<SanitizerReport> {
        self.san.as_ref().map(|s| s.report())
    }

    /// Take the sanitizer's findings, leaving the tracking state armed
    /// but empty.
    pub fn take_sanitizer_report(&mut self) -> Option<SanitizerReport> {
        self.san.as_mut().map(|s| {
            let report = s.report();
            s.findings.clear();
            s.truncated = 0;
            s.accesses = 0;
            report
        })
    }

    /// The warp visit order for one phase under the current schedule.
    fn warp_order(&mut self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.num_warps()).collect();
        if let WarpSchedule::Shuffled { seed } = self.schedule {
            // Mix the barrier count in so each phase gets its own
            // permutation while staying reproducible for a given seed.
            let mut state = seed ^ (self.barriers.wrapping_mul(0xA24B_AED4_963E_E407));
            for i in (1..order.len()).rev() {
                let j = (splitmix64(&mut state) % (i as u64 + 1)) as usize;
                order.swap(i, j);
            }
        }
        order
    }

    /// Read shared memory (tracked), reporting out-of-bounds instead of
    /// panicking.
    pub fn try_smem_read(&mut self, idx: usize) -> Result<u32, SmemAccessError> {
        self.cost.smem_bytes += 4;
        if idx >= self.shared_u32.len() {
            let err = SmemAccessError {
                index: idx,
                len: self.shared_u32.len(),
                write: false,
            };
            if let Some(san) = self.san.as_mut() {
                san.oob(idx, self.current_tid);
            }
            return Err(err);
        }
        if let Some(san) = self.san.as_mut() {
            san.track_read(idx, self.current_tid);
        }
        Ok(self.shared_u32[idx])
    }

    /// Write shared memory (tracked), reporting out-of-bounds instead
    /// of panicking.
    pub fn try_smem_write(&mut self, idx: usize, value: u32) -> Result<(), SmemAccessError> {
        self.cost.smem_bytes += 4;
        if idx >= self.shared_u32.len() {
            let err = SmemAccessError {
                index: idx,
                len: self.shared_u32.len(),
                write: true,
            };
            if let Some(san) = self.san.as_mut() {
                san.oob(idx, self.current_tid);
            }
            return Err(err);
        }
        if let Some(san) = self.san.as_mut() {
            san.track_write(idx, self.current_tid);
        }
        self.shared_u32[idx] = value;
        Ok(())
    }

    /// Read shared memory (tracked). Out of bounds: a sanitizer finding
    /// and zero when the sanitizer is armed, a panic otherwise.
    pub fn smem_read(&mut self, idx: usize) -> u32 {
        match self.try_smem_read(idx) {
            Ok(v) => v,
            Err(err) => {
                if self.san.is_some() {
                    0
                } else {
                    panic!("{err}");
                }
            }
        }
    }

    /// Write shared memory (tracked). Out of bounds: a sanitizer
    /// finding and a dropped write when the sanitizer is armed, a panic
    /// otherwise.
    pub fn smem_write(&mut self, idx: usize, value: u32) {
        if let Err(err) = self.try_smem_write(idx, value) {
            if self.san.is_none() {
                panic!("{err}");
            }
        }
    }

    /// Untracked view for result extraction.
    pub fn shared(&self) -> &[u32] {
        &self.shared_u32
    }

    /// Run one phase: `f(tid, block)` for every thread, followed by an
    /// implicit barrier. Warps are visited in the order given by the
    /// current [`WarpSchedule`]; lanes run in lane order.
    ///
    /// Sequential execution per phase is faithful for programs whose
    /// phases are data-race-free (each shared location written by at
    /// most one thread per phase, or only through the atomic helpers) —
    /// a contract the sanitizer, when armed, checks instead of assumes.
    pub fn phase<F>(&mut self, mut f: F)
    where
        F: FnMut(usize, &mut BlockExec),
    {
        for warp in self.warp_order() {
            for lane in 0..WARP_SIZE {
                let tid = warp * WARP_SIZE + lane;
                self.current_tid = Some(tid);
                f(tid, self);
            }
        }
        self.current_tid = None;
        self.barrier();
    }

    /// A warp-synchronous phase: `f(warp_id, lane_values)` receives each
    /// warp's 32 per-lane values produced by `lane(tid)` and returns the
    /// per-lane results; used to model ballot/shuffle-style exchanges.
    pub fn warp_phase<L, F, T: Copy + Default>(&mut self, mut lane: L, mut f: F) -> Vec<T>
    where
        L: FnMut(usize, &mut BlockExec) -> T,
        F: FnMut(usize, &[T], &mut BlockExec) -> Vec<T>,
    {
        let mut out = vec![T::default(); self.num_threads];
        for warp in self.warp_order() {
            let base = warp * WARP_SIZE;
            let values: Vec<T> = (0..WARP_SIZE)
                .map(|l| {
                    self.current_tid = Some(base + l);
                    lane(base + l, self)
                })
                .collect();
            self.current_tid = None;
            let results = f(warp, &values, self);
            assert_eq!(results.len(), WARP_SIZE);
            out[base..base + WARP_SIZE].copy_from_slice(&results);
        }
        self.current_tid = None;
        self.barrier();
        out
    }

    /// Warp-wide ballot across one warp's predicate values, charged as
    /// one intrinsic.
    pub fn warp_ballot(&mut self, preds: &[bool]) -> u32 {
        self.cost.warp_intrinsics += 1;
        ballot(preds)
    }

    /// Execute one warp-wide shared-memory atomic-add instruction: each
    /// lane increments `counter_base + targets[lane]`. Returns each
    /// lane's fetched-before value; charges the exact collision cost.
    ///
    /// With the sanitizer armed, out-of-bounds lanes are recorded as
    /// findings and skipped (fetch value 0), and mixing these atomics
    /// with plain accesses to the same word within one barrier interval
    /// is reported as [`SanitizerKind::MixedAtomic`].
    pub fn warp_shared_atomic_add(&mut self, counter_base: usize, targets: &[u32]) -> Vec<u32> {
        assert!(targets.len() <= WARP_SIZE);
        let len = self.shared_u32.len();
        let in_bounds: Vec<u32> = targets
            .iter()
            .copied()
            .filter(|&t| counter_base + (t as usize) < len)
            .collect();
        let mut scratch = vec![0u32; len];
        let stats = warp_atomic_stats(&in_bounds, &mut scratch);
        self.cost.shared_atomic_warp_ops += 1;
        self.cost.shared_atomic_replays += stats.max_multiplicity.saturating_sub(1) as u64;
        // lanes commit in lane order (hardware order is unspecified; any
        // serialization yields the same final counter values)
        targets
            .iter()
            .map(|&t| {
                let slot = counter_base + t as usize;
                if slot >= len {
                    if let Some(san) = self.san.as_mut() {
                        san.oob(slot, self.current_tid);
                        return 0;
                    }
                    panic!("shared-memory atomic out of bounds: word {slot} in a {len}-word block");
                }
                if let Some(san) = self.san.as_mut() {
                    san.track_atomic(slot);
                }
                let old = self.shared_u32[slot];
                self.shared_u32[slot] = old + 1;
                old
            })
            .collect()
    }

    /// Block-wide barrier (`__syncthreads`), charged as an intrinsic.
    /// Ends the current sanitizer phase: conditional-barrier divergence
    /// is checked and the per-phase access sets are cleared.
    pub fn barrier(&mut self) {
        self.barriers += 1;
        self.cost.warp_intrinsics += 1;
        if let Some(san) = self.san.as_mut() {
            san.end_phase();
        }
    }

    /// A *conditional* barrier executed by the current thread inside a
    /// phase closure. Correct kernels execute the same number per
    /// thread per phase; the sanitizer reports
    /// [`SanitizerKind::BarrierDivergence`] otherwise.
    pub fn thread_barrier(&mut self) {
        self.cost.warp_intrinsics += 1;
        if let (Some(san), Some(tid)) = (self.san.as_mut(), self.current_tid) {
            san.thread_barriers[tid] += 1;
        }
    }

    /// Barriers executed so far.
    pub fn barriers(&self) -> u64 {
        self.barriers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_run_every_thread_once() {
        let mut block = BlockExec::new(64, 64);
        block.phase(|tid, b| {
            b.smem_write(tid, tid as u32 * 2);
        });
        for tid in 0..64 {
            assert_eq!(block.shared()[tid], tid as u32 * 2);
        }
        assert_eq!(block.barriers(), 1);
    }

    #[test]
    #[should_panic(expected = "whole warps")]
    fn partial_warp_blocks_rejected() {
        BlockExec::new(33, 0);
    }

    #[test]
    fn histogram_kernel_thread_style() {
        // The count kernel's inner loop written thread-style: 128
        // threads classify one element each into 8 counters.
        let mut block = BlockExec::new(128, 8);
        let data: Vec<u32> = (0..128).map(|i| (i * 13) % 8).collect();
        for warp in 0..4 {
            let targets: Vec<u32> = (0..WARP_SIZE).map(|l| data[warp * 32 + l]).collect();
            block.warp_shared_atomic_add(0, &targets);
        }
        // counters hold the histogram
        let mut expected = [0u32; 8];
        for &d in &data {
            expected[d as usize] += 1;
        }
        assert_eq!(block.shared()[..8], expected[..]);
        assert_eq!(block.cost.shared_atomic_warp_ops, 4);
        // 128 elements over 8 counters: each warp has max multiplicity 4
        assert_eq!(block.cost.shared_atomic_replays, 4 * 3);
    }

    #[test]
    fn atomic_add_returns_fetch_order_values() {
        let mut block = BlockExec::new(32, 4);
        let olds = block.warp_shared_atomic_add(0, &[1, 1, 1, 2]);
        assert_eq!(olds, vec![0, 1, 2, 0]);
        assert_eq!(block.shared()[1], 3);
        assert_eq!(block.shared()[2], 1);
    }

    #[test]
    fn warp_phase_exposes_lane_values() {
        let mut block = BlockExec::new(64, 0);
        let results = block.warp_phase(
            |tid, _| tid as u32,
            |_warp, lanes, b| {
                // ballot of "odd lane value"
                let preds: Vec<bool> = lanes.iter().map(|&v| v % 2 == 1).collect();
                let mask = b.warp_ballot(&preds);
                lanes.iter().map(|_| mask).collect()
            },
        );
        // odd lanes of every warp: alternating bits
        assert!(results.iter().all(|&m| m == 0xAAAA_AAAA));
        assert_eq!(block.cost.warp_intrinsics, 2 + 1); // 2 ballots + 1 barrier
    }

    #[test]
    fn cost_matches_vectorized_accounting() {
        // All 32 lanes hit one counter: 1 warp op + 31 replays — exactly
        // what the vectorized count kernel charges for the same warp.
        let mut block = BlockExec::new(32, 1);
        block.warp_shared_atomic_add(0, &[0; 32]);
        assert_eq!(block.cost.shared_atomic_warp_ops, 1);
        assert_eq!(block.cost.shared_atomic_replays, 31);
        assert_eq!(block.shared()[0], 32);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn unsanitized_oob_read_panics_with_context() {
        let mut block = BlockExec::new(32, 4);
        block.smem_read(4);
    }

    #[test]
    fn shuffled_schedule_permutes_warps_but_not_results() {
        // A race-free kernel: each thread owns its word.
        let run = |schedule: WarpSchedule| {
            let mut block = BlockExec::new(128, 128);
            block.set_schedule(schedule);
            let mut visit_order = Vec::new();
            block.phase(|tid, b| {
                b.smem_write(tid, tid as u32 + 1);
            });
            block.phase(|tid, _| visit_order.push(tid));
            (block.shared().to_vec(), visit_order)
        };
        let (seq, order_seq) = run(WarpSchedule::Sequential);
        let (shuf, order_shuf) = run(WarpSchedule::Shuffled { seed: 7 });
        assert_eq!(seq, shuf);
        assert_ne!(order_seq, order_shuf, "seed 7 should permute 4 warps");
        // same seed → same order (reproducible)
        let (_, order_again) = run(WarpSchedule::Shuffled { seed: 7 });
        assert_eq!(order_shuf, order_again);
    }

    #[test]
    fn sanitizer_flags_write_write_race() {
        let mut block = BlockExec::with_sanitizer(64, 8, SanitizerConfig::full());
        block.phase(|tid, b| {
            b.smem_write(0, tid as u32); // every thread writes word 0
        });
        let report = block.take_sanitizer_report().unwrap();
        assert!(report.count_of(SanitizerKind::WriteWriteRace) > 0);
    }

    #[test]
    fn sanitizer_flags_read_write_race() {
        let mut block = BlockExec::with_sanitizer(64, 64, SanitizerConfig::full());
        block.phase(|tid, b| {
            b.smem_write(tid, 1);
        });
        // in-place neighbour read + own write in one phase: classic
        // unsynchronized Hillis–Steele step
        block.phase(|tid, b| {
            let left = if tid > 0 { b.smem_read(tid - 1) } else { 0 };
            b.smem_write(tid, left + 1);
        });
        let report = block.take_sanitizer_report().unwrap();
        assert!(report.count_of(SanitizerKind::ReadWriteRace) > 0);
        assert_eq!(report.count_of(SanitizerKind::WriteWriteRace), 0);
    }

    #[test]
    fn sanitizer_flags_uninit_read_but_not_after_init() {
        let mut block = BlockExec::with_sanitizer(32, 8, SanitizerConfig::full());
        block.phase(|tid, b| {
            if tid == 0 {
                let _ = b.smem_read(3); // never written
            }
        });
        block.phase(|tid, b| {
            if tid == 0 {
                b.smem_write(3, 9);
            }
        });
        block.phase(|tid, b| {
            if tid == 0 {
                assert_eq!(b.smem_read(3), 9); // now initialized
            }
        });
        let report = block.take_sanitizer_report().unwrap();
        assert_eq!(report.count_of(SanitizerKind::UninitRead), 1);
    }

    #[test]
    fn sanitizer_flags_barrier_divergence() {
        let mut block = BlockExec::with_sanitizer(64, 0, SanitizerConfig::full());
        block.phase(|tid, b| {
            if tid < 32 {
                b.thread_barrier(); // half the block syncs, half does not
            }
        });
        let report = block.take_sanitizer_report().unwrap();
        assert_eq!(report.count_of(SanitizerKind::BarrierDivergence), 1);
    }

    #[test]
    fn sanitizer_flags_oob_without_panicking() {
        let mut block = BlockExec::with_sanitizer(32, 4, SanitizerConfig::full());
        block.phase(|tid, b| {
            if tid == 0 {
                b.smem_write(4, 1); // one past the end: dropped
                assert_eq!(b.smem_read(4), 0); // reads as zero
            }
        });
        let report = block.take_sanitizer_report().unwrap();
        assert_eq!(report.count_of(SanitizerKind::OutOfBounds), 2);
    }

    #[test]
    fn sanitizer_flags_mixed_atomic_access() {
        let mut block = BlockExec::with_sanitizer(32, 4, SanitizerConfig::full());
        // atomics and a plain read of the same counter word in the same
        // barrier interval
        block.warp_shared_atomic_add(0, &[0; 32]);
        block.phase(|tid, b| {
            if tid == 0 {
                let _ = b.smem_read(0);
            }
        });
        let report = block.take_sanitizer_report().unwrap();
        assert!(report.count_of(SanitizerKind::MixedAtomic) > 0);
    }

    #[test]
    fn sanitizer_clean_on_race_free_histogram() {
        let mut block = BlockExec::with_sanitizer(128, 8, SanitizerConfig::full());
        // init phase, barrier, atomics, barrier, per-thread readback
        block.phase(|tid, b| {
            if tid < 8 {
                b.smem_write(tid, 0);
            }
        });
        let data: Vec<u32> = (0..128).map(|i| (i * 13) % 8).collect();
        for warp in 0..4 {
            let targets: Vec<u32> = (0..WARP_SIZE).map(|l| data[warp * 32 + l]).collect();
            block.warp_shared_atomic_add(0, &targets);
        }
        block.barrier();
        block.phase(|tid, b| {
            if tid < 8 {
                let _ = b.smem_read(tid);
            }
        });
        let report = block.take_sanitizer_report().unwrap();
        assert!(
            report.is_clean(),
            "unexpected findings: {:?}",
            report.findings
        );
        assert!(report.accesses > 0);
        assert_eq!(report.phases, 3); // init phase, explicit barrier, read phase
    }

    #[test]
    fn sanitizer_does_not_change_results_or_cost() {
        let run = |sanitize: bool| {
            let mut block = if sanitize {
                BlockExec::with_sanitizer(128, 8, SanitizerConfig::full())
            } else {
                BlockExec::new(128, 8)
            };
            let data: Vec<u32> = (0..128).map(|i| (i * 7) % 8).collect();
            for warp in 0..4 {
                let targets: Vec<u32> = (0..WARP_SIZE).map(|l| data[warp * 32 + l]).collect();
                block.warp_shared_atomic_add(0, &targets);
            }
            (block.shared().to_vec(), block.cost)
        };
        let (plain, cost_plain) = run(false);
        let (sanitized, cost_san) = run(true);
        assert_eq!(plain, sanitized);
        assert_eq!(
            cost_plain.shared_atomic_replays,
            cost_san.shared_atomic_replays
        );
        assert_eq!(cost_plain.smem_bytes, cost_san.smem_bytes);
    }
}
