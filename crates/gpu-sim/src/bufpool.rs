//! Size-classed, fault-aware device buffer pooling.
//!
//! Real GPU selection pipelines amortize `cudaMalloc` across kernels and
//! queries: allocation latency and page-table churn would otherwise
//! dominate the sub-millisecond kernels of the paper. [`BufferPool`]
//! models that practice for the simulation's host-side buffers — the
//! recursion driver leases storage for counters, oracles, and filtered
//! outputs, and returns it when a level finishes so the next level (or
//! the next query on the same device) reuses the allocation instead of
//! touching the heap.
//!
//! # Fault awareness
//!
//! A region that the fault injector corrupted is *poisoned*: the next
//! buffer recycled under that region tag is dropped instead of shelved,
//! so a memory upset can never leak bytes into a later query through the
//! pool. This is deliberately conservative — poisoning is tracked per
//! region tag, not per allocation, so a single corruption quarantines
//! whatever buffer currently backs that region.

use std::any::{Any, TypeId};
use std::collections::{HashMap, HashSet};

/// Counters describing pool effectiveness since construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BufferPoolStats {
    /// Lease requests served (hits + misses).
    pub acquires: u64,
    /// Leases satisfied from a shelved buffer (no heap allocation).
    pub hits: u64,
    /// Leases that fell back to a fresh allocation.
    pub misses: u64,
    /// Buffers returned to the shelf.
    pub recycled: u64,
    /// Buffers dropped on return because their region was poisoned.
    pub poisoned_dropped: u64,
}

/// A shelf of reusable allocations for one element type, plus the set of
/// poisoned region tags. See the module docs for the recycling contract.
#[derive(Default)]
pub struct BufferPool {
    shelves: HashMap<TypeId, Box<dyn Any + Send>>,
    poisoned: HashSet<String>,
    stats: BufferPoolStats,
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferPool")
            .field("shelves", &self.shelves.len())
            .field("poisoned", &self.poisoned)
            .field("stats", &self.stats)
            .finish()
    }
}

impl BufferPool {
    pub fn new() -> Self {
        Self::default()
    }

    /// Lease an empty `Vec<T>` with capacity at least `len`.
    ///
    /// Best-fit within the element type's size class: the shelved buffer
    /// with the smallest sufficient capacity is taken, so one oversized
    /// allocation does not get burned on a tiny request. When nothing
    /// fits, a fresh allocation of exactly `len` is made (a miss). The
    /// returned vector always has length zero; callers fill it (or hand
    /// it to a scatter buffer) and later return it via
    /// [`BufferPool::recycle`] under the same region tag family.
    pub fn acquire<T: Send + 'static>(&mut self, len: usize, _tag: &str) -> Vec<T> {
        self.stats.acquires += 1;
        if let Some(shelf) = self
            .shelves
            .get_mut(&TypeId::of::<T>())
            .and_then(|s| s.downcast_mut::<Vec<Vec<T>>>())
        {
            let best = shelf
                .iter()
                .enumerate()
                .filter(|(_, v)| v.capacity() >= len)
                .min_by_key(|(_, v)| v.capacity())
                .map(|(i, _)| i);
            if let Some(i) = best {
                self.stats.hits += 1;
                return shelf.swap_remove(i);
            }
        }
        self.stats.misses += 1;
        Vec::with_capacity(len)
    }

    /// Return a buffer to the shelf under `tag`.
    ///
    /// If `tag` was poisoned by [`BufferPool::poison`] since the last
    /// recycle, the buffer is dropped (and the poison cleared): corrupted
    /// bytes must not survive into a later lease. Contents are always
    /// cleared before shelving — the pool recycles capacity, never data.
    pub fn recycle<T: Send + 'static>(&mut self, tag: &str, mut buf: Vec<T>) {
        if self.poisoned.remove(tag) {
            self.stats.poisoned_dropped += 1;
            return;
        }
        if buf.capacity() == 0 {
            return;
        }
        buf.clear();
        self.stats.recycled += 1;
        self.shelves
            .entry(TypeId::of::<T>())
            .or_insert_with(|| Box::new(Vec::<Vec<T>>::new()) as Box<dyn Any + Send>)
            .downcast_mut::<Vec<Vec<T>>>()
            .expect("shelf holds the element type it was keyed under")
            .push(buf);
    }

    /// Mark `region` as corrupted: the next buffer recycled under that
    /// tag is dropped instead of shelved.
    pub fn poison(&mut self, region: &str) {
        self.poisoned.insert(region.to_string());
    }

    /// Whether `region` is currently poisoned.
    pub fn is_poisoned(&self, region: &str) -> bool {
        self.poisoned.contains(region)
    }

    /// Effectiveness counters since construction.
    pub fn stats(&self) -> BufferPoolStats {
        self.stats
    }

    /// Number of buffers currently shelved for element type `T`.
    pub fn shelved<T: 'static>(&self) -> usize {
        self.shelves
            .get(&TypeId::of::<T>())
            .and_then(|s| s.downcast_ref::<Vec<Vec<T>>>())
            .map_or(0, |shelf| shelf.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_miss_then_hit_roundtrip() {
        let mut pool = BufferPool::new();
        let mut v = pool.acquire::<u64>(100, "counts");
        assert_eq!(v.capacity(), 100);
        assert!(v.is_empty());
        v.extend(0..100u64);
        let cap = v.capacity();
        pool.recycle("counts", v);
        assert_eq!(pool.shelved::<u64>(), 1);
        let v2 = pool.acquire::<u64>(80, "counts");
        assert_eq!(v2.capacity(), cap, "recycled allocation reused");
        assert!(v2.is_empty(), "contents cleared on recycle");
        let s = pool.stats();
        assert_eq!(s.acquires, 2);
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(s.recycled, 1);
    }

    #[test]
    fn best_fit_picks_smallest_sufficient_capacity() {
        let mut pool = BufferPool::new();
        pool.recycle("a", Vec::<u32>::with_capacity(1000));
        pool.recycle("a", Vec::<u32>::with_capacity(64));
        pool.recycle("a", Vec::<u32>::with_capacity(256));
        let v = pool.acquire::<u32>(100, "a");
        assert_eq!(v.capacity(), 256);
        let v2 = pool.acquire::<u32>(100, "a");
        assert_eq!(v2.capacity(), 1000);
        // only the 64-cap buffer remains: too small, so miss
        let v3 = pool.acquire::<u32>(100, "a");
        assert_eq!(v3.capacity(), 100);
        assert_eq!(pool.stats().misses, 1);
    }

    #[test]
    fn shelves_are_per_type() {
        let mut pool = BufferPool::new();
        pool.recycle("x", Vec::<u64>::with_capacity(10));
        assert_eq!(pool.shelved::<u64>(), 1);
        assert_eq!(pool.shelved::<u8>(), 0);
        let v = pool.acquire::<u8>(10, "x");
        assert_eq!(v.capacity(), 10);
        assert_eq!(pool.stats().misses, 1, "u64 shelf cannot serve u8");
    }

    #[test]
    fn poisoned_region_drops_next_recycle_then_clears() {
        let mut pool = BufferPool::new();
        pool.poison("oracles");
        assert!(pool.is_poisoned("oracles"));
        pool.recycle("oracles", vec![0xFFu8; 64]);
        assert_eq!(pool.shelved::<u8>(), 0, "corrupted buffer not shelved");
        assert_eq!(pool.stats().poisoned_dropped, 1);
        assert!(!pool.is_poisoned("oracles"), "poison consumed");
        // a clean buffer under the same tag shelves normally afterwards
        pool.recycle("oracles", Vec::<u8>::with_capacity(64));
        assert_eq!(pool.shelved::<u8>(), 1);
    }

    #[test]
    fn poison_is_per_region() {
        let mut pool = BufferPool::new();
        pool.poison("counts");
        pool.recycle("splitters", Vec::<u64>::with_capacity(8));
        assert_eq!(pool.shelved::<u64>(), 1, "other regions unaffected");
        assert!(pool.is_poisoned("counts"));
    }

    #[test]
    fn zero_capacity_buffers_are_not_shelved() {
        let mut pool = BufferPool::new();
        pool.recycle("a", Vec::<u64>::new());
        assert_eq!(pool.shelved::<u64>(), 0);
        assert_eq!(pool.stats().recycled, 0);
    }
}
