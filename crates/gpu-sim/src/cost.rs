//! The analytic cost model: resource counters per kernel and their
//! conversion into simulated time.
//!
//! Kernels accrue *resource usage* ([`KernelCost`]) while they execute
//! functionally; afterwards [`KernelCost::time_on`] converts usage into a
//! [`SimTime`] under a roofline-style overlap model: a GPU kernel's
//! runtime is dominated by its most-loaded resource (memory system,
//! atomic units, warp intrinsics, ALUs), because the hardware overlaps
//! the others behind it. This is the mechanism by which the paper's
//! observation — *"the atomic operations expose the bottleneck for the
//! SampleSelect implementation, oppose to the QuickSelect algorithm whose
//! performance is more limited by the memory bandwidth"* (§V-D) — emerges
//! from the simulation rather than being hard-coded.

use crate::arch::GpuArchitecture;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A point or span of simulated time, stored in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct SimTime {
    ns: f64,
}

impl SimTime {
    pub const ZERO: SimTime = SimTime { ns: 0.0 };

    pub fn from_ns(ns: f64) -> Self {
        debug_assert!(ns.is_finite() && ns >= 0.0, "invalid SimTime: {ns}");
        Self { ns }
    }

    pub fn from_us(us: f64) -> Self {
        Self::from_ns(us * 1e3)
    }

    pub fn from_ms(ms: f64) -> Self {
        Self::from_ns(ms * 1e6)
    }

    pub fn as_ns(self) -> f64 {
        self.ns
    }

    pub fn as_us(self) -> f64 {
        self.ns / 1e3
    }

    pub fn as_ms(self) -> f64 {
        self.ns / 1e6
    }

    pub fn as_secs(self) -> f64 {
        self.ns / 1e9
    }

    pub fn max(self, other: Self) -> Self {
        Self {
            ns: self.ns.max(other.ns),
        }
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Self) -> Self {
        Self::from_ns(self.ns + rhs.ns)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: Self) {
        self.ns += rhs.ns;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: Self) -> Self {
        Self::from_ns(self.ns - rhs.ns)
    }
}

impl Mul<f64> for SimTime {
    type Output = SimTime;
    fn mul(self, rhs: f64) -> Self {
        Self::from_ns(self.ns * rhs)
    }
}

impl Div<f64> for SimTime {
    type Output = SimTime;
    fn div(self, rhs: f64) -> Self {
        Self::from_ns(self.ns / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(SimTime::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.ns >= 1e6 {
            write!(f, "{:.3} ms", self.as_ms())
        } else if self.ns >= 1e3 {
            write!(f, "{:.3} us", self.as_us())
        } else {
            write!(f, "{:.1} ns", self.ns)
        }
    }
}

/// Resource usage accumulated by one kernel execution (or one block's
/// share of it; costs are additive across blocks).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KernelCost {
    /// Coalesced global-memory bytes read.
    pub global_read_bytes: u64,
    /// Coalesced global-memory bytes written.
    pub global_write_bytes: u64,
    /// Non-coalesced global bytes (charged with the architecture's
    /// uncoalesced penalty multiplier).
    pub uncoalesced_bytes: u64,
    /// Warp-wide shared-memory atomic *instructions* issued (one per
    /// warp per atomic op in the code; conflict-free baseline cost).
    pub shared_atomic_warp_ops: u64,
    /// Extra same-address *replays* beyond the first lane, summed over
    /// warps (`max multiplicity - 1` per warp without aggregation; zero
    /// with warp aggregation).
    pub shared_atomic_replays: u64,
    /// Total global atomic operations issued (distinct-address
    /// throughput component, L2-bound device-wide).
    pub global_atomic_ops: u64,
    /// Number of global atomic ops hitting the *hottest single address*
    /// (device-wide same-address serialization component). Additive
    /// across blocks: all blocks contend on the same global counter
    /// array, so per-address op counts accumulate.
    pub global_atomic_hot_ops: u64,
    /// Warp-wide intrinsics executed (ballot / shuffle / reductions).
    pub warp_intrinsics: u64,
    /// Shared-memory bytes moved (bank-conflict-adjusted).
    pub smem_bytes: u64,
    /// Integer/comparison operations (search-tree traversal arithmetic,
    /// sorting-network compares).
    pub int_ops: u64,
    /// Number of thread blocks that contributed to this cost (used for
    /// the SM-parallelism scaling of shared-memory resources).
    pub blocks: u64,
}

impl KernelCost {
    pub fn new() -> Self {
        Self::default()
    }

    /// Merge another cost record into this one (additive in every field;
    /// `global_atomic_hot_ops` is also additive because per-address op
    /// counts accumulate across blocks that share the global counter
    /// array).
    pub fn merge(&mut self, other: &KernelCost) {
        self.global_read_bytes += other.global_read_bytes;
        self.global_write_bytes += other.global_write_bytes;
        self.uncoalesced_bytes += other.uncoalesced_bytes;
        self.shared_atomic_warp_ops += other.shared_atomic_warp_ops;
        self.shared_atomic_replays += other.shared_atomic_replays;
        self.global_atomic_ops += other.global_atomic_ops;
        self.global_atomic_hot_ops += other.global_atomic_hot_ops;
        self.warp_intrinsics += other.warp_intrinsics;
        self.smem_bytes += other.smem_bytes;
        self.int_ops += other.int_ops;
        self.blocks += other.blocks;
    }

    /// Total global traffic in effective bytes (uncoalesced traffic is
    /// inflated by the architecture penalty at conversion time).
    pub fn total_global_bytes(&self) -> u64 {
        self.global_read_bytes + self.global_write_bytes + self.uncoalesced_bytes
    }

    /// Convert resource usage into simulated execution time on `arch`,
    /// given how many SMs the launch could keep busy (fractional: a
    /// single under-occupied block counts as less than one SM because it
    /// cannot hide latencies).
    ///
    /// Per-SM resources (shared atomics, shared memory, ALUs, warp
    /// intrinsics) scale with the number of busy SMs; device-wide
    /// resources (DRAM bandwidth, L2 atomics) scale with the *fraction*
    /// of the device that is busy, because a half-empty GPU cannot issue
    /// enough outstanding transactions to saturate DRAM.
    pub fn time_on(&self, arch: &GpuArchitecture, busy_sms: f64) -> CostBreakdown {
        let busy_sms = busy_sms.clamp(0.05, arch.num_sms as f64);
        let sm_fraction = busy_sms / arch.num_sms as f64;

        let effective_bytes = self.global_read_bytes as f64
            + self.global_write_bytes as f64
            + self.uncoalesced_bytes as f64 * arch.uncoalesced_penalty;
        let mem = effective_bytes / (arch.bytes_per_ns() * sm_fraction);

        let shared_atomic = (self.shared_atomic_warp_ops as f64 * arch.shared_atomic_warp_ns
            + self.shared_atomic_replays as f64 * arch.shared_atomic_replay_ns)
            / busy_sms;

        // Global atomics: a throughput term (L2 op rate, device-wide but
        // requiring occupancy to saturate) and a same-address
        // serialization term (not helped by parallelism at all).
        let ga_throughput =
            self.global_atomic_ops as f64 * arch.global_atomic_throughput_ns / sm_fraction;
        let ga_serial = self.global_atomic_hot_ops as f64 * arch.global_atomic_same_address_ns;
        let global_atomic = ga_throughput.max(ga_serial);

        let intrinsics = self.warp_intrinsics as f64 * arch.warp_intrinsic_ns / busy_sms;
        let smem = self.smem_bytes as f64 / (arch.smem_bytes_per_ns * busy_sms);
        let compute = self.int_ops as f64 / (arch.int_ops_per_ns_per_sm * busy_sms);

        CostBreakdown {
            memory: SimTime::from_ns(mem),
            shared_atomic: SimTime::from_ns(shared_atomic),
            global_atomic: SimTime::from_ns(global_atomic),
            warp_intrinsics: SimTime::from_ns(intrinsics),
            smem: SimTime::from_ns(smem),
            compute: SimTime::from_ns(compute),
        }
    }
}

/// Per-resource time components of one kernel, before the overlap `max`.
#[derive(Debug, Clone, Copy, Default)]
pub struct CostBreakdown {
    pub memory: SimTime,
    pub shared_atomic: SimTime,
    pub global_atomic: SimTime,
    pub warp_intrinsics: SimTime,
    pub smem: SimTime,
    pub compute: SimTime,
}

impl CostBreakdown {
    /// The kernel's runtime under the overlap model: the slowest resource
    /// dominates; the remaining resources hide behind it.
    pub fn total(&self) -> SimTime {
        self.memory
            .max(self.shared_atomic)
            .max(self.global_atomic)
            .max(self.warp_intrinsics)
            .max(self.smem)
            .max(self.compute)
    }

    /// Scale every component by `factor` (used by the fault injector's
    /// latency spikes: the kernel does the same work, only slower).
    pub fn scale(&self, factor: f64) -> CostBreakdown {
        CostBreakdown {
            memory: self.memory * factor,
            shared_atomic: self.shared_atomic * factor,
            global_atomic: self.global_atomic * factor,
            warp_intrinsics: self.warp_intrinsics * factor,
            smem: self.smem * factor,
            compute: self.compute * factor,
        }
    }

    /// Name of the dominating resource (for reports and diagnostics).
    pub fn bottleneck(&self) -> &'static str {
        let total = self.total();
        if total == self.memory {
            "memory"
        } else if total == self.shared_atomic {
            "shared-atomic"
        } else if total == self.global_atomic {
            "global-atomic"
        } else if total == self.warp_intrinsics {
            "warp-intrinsics"
        } else if total == self.smem {
            "shared-memory"
        } else {
            "compute"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::{k20xm, v100};

    #[test]
    fn simtime_arithmetic() {
        let a = SimTime::from_us(2.0);
        let b = SimTime::from_ns(500.0);
        assert!(((a + b).as_ns() - 2500.0).abs() < 1e-9);
        assert!(((a - b).as_ns() - 1500.0).abs() < 1e-9);
        assert!(((a * 2.0).as_us() - 4.0).abs() < 1e-12);
        assert!(((a / 2.0).as_us() - 1.0).abs() < 1e-12);
        assert_eq!(a.max(b), a);
    }

    #[test]
    fn simtime_display_scales_units() {
        assert_eq!(format!("{}", SimTime::from_ns(12.0)), "12.0 ns");
        assert_eq!(format!("{}", SimTime::from_us(3.5)), "3.500 us");
        assert_eq!(format!("{}", SimTime::from_ms(1.25)), "1.250 ms");
    }

    #[test]
    fn simtime_sum() {
        let total: SimTime = (0..4).map(|_| SimTime::from_ns(10.0)).sum();
        assert!((total.as_ns() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn merge_is_additive() {
        let mut a = KernelCost {
            global_read_bytes: 100,
            shared_atomic_warp_ops: 5,
            shared_atomic_replays: 2,
            blocks: 1,
            ..Default::default()
        };
        let b = KernelCost {
            global_read_bytes: 50,
            global_atomic_hot_ops: 7,
            blocks: 2,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.global_read_bytes, 150);
        assert_eq!(a.shared_atomic_warp_ops, 5);
        assert_eq!(a.shared_atomic_replays, 2);
        assert_eq!(a.global_atomic_hot_ops, 7);
        assert_eq!(a.blocks, 3);
    }

    #[test]
    fn memory_bound_kernel_time_matches_bandwidth() {
        let arch = v100();
        let cost = KernelCost {
            global_read_bytes: 742_000_000, // 742 MB at 742 GB/s = 1 ms
            blocks: 10_000,
            ..Default::default()
        };
        let t = cost.time_on(&arch, arch.num_sms as f64).total();
        assert!((t.as_ms() - 1.0).abs() < 1e-6, "got {t}");
    }

    #[test]
    fn overlap_model_takes_max_not_sum() {
        let arch = v100();
        let cost = KernelCost {
            global_read_bytes: 742_000, // 1 us of memory
            int_ops: 1,                 // negligible compute
            ..Default::default()
        };
        let bd = cost.time_on(&arch, arch.num_sms as f64);
        assert_eq!(bd.total(), bd.memory);
        assert_eq!(bd.bottleneck(), "memory");
    }

    #[test]
    fn shared_atomics_dominate_on_kepler_not_volta() {
        // Same workload: memory-light, atomic-heavy.
        let cost = KernelCost {
            global_read_bytes: 1_000,
            shared_atomic_warp_ops: 1_000_000,
            ..Default::default()
        };
        let k = k20xm();
        let v = v100();
        let t_k = cost.time_on(&k, k.num_sms as f64);
        let t_v = cost.time_on(&v, v.num_sms as f64);
        assert_eq!(t_k.bottleneck(), "shared-atomic");
        // Volta processes the same shared-atomic load much faster:
        // more SMs and a lower per-instruction cost.
        assert!(t_k.shared_atomic.as_ns() > 5.0 * t_v.shared_atomic.as_ns());
    }

    #[test]
    fn same_address_global_atomics_ignore_parallelism() {
        let arch = v100();
        let cost = KernelCost {
            global_atomic_hot_ops: 1000, // all to one address
            ..Default::default()
        };
        let few = cost.time_on(&arch, 1.0).global_atomic;
        let many = cost.time_on(&arch, arch.num_sms as f64).global_atomic;
        // The serialization term dominates in both cases and does not
        // shrink with more SMs.
        assert!((few.as_ns() - many.as_ns()).abs() < 1e-9);
    }

    #[test]
    fn low_occupancy_slows_memory() {
        let arch = v100();
        let cost = KernelCost {
            global_read_bytes: 1_000_000,
            ..Default::default()
        };
        let full = cost.time_on(&arch, arch.num_sms as f64).memory;
        let quarter = cost.time_on(&arch, arch.num_sms as f64 / 4.0).memory;
        assert!(quarter.as_ns() > 3.9 * full.as_ns());
    }

    #[test]
    fn uncoalesced_traffic_is_penalized() {
        let arch = v100();
        let coalesced = KernelCost {
            global_read_bytes: 1_000_000,
            ..Default::default()
        };
        let scattered = KernelCost {
            uncoalesced_bytes: 1_000_000,
            ..Default::default()
        };
        let t_c = coalesced.time_on(&arch, arch.num_sms as f64).memory;
        let t_s = scattered.time_on(&arch, arch.num_sms as f64).memory;
        assert!((t_s.as_ns() / t_c.as_ns() - arch.uncoalesced_penalty).abs() < 1e-9);
    }

    #[test]
    fn scale_multiplies_every_component() {
        let arch = v100();
        let cost = KernelCost {
            global_read_bytes: 1_000_000,
            shared_atomic_warp_ops: 1_000,
            int_ops: 10_000,
            ..Default::default()
        };
        let bd = cost.time_on(&arch, arch.num_sms as f64);
        let scaled = bd.scale(3.0);
        assert!((scaled.memory.as_ns() - 3.0 * bd.memory.as_ns()).abs() < 1e-9);
        assert!((scaled.total().as_ns() - 3.0 * bd.total().as_ns()).abs() < 1e-9);
        assert_eq!(scaled.bottleneck(), bd.bottleneck());
    }

    #[test]
    fn busy_sms_clamped_to_device() {
        let arch = v100();
        let cost = KernelCost {
            global_read_bytes: 1_000_000,
            ..Default::default()
        };
        let a = cost.time_on(&arch, 10_000.0).memory;
        let b = cost.time_on(&arch, arch.num_sms as f64).memory;
        assert_eq!(a.as_ns(), b.as_ns());
    }
}
