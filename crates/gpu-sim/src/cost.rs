//! The analytic cost model: resource counters per kernel and their
//! conversion into simulated time.
//!
//! Kernels accrue *resource usage* ([`KernelCost`]) while they execute
//! functionally; afterwards [`KernelCost::time_on`] converts usage into a
//! [`SimTime`] under a roofline-style overlap model: a GPU kernel's
//! runtime is dominated by its most-loaded resource (memory system,
//! atomic units, warp intrinsics, ALUs), because the hardware overlaps
//! the others behind it. This is the mechanism by which the paper's
//! observation — *"the atomic operations expose the bottleneck for the
//! SampleSelect implementation, oppose to the QuickSelect algorithm whose
//! performance is more limited by the memory bandwidth"* (§V-D) — emerges
//! from the simulation rather than being hard-coded.

use crate::arch::GpuArchitecture;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A point or span of simulated time, stored in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct SimTime {
    ns: f64,
}

impl SimTime {
    pub const ZERO: SimTime = SimTime { ns: 0.0 };

    pub fn from_ns(ns: f64) -> Self {
        debug_assert!(ns.is_finite() && ns >= 0.0, "invalid SimTime: {ns}");
        Self { ns }
    }

    pub fn from_us(us: f64) -> Self {
        Self::from_ns(us * 1e3)
    }

    pub fn from_ms(ms: f64) -> Self {
        Self::from_ns(ms * 1e6)
    }

    pub fn as_ns(self) -> f64 {
        self.ns
    }

    pub fn as_us(self) -> f64 {
        self.ns / 1e3
    }

    pub fn as_ms(self) -> f64 {
        self.ns / 1e6
    }

    pub fn as_secs(self) -> f64 {
        self.ns / 1e9
    }

    pub fn max(self, other: Self) -> Self {
        Self {
            ns: self.ns.max(other.ns),
        }
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Self) -> Self {
        Self::from_ns(self.ns + rhs.ns)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: Self) {
        self.ns += rhs.ns;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: Self) -> Self {
        Self::from_ns(self.ns - rhs.ns)
    }
}

impl Mul<f64> for SimTime {
    type Output = SimTime;
    fn mul(self, rhs: f64) -> Self {
        Self::from_ns(self.ns * rhs)
    }
}

impl Div<f64> for SimTime {
    type Output = SimTime;
    fn div(self, rhs: f64) -> Self {
        Self::from_ns(self.ns / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(SimTime::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.ns >= 1e6 {
            write!(f, "{:.3} ms", self.as_ms())
        } else if self.ns >= 1e3 {
            write!(f, "{:.3} us", self.as_us())
        } else {
            write!(f, "{:.1} ns", self.ns)
        }
    }
}

/// Resource usage accumulated by one kernel execution (or one block's
/// share of it; costs are additive across blocks).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KernelCost {
    /// Coalesced global-memory bytes read.
    pub global_read_bytes: u64,
    /// Coalesced global-memory bytes written.
    pub global_write_bytes: u64,
    /// Non-coalesced global bytes (charged with the architecture's
    /// uncoalesced penalty multiplier).
    pub uncoalesced_bytes: u64,
    /// Warp-wide shared-memory atomic *instructions* issued (one per
    /// warp per atomic op in the code; conflict-free baseline cost).
    pub shared_atomic_warp_ops: u64,
    /// Extra same-address *replays* beyond the first lane, summed over
    /// warps (`max multiplicity - 1` per warp without aggregation; zero
    /// with warp aggregation).
    pub shared_atomic_replays: u64,
    /// Total global atomic operations issued (distinct-address
    /// throughput component, L2-bound device-wide).
    pub global_atomic_ops: u64,
    /// Number of global atomic ops hitting the *hottest single address*
    /// (device-wide same-address serialization component). Additive
    /// across blocks: all blocks contend on the same global counter
    /// array, so per-address op counts accumulate.
    pub global_atomic_hot_ops: u64,
    /// Warp-wide intrinsics executed (ballot / shuffle / reductions).
    pub warp_intrinsics: u64,
    /// Shared-memory bytes moved (bank-conflict-adjusted).
    pub smem_bytes: u64,
    /// Integer/comparison operations (search-tree traversal arithmetic,
    /// sorting-network compares).
    pub int_ops: u64,
    /// Number of thread blocks that contributed to this cost (used for
    /// the SM-parallelism scaling of shared-memory resources).
    pub blocks: u64,
}

impl KernelCost {
    pub fn new() -> Self {
        Self::default()
    }

    /// Merge another cost record into this one (additive in every field;
    /// `global_atomic_hot_ops` is also additive because per-address op
    /// counts accumulate across blocks that share the global counter
    /// array).
    pub fn merge(&mut self, other: &KernelCost) {
        self.global_read_bytes += other.global_read_bytes;
        self.global_write_bytes += other.global_write_bytes;
        self.uncoalesced_bytes += other.uncoalesced_bytes;
        self.shared_atomic_warp_ops += other.shared_atomic_warp_ops;
        self.shared_atomic_replays += other.shared_atomic_replays;
        self.global_atomic_ops += other.global_atomic_ops;
        self.global_atomic_hot_ops += other.global_atomic_hot_ops;
        self.warp_intrinsics += other.warp_intrinsics;
        self.smem_bytes += other.smem_bytes;
        self.int_ops += other.int_ops;
        self.blocks += other.blocks;
    }

    /// Total global traffic in effective bytes (uncoalesced traffic is
    /// inflated by the architecture penalty at conversion time).
    pub fn total_global_bytes(&self) -> u64 {
        self.global_read_bytes + self.global_write_bytes + self.uncoalesced_bytes
    }

    /// Convert resource usage into simulated execution time on `arch`,
    /// given how many SMs the launch could keep busy (fractional: a
    /// single under-occupied block counts as less than one SM because it
    /// cannot hide latencies).
    ///
    /// Per-SM resources (shared atomics, shared memory, ALUs, warp
    /// intrinsics) scale with the number of busy SMs; device-wide
    /// resources (DRAM bandwidth, L2 atomics) scale with the *fraction*
    /// of the device that is busy, because a half-empty GPU cannot issue
    /// enough outstanding transactions to saturate DRAM.
    pub fn time_on(&self, arch: &GpuArchitecture, busy_sms: f64) -> CostBreakdown {
        let busy_sms = busy_sms.clamp(0.05, arch.num_sms as f64);
        let sm_fraction = busy_sms / arch.num_sms as f64;

        let effective_bytes = self.global_read_bytes as f64
            + self.global_write_bytes as f64
            + self.uncoalesced_bytes as f64 * arch.uncoalesced_penalty;
        let mem = effective_bytes / (arch.bytes_per_ns() * sm_fraction);

        let shared_atomic = (self.shared_atomic_warp_ops as f64 * arch.shared_atomic_warp_ns
            + self.shared_atomic_replays as f64 * arch.shared_atomic_replay_ns)
            / busy_sms;

        // Global atomics: a throughput term (L2 op rate, device-wide but
        // requiring occupancy to saturate) and a same-address
        // serialization term (not helped by parallelism at all).
        let ga_throughput =
            self.global_atomic_ops as f64 * arch.global_atomic_throughput_ns / sm_fraction;
        let ga_serial = self.global_atomic_hot_ops as f64 * arch.global_atomic_same_address_ns;
        let global_atomic = ga_throughput.max(ga_serial);

        let intrinsics = self.warp_intrinsics as f64 * arch.warp_intrinsic_ns / busy_sms;
        let smem = self.smem_bytes as f64 / (arch.smem_bytes_per_ns * busy_sms);
        let compute = self.int_ops as f64 / (arch.int_ops_per_ns_per_sm * busy_sms);

        CostBreakdown {
            memory: SimTime::from_ns(mem),
            shared_atomic: SimTime::from_ns(shared_atomic),
            global_atomic: SimTime::from_ns(global_atomic),
            warp_intrinsics: SimTime::from_ns(intrinsics),
            smem: SimTime::from_ns(smem),
            compute: SimTime::from_ns(compute),
        }
    }
}

/// Per-resource time components of one kernel, before the overlap `max`.
#[derive(Debug, Clone, Copy, Default)]
pub struct CostBreakdown {
    pub memory: SimTime,
    pub shared_atomic: SimTime,
    pub global_atomic: SimTime,
    pub warp_intrinsics: SimTime,
    pub smem: SimTime,
    pub compute: SimTime,
}

impl CostBreakdown {
    /// The kernel's runtime under the overlap model: the slowest resource
    /// dominates; the remaining resources hide behind it.
    pub fn total(&self) -> SimTime {
        self.memory
            .max(self.shared_atomic)
            .max(self.global_atomic)
            .max(self.warp_intrinsics)
            .max(self.smem)
            .max(self.compute)
    }

    /// Scale every component by `factor` (used by the fault injector's
    /// latency spikes: the kernel does the same work, only slower).
    pub fn scale(&self, factor: f64) -> CostBreakdown {
        CostBreakdown {
            memory: self.memory * factor,
            shared_atomic: self.shared_atomic * factor,
            global_atomic: self.global_atomic * factor,
            warp_intrinsics: self.warp_intrinsics * factor,
            smem: self.smem * factor,
            compute: self.compute * factor,
        }
    }

    /// Name of the dominating resource (for reports and diagnostics).
    pub fn bottleneck(&self) -> &'static str {
        let total = self.total();
        if total == self.memory {
            "memory"
        } else if total == self.shared_atomic {
            "shared-atomic"
        } else if total == self.global_atomic {
            "global-atomic"
        } else if total == self.warp_intrinsics {
            "warp-intrinsics"
        } else if total == self.smem {
            "shared-memory"
        } else {
            "compute"
        }
    }
}

// ---------------------------------------------------------------------
// Analytic radix-pass term (planner support)
// ---------------------------------------------------------------------

/// Approximate the fractional SM occupancy of a grid processing `n`
/// elements with the workspace's standard launch shape (256 threads x 4
/// items per thread, grid capped at 4096 blocks) — the same heuristic
/// the device applies when converting a [`KernelCost`] to time.
fn approx_busy_sms(arch: &GpuArchitecture, n: u64) -> f64 {
    let blocks = n.div_ceil(1024).clamp(1, 4096) as f64;
    blocks.min(arch.num_sms as f64)
}

/// Resource usage of one MSD radix pass over `n` elements of
/// `elem_bytes`-wide keys: a digit-count kernel (streaming read, one
/// oracle byte per element, one warp-wide shared atomic per warp with
/// `replay_rate` in `[0, 1]` same-address collision pressure) followed
/// by the filter pass (re-read plus oracle read, `survivors` elements
/// written out).
///
/// `replay_rate` is the fraction of the worst case (31 same-address
/// replays per full warp): 0 for distinct digits, 1 when every lane of
/// every warp lands on the same digit counter (all-equal keys, dead
/// high digits). Pre-Maxwell generations pay their lock/retry shared
/// atomic costs through the architecture's `shared_atomic_*_ns` values.
pub fn radix_pass_cost(n: u64, elem_bytes: u32, replay_rate: f64, survivors: u64) -> KernelCost {
    let mut cost = KernelCost::new();
    let warps = n.div_ceil(32);
    // digit_count: stream the keys, store one oracle byte each.
    cost.global_read_bytes += n * elem_bytes as u64;
    cost.global_write_bytes += n;
    cost.shared_atomic_warp_ops += warps;
    cost.shared_atomic_replays += (warps as f64 * 31.0 * replay_rate.clamp(0.0, 1.0)) as u64;
    cost.int_ops += n * 2;
    // filter: re-read keys and oracles, write the surviving bucket.
    cost.global_read_bytes += n * elem_bytes as u64 + n;
    cost.global_write_bytes += survivors * elem_bytes as u64;
    cost.int_ops += n;
    cost
}

/// Simulated time of one radix pass on `arch`, including the reduce and
/// launch overheads: the per-pass term of the planner's radix estimate.
///
/// Kernel-launch latency is generation-aware: architectures with CUDA
/// Dynamic Parallelism tail-launch follow-up passes at the (cheaper)
/// device launch latency, while older generations pay a host round trip
/// per pass — exactly the penalty that makes many-pass radix selection
/// unattractive on Fermi/Kepler-class parts.
pub fn radix_pass_time(
    arch: &GpuArchitecture,
    n: u64,
    elem_bytes: u32,
    replay_rate: f64,
    survivors: u64,
    from_device: bool,
) -> SimTime {
    let cost = radix_pass_cost(n, elem_bytes, replay_rate, survivors);
    let busy = approx_busy_sms(arch, n);
    let launch_us = if from_device && arch.generation.has_dynamic_parallelism() {
        arch.device_launch_us
    } else {
        arch.host_launch_us
    };
    // digit_count + reduce + filter: three launches per pass.
    cost.time_on(arch, busy).total() + SimTime::from_us(3.0 * launch_us)
}

/// Full analytic RadixSelect estimate on `arch`: `dead_passes` leading
/// digit passes that discriminate nothing (constant key prefix — every
/// pass re-scans all `n` elements at worst-case collision pressure),
/// then shrinking passes until the surviving bucket falls under
/// `base_case`, which is charged as one streaming sort.
///
/// `first_digit_skew` in `[0, 1]` is the share of the most popular
/// digit value at the first *discriminating* position, and plays two
/// roles: it sets the same-address shared-atomic replay pressure of the
/// live passes, and it sizes the first live pass's surviving bucket —
/// a rank query usually lands in the popular bucket, so that pass keeps
/// `max(1/256, skew)` of its input rather than the ideal `1/256`. This
/// matters enormously for floating-point keys, whose leading exponent
/// byte is heavily skewed (half of uniform `[0, 1)` shares one digit),
/// and is the main reason SampleSelect beats RadixSelect on such data.
/// Later passes see conditionally near-uniform digits and keep `1/256`.
///
/// `key_bits / 8` bounds the total pass count, mirroring the backend.
pub fn radix_select_estimate(
    arch: &GpuArchitecture,
    n: u64,
    elem_bytes: u32,
    dead_passes: u32,
    first_digit_skew: f64,
    base_case: u64,
) -> SimTime {
    let total_passes = elem_bytes * 8 / 8;
    let skew = first_digit_skew.clamp(0.0, 1.0);
    let mut time = SimTime::ZERO;
    let mut remaining = n;
    let mut passes_done = 0u32;
    for p in 0..total_passes {
        if remaining <= base_case {
            break;
        }
        let dead = p < dead_passes;
        let first_live = p == dead_passes;
        let survivors = if dead {
            remaining
        } else if first_live {
            // The queried rank tends to land in the fattest bucket of
            // the skewed first discriminating digit.
            ((remaining as f64 * skew.max(1.0 / 256.0)) as u64).max(1)
        } else {
            // Conditioned on the fixed prefix, later digits are close
            // to uniform: keep ~1/256 (never less than one element).
            (remaining / 256).max(1)
        };
        let rate = if dead { 1.0 } else { skew };
        time += radix_pass_time(arch, remaining, elem_bytes, rate, survivors, p > 0);
        remaining = survivors;
        passes_done += 1;
    }
    if remaining > 0 {
        // Base case: stream the remainder through the bitonic sort.
        let mut cost = KernelCost::new();
        cost.global_read_bytes = remaining * elem_bytes as u64;
        let logn = 64 - remaining.leading_zeros() as u64;
        cost.int_ops = remaining * logn * logn;
        let launch_us = if passes_done > 0 && arch.generation.has_dynamic_parallelism() {
            arch.device_launch_us
        } else {
            arch.host_launch_us
        };
        time = time
            + cost.time_on(arch, approx_busy_sms(arch, remaining)).total()
            + SimTime::from_us(launch_us);
    }
    time
}

#[cfg(test)]
mod radix_estimate_tests {
    use super::*;
    use crate::arch::{c2070, v100};

    #[test]
    fn estimate_is_monotone_in_n() {
        let arch = v100();
        let small = radix_select_estimate(&arch, 1 << 16, 4, 0, 0.0, 1024);
        let large = radix_select_estimate(&arch, 1 << 22, 4, 0, 0.0, 1024);
        assert!(large.as_ns() > small.as_ns());
    }

    #[test]
    fn dead_passes_cost_extra_full_scans() {
        let arch = v100();
        let clean = radix_select_estimate(&arch, 1 << 20, 4, 0, 0.0, 1024);
        let two_dead = radix_select_estimate(&arch, 1 << 20, 4, 2, 0.0, 1024);
        // Two dead passes re-scan the full input twice over.
        assert!(two_dead.as_ns() > 2.0 * clean.as_ns());
    }

    #[test]
    fn wider_keys_cost_more() {
        let arch = v100();
        let narrow = radix_select_estimate(&arch, 1 << 20, 4, 0, 0.0, 1024);
        let wide = radix_select_estimate(&arch, 1 << 20, 8, 0, 0.0, 1024);
        assert!(wide.as_ns() > narrow.as_ns());
    }

    #[test]
    fn fermi_pays_host_launches_per_pass() {
        // Same workload: the pre-CDP part pays host launch latency on
        // every follow-up pass and slow lock/retry shared atomics.
        let v = radix_select_estimate(&v100(), 1 << 20, 8, 2, 0.5, 1024);
        let f = radix_select_estimate(&c2070(), 1 << 20, 8, 2, 0.5, 1024);
        assert!(f.as_ns() > v.as_ns());
    }

    #[test]
    fn replay_pressure_increases_pass_time() {
        let arch = v100();
        let calm = radix_pass_time(&arch, 1 << 20, 4, 0.0, 4096, true);
        let hot = radix_pass_time(&arch, 1 << 20, 4, 1.0, 4096, true);
        assert!(hot.as_ns() > calm.as_ns());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::{k20xm, v100};

    #[test]
    fn simtime_arithmetic() {
        let a = SimTime::from_us(2.0);
        let b = SimTime::from_ns(500.0);
        assert!(((a + b).as_ns() - 2500.0).abs() < 1e-9);
        assert!(((a - b).as_ns() - 1500.0).abs() < 1e-9);
        assert!(((a * 2.0).as_us() - 4.0).abs() < 1e-12);
        assert!(((a / 2.0).as_us() - 1.0).abs() < 1e-12);
        assert_eq!(a.max(b), a);
    }

    #[test]
    fn simtime_display_scales_units() {
        assert_eq!(format!("{}", SimTime::from_ns(12.0)), "12.0 ns");
        assert_eq!(format!("{}", SimTime::from_us(3.5)), "3.500 us");
        assert_eq!(format!("{}", SimTime::from_ms(1.25)), "1.250 ms");
    }

    #[test]
    fn simtime_sum() {
        let total: SimTime = (0..4).map(|_| SimTime::from_ns(10.0)).sum();
        assert!((total.as_ns() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn merge_is_additive() {
        let mut a = KernelCost {
            global_read_bytes: 100,
            shared_atomic_warp_ops: 5,
            shared_atomic_replays: 2,
            blocks: 1,
            ..Default::default()
        };
        let b = KernelCost {
            global_read_bytes: 50,
            global_atomic_hot_ops: 7,
            blocks: 2,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.global_read_bytes, 150);
        assert_eq!(a.shared_atomic_warp_ops, 5);
        assert_eq!(a.shared_atomic_replays, 2);
        assert_eq!(a.global_atomic_hot_ops, 7);
        assert_eq!(a.blocks, 3);
    }

    #[test]
    fn memory_bound_kernel_time_matches_bandwidth() {
        let arch = v100();
        let cost = KernelCost {
            global_read_bytes: 742_000_000, // 742 MB at 742 GB/s = 1 ms
            blocks: 10_000,
            ..Default::default()
        };
        let t = cost.time_on(&arch, arch.num_sms as f64).total();
        assert!((t.as_ms() - 1.0).abs() < 1e-6, "got {t}");
    }

    #[test]
    fn overlap_model_takes_max_not_sum() {
        let arch = v100();
        let cost = KernelCost {
            global_read_bytes: 742_000, // 1 us of memory
            int_ops: 1,                 // negligible compute
            ..Default::default()
        };
        let bd = cost.time_on(&arch, arch.num_sms as f64);
        assert_eq!(bd.total(), bd.memory);
        assert_eq!(bd.bottleneck(), "memory");
    }

    #[test]
    fn shared_atomics_dominate_on_kepler_not_volta() {
        // Same workload: memory-light, atomic-heavy.
        let cost = KernelCost {
            global_read_bytes: 1_000,
            shared_atomic_warp_ops: 1_000_000,
            ..Default::default()
        };
        let k = k20xm();
        let v = v100();
        let t_k = cost.time_on(&k, k.num_sms as f64);
        let t_v = cost.time_on(&v, v.num_sms as f64);
        assert_eq!(t_k.bottleneck(), "shared-atomic");
        // Volta processes the same shared-atomic load much faster:
        // more SMs and a lower per-instruction cost.
        assert!(t_k.shared_atomic.as_ns() > 5.0 * t_v.shared_atomic.as_ns());
    }

    #[test]
    fn same_address_global_atomics_ignore_parallelism() {
        let arch = v100();
        let cost = KernelCost {
            global_atomic_hot_ops: 1000, // all to one address
            ..Default::default()
        };
        let few = cost.time_on(&arch, 1.0).global_atomic;
        let many = cost.time_on(&arch, arch.num_sms as f64).global_atomic;
        // The serialization term dominates in both cases and does not
        // shrink with more SMs.
        assert!((few.as_ns() - many.as_ns()).abs() < 1e-9);
    }

    #[test]
    fn low_occupancy_slows_memory() {
        let arch = v100();
        let cost = KernelCost {
            global_read_bytes: 1_000_000,
            ..Default::default()
        };
        let full = cost.time_on(&arch, arch.num_sms as f64).memory;
        let quarter = cost.time_on(&arch, arch.num_sms as f64 / 4.0).memory;
        assert!(quarter.as_ns() > 3.9 * full.as_ns());
    }

    #[test]
    fn uncoalesced_traffic_is_penalized() {
        let arch = v100();
        let coalesced = KernelCost {
            global_read_bytes: 1_000_000,
            ..Default::default()
        };
        let scattered = KernelCost {
            uncoalesced_bytes: 1_000_000,
            ..Default::default()
        };
        let t_c = coalesced.time_on(&arch, arch.num_sms as f64).memory;
        let t_s = scattered.time_on(&arch, arch.num_sms as f64).memory;
        assert!((t_s.as_ns() / t_c.as_ns() - arch.uncoalesced_penalty).abs() < 1e-9);
    }

    #[test]
    fn scale_multiplies_every_component() {
        let arch = v100();
        let cost = KernelCost {
            global_read_bytes: 1_000_000,
            shared_atomic_warp_ops: 1_000,
            int_ops: 10_000,
            ..Default::default()
        };
        let bd = cost.time_on(&arch, arch.num_sms as f64);
        let scaled = bd.scale(3.0);
        assert!((scaled.memory.as_ns() - 3.0 * bd.memory.as_ns()).abs() < 1e-9);
        assert!((scaled.total().as_ns() - 3.0 * bd.total().as_ns()).abs() < 1e-9);
        assert_eq!(scaled.bottleneck(), bd.bottleneck());
    }

    /// More work on any resource can never make a kernel *faster*: the
    /// overlap model is monotone in every counter. A violation would let
    /// the simulator "reward" extra atomic collisions or extra traffic,
    /// inverting every comparison the figures are built on.
    #[test]
    fn cost_is_monotone_in_every_resource() {
        let base = KernelCost {
            global_read_bytes: 100_000,
            global_write_bytes: 50_000,
            uncoalesced_bytes: 10_000,
            shared_atomic_warp_ops: 2_000,
            shared_atomic_replays: 500,
            global_atomic_ops: 1_000,
            global_atomic_hot_ops: 200,
            warp_intrinsics: 3_000,
            smem_bytes: 40_000,
            int_ops: 80_000,
            blocks: 80,
        };
        type Bump = fn(&mut KernelCost);
        let bumps: [(&str, Bump); 10] = [
            ("global_read_bytes", |c| c.global_read_bytes += 1_000_000),
            ("global_write_bytes", |c| c.global_write_bytes += 1_000_000),
            ("uncoalesced_bytes", |c| c.uncoalesced_bytes += 1_000_000),
            ("shared_atomic_warp_ops", |c| {
                c.shared_atomic_warp_ops += 100_000
            }),
            ("shared_atomic_replays", |c| {
                c.shared_atomic_replays += 100_000
            }),
            ("global_atomic_ops", |c| c.global_atomic_ops += 100_000),
            ("global_atomic_hot_ops", |c| {
                c.global_atomic_hot_ops += 100_000
            }),
            ("warp_intrinsics", |c| c.warp_intrinsics += 100_000),
            ("smem_bytes", |c| c.smem_bytes += 10_000_000),
            ("int_ops", |c| c.int_ops += 10_000_000),
        ];
        for arch in [k20xm(), v100()] {
            for occupancy in [1.0, arch.num_sms as f64 / 2.0, arch.num_sms as f64] {
                let t0 = base.time_on(&arch, occupancy).total();
                for (name, bump) in bumps {
                    let mut c = base;
                    bump(&mut c);
                    let t1 = c.time_on(&arch, occupancy).total();
                    assert!(
                        t1 >= t0,
                        "{name} increase made {} faster at occupancy {occupancy}: \
                         {t0} -> {t1}",
                        arch.name
                    );
                }
            }
        }
    }

    /// Fig. 5's architecture split: the *relative* price of same-address
    /// shared-atomic collisions (conflict replays) is far higher on
    /// Kepler than on Volta, which is why the paper's warp-aggregated
    /// variants pay off on the K20Xm but barely matter on the V100.
    #[test]
    fn replay_penalty_ordering_matches_fig5() {
        let conflict_free = KernelCost {
            shared_atomic_warp_ops: 100_000,
            ..Default::default()
        };
        // Same instruction count, every warp fully serialized on one
        // counter (31 replays per 32-lane warp).
        let colliding = KernelCost {
            shared_atomic_warp_ops: 100_000,
            shared_atomic_replays: 3_100_000,
            ..Default::default()
        };
        let k = k20xm();
        let v = v100();
        let slowdown = |arch: &crate::arch::GpuArchitecture| {
            let base = conflict_free
                .time_on(arch, arch.num_sms as f64)
                .shared_atomic;
            let bad = colliding.time_on(arch, arch.num_sms as f64).shared_atomic;
            bad.as_ns() / base.as_ns()
        };
        let k_slowdown = slowdown(&k);
        let v_slowdown = slowdown(&v);
        assert!(k_slowdown > 1.0 && v_slowdown > 1.0);
        assert!(
            k_slowdown > v_slowdown,
            "Kepler must punish collisions harder: K20Xm x{k_slowdown:.1} \
             vs V100 x{v_slowdown:.1}"
        );
        // And in absolute terms the colliding workload is still slower
        // on Kepler despite Volta having more SMs to spread it over.
        let abs_k = colliding.time_on(&k, k.num_sms as f64).shared_atomic;
        let abs_v = colliding.time_on(&v, v.num_sms as f64).shared_atomic;
        assert!(abs_k > abs_v);
    }

    #[test]
    fn busy_sms_clamped_to_device() {
        let arch = v100();
        let cost = KernelCost {
            global_read_bytes: 1_000_000,
            ..Default::default()
        };
        let a = cost.time_on(&arch, 10_000.0).memory;
        let b = cost.time_on(&arch, arch.num_sms as f64).memory;
        assert_eq!(a.as_ns(), b.as_ns());
    }
}
