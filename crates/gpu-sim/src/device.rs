//! The simulated device: executes kernels functionally (block-parallel on
//! host threads) and keeps a timeline of per-kernel simulated timings.

use crate::arch::GpuArchitecture;
use crate::cost::{CostBreakdown, KernelCost, SimTime};
use crate::event::Event;
use crate::launch::{occupancy, LaunchConfig};
use hpc_par::ThreadPool;

/// Whether a kernel was launched by the host or from the device
/// (CUDA Dynamic Parallelism); the two have different launch latencies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaunchOrigin {
    Host,
    Device,
}

/// One executed kernel on the device timeline.
#[derive(Debug, Clone)]
pub struct KernelRecord {
    /// Kernel name, e.g. `"count"` or `"filter"` — used to aggregate the
    /// Fig. 9 breakdown.
    pub name: String,
    /// Launch configuration used.
    pub config: LaunchConfig,
    /// Simulated start time (after the launch overhead).
    pub start: SimTime,
    /// Simulated execution duration (excluding launch overhead).
    pub duration: SimTime,
    /// Launch latency charged before the kernel ran.
    pub launch_overhead: SimTime,
    /// Aggregated resource usage.
    pub cost: KernelCost,
    /// Per-resource time components (their max is `duration`).
    pub breakdown: CostBreakdown,
    /// How the kernel was launched.
    pub origin: LaunchOrigin,
}

/// Aggregated statistics for all launches of one kernel name.
#[derive(Debug, Clone)]
pub struct KernelSummary {
    pub name: String,
    pub launches: u64,
    pub total_time: SimTime,
    pub total_launch_overhead: SimTime,
    pub cost: KernelCost,
}

/// A simulated GPU: owns the architecture model, runs kernels
/// block-parallel on the host pool, and advances a simulated clock.
pub struct Device<'p> {
    arch: GpuArchitecture,
    pool: &'p ThreadPool,
    now: SimTime,
    records: Vec<KernelRecord>,
}

impl<'p> Device<'p> {
    /// Create a device of the given architecture executing on `pool`.
    pub fn new(arch: GpuArchitecture, pool: &'p ThreadPool) -> Self {
        Self {
            arch,
            pool,
            now: SimTime::ZERO,
            records: Vec::new(),
        }
    }

    /// Convenience constructor on the process-global pool.
    pub fn on_global_pool(arch: GpuArchitecture) -> Device<'static> {
        Device::new(arch, ThreadPool::global())
    }

    pub fn arch(&self) -> &GpuArchitecture {
        &self.arch
    }

    pub fn pool(&self) -> &'p ThreadPool {
        self.pool
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Record a timestamp (the analogue of `cudaEventRecord`).
    pub fn record_event(&self) -> Event {
        Event::at(self.now)
    }

    /// Launch a kernel: run `kernel(block_id, &mut cost)` for every block
    /// of the grid (parallelized over the host pool), convert the merged
    /// resource usage into simulated time, and advance the clock.
    ///
    /// Returns the duration including launch overhead.
    pub fn launch<F>(
        &mut self,
        name: impl Into<String>,
        config: LaunchConfig,
        origin: LaunchOrigin,
        kernel: F,
    ) -> SimTime
    where
        F: Fn(u32, &mut KernelCost) + Sync,
    {
        let blocks = config.blocks as usize;
        let cost = hpc_par::parallel_map_reduce(
            self.pool,
            blocks,
            1,
            KernelCost::new(),
            |range, mut acc| {
                for b in range {
                    kernel(b as u32, &mut acc);
                }
                acc
            },
            |mut a, b| {
                a.merge(&b);
                a
            },
        );
        self.commit(name, config, origin, cost)
    }

    /// Record a kernel whose resource usage was computed by the caller
    /// (used when a kernel's functional work and cost accounting are
    /// produced by one fused pass).
    pub fn commit(
        &mut self,
        name: impl Into<String>,
        config: LaunchConfig,
        origin: LaunchOrigin,
        cost: KernelCost,
    ) -> SimTime {
        let occ = occupancy(&self.arch, &config);
        let breakdown = cost.time_on(&self.arch, occ.effective_sms);
        let duration = breakdown.total();
        let launch_overhead = match origin {
            LaunchOrigin::Host => SimTime::from_us(self.arch.host_launch_us),
            LaunchOrigin::Device => SimTime::from_us(self.arch.device_launch_us),
        };
        self.now += launch_overhead;
        let start = self.now;
        self.now += duration;
        self.records.push(KernelRecord {
            name: name.into(),
            config,
            start,
            duration,
            launch_overhead,
            cost,
            breakdown,
            origin,
        });
        duration + launch_overhead
    }

    /// Simulated time elapsed since `event` (the analogue of
    /// `cudaEventElapsedTime`).
    pub fn elapsed_since(&self, event: Event) -> SimTime {
        self.now - event.time()
    }

    /// The full kernel timeline since the last reset.
    pub fn records(&self) -> &[KernelRecord] {
        &self.records
    }

    /// Clear the timeline and reset the clock (between measurements).
    pub fn reset(&mut self) {
        self.now = SimTime::ZERO;
        self.records.clear();
    }

    /// Aggregate the timeline per kernel name, preserving first-seen
    /// order (for Fig. 9-style breakdowns).
    pub fn kernel_summary(&self) -> Vec<KernelSummary> {
        let mut order: Vec<String> = Vec::new();
        let mut out: Vec<KernelSummary> = Vec::new();
        for rec in &self.records {
            let idx = match order.iter().position(|n| n == &rec.name) {
                Some(i) => i,
                None => {
                    order.push(rec.name.clone());
                    out.push(KernelSummary {
                        name: rec.name.clone(),
                        launches: 0,
                        total_time: SimTime::ZERO,
                        total_launch_overhead: SimTime::ZERO,
                        cost: KernelCost::new(),
                    });
                    out.len() - 1
                }
            };
            let s = &mut out[idx];
            s.launches += 1;
            s.total_time += rec.duration;
            s.total_launch_overhead += rec.launch_overhead;
            s.cost.merge(&rec.cost);
        }
        out
    }

    /// Total simulated time of every kernel plus launch overheads.
    pub fn total_time(&self) -> SimTime {
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::v100;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn device(pool: &ThreadPool) -> Device<'_> {
        Device::new(v100(), pool)
    }

    #[test]
    fn launch_runs_every_block_once() {
        let pool = ThreadPool::new(4);
        let mut dev = device(&pool);
        let cfg = LaunchConfig {
            blocks: 100,
            threads_per_block: 128,
            shared_mem_bytes: 0,
        };
        let hits: Vec<AtomicU32> = (0..100).map(|_| AtomicU32::new(0)).collect();
        dev.launch("touch", cfg, LaunchOrigin::Host, |b, cost| {
            hits[b as usize].fetch_add(1, Ordering::Relaxed);
            cost.global_read_bytes += 4;
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        assert_eq!(dev.records().len(), 1);
        assert_eq!(dev.records()[0].cost.global_read_bytes, 400);
    }

    #[test]
    fn clock_advances_by_duration_plus_overhead() {
        let pool = ThreadPool::new(2);
        let mut dev = device(&pool);
        let cfg = LaunchConfig {
            blocks: 1000,
            threads_per_block: 256,
            shared_mem_bytes: 0,
        };
        let before = dev.now();
        let total = dev.launch("k", cfg, LaunchOrigin::Host, |_, cost| {
            cost.global_read_bytes += 1_000_000;
        });
        assert!((dev.now() - before).as_ns() > 0.0);
        assert!(((dev.now() - before).as_ns() - total.as_ns()).abs() < 1e-9);
        let rec = &dev.records()[0];
        assert!((rec.launch_overhead.as_us() - dev.arch().host_launch_us).abs() < 1e-9);
    }

    #[test]
    fn device_launch_is_cheaper_than_host_launch() {
        let pool = ThreadPool::new(2);
        let mut dev = device(&pool);
        let cfg = LaunchConfig {
            blocks: 1,
            threads_per_block: 32,
            shared_mem_bytes: 0,
        };
        dev.launch("h", cfg, LaunchOrigin::Host, |_, _| {});
        dev.launch("d", cfg, LaunchOrigin::Device, |_, _| {});
        let recs = dev.records();
        assert!(recs[0].launch_overhead > recs[1].launch_overhead);
    }

    #[test]
    fn events_measure_elapsed_time() {
        let pool = ThreadPool::new(2);
        let mut dev = device(&pool);
        let cfg = LaunchConfig {
            blocks: 100,
            threads_per_block: 256,
            shared_mem_bytes: 0,
        };
        let ev = dev.record_event();
        dev.launch("a", cfg, LaunchOrigin::Host, |_, c| {
            c.global_read_bytes += 500_000;
        });
        let elapsed = dev.elapsed_since(ev);
        assert!(elapsed.as_ns() > 0.0);
        assert!((elapsed.as_ns() - dev.now().as_ns()).abs() < 1e-9);
    }

    #[test]
    fn summary_groups_by_name_in_first_seen_order() {
        let pool = ThreadPool::new(2);
        let mut dev = device(&pool);
        let cfg = LaunchConfig {
            blocks: 10,
            threads_per_block: 64,
            shared_mem_bytes: 0,
        };
        dev.launch("count", cfg, LaunchOrigin::Host, |_, c| {
            c.global_read_bytes += 10
        });
        dev.launch("filter", cfg, LaunchOrigin::Host, |_, c| {
            c.global_read_bytes += 20
        });
        dev.launch("count", cfg, LaunchOrigin::Device, |_, c| {
            c.global_read_bytes += 30
        });
        let summary = dev.kernel_summary();
        assert_eq!(summary.len(), 2);
        assert_eq!(summary[0].name, "count");
        assert_eq!(summary[0].launches, 2);
        assert_eq!(summary[0].cost.global_read_bytes, 400);
        assert_eq!(summary[1].name, "filter");
        assert_eq!(summary[1].launches, 1);
    }

    #[test]
    fn reset_clears_timeline() {
        let pool = ThreadPool::new(2);
        let mut dev = device(&pool);
        let cfg = LaunchConfig {
            blocks: 1,
            threads_per_block: 32,
            shared_mem_bytes: 0,
        };
        dev.launch("k", cfg, LaunchOrigin::Host, |_, _| {});
        dev.reset();
        assert!(dev.records().is_empty());
        assert_eq!(dev.now(), SimTime::ZERO);
    }
}
