//! The simulated device: executes kernels functionally (block-parallel on
//! host threads) and keeps a timeline of per-kernel simulated timings.
//!
//! # Fault injection
//!
//! A device optionally carries a [`FaultInjector`] (see
//! [`Device::set_fault_plan`]). Every launch/commit consults it; injected
//! launch failures surface through the fallible entry points
//! ([`Device::try_launch`], [`Device::try_commit`]) as [`LaunchError`]s.
//! The *infallible* entry points keep their historical signatures: on an
//! injected failure they charge the launch overhead, record the failed
//! launch on the timeline, **latch** the error, and return — kernel
//! helpers deep inside an algorithm need no signature changes, and the
//! driver polls [`Device::take_fault`] after each algorithmic step to
//! learn that the step's results are garbage and must be retried.

use crate::arch::GpuArchitecture;
use crate::bufpool::{BufferPool, BufferPoolStats};
use crate::cost::{CostBreakdown, KernelCost, SimTime};
use crate::event::Event;
use crate::fault::{FaultInjector, FaultKind, FaultPlan, LaunchError, MemoryCorruption};
use crate::launch::{occupancy, LaunchConfig};
use crate::memory::{AllocError, CorruptTarget, DeviceMemory, ScatterBuffer};
use crate::sanitizer::{reports_to_json, SanitizerConfig, SanitizerReport, SanitizerSink};
use hpc_par::ThreadPool;
use std::borrow::Cow;

/// Whether a kernel was launched by the host or from the device
/// (CUDA Dynamic Parallelism); the two have different launch latencies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaunchOrigin {
    Host,
    Device,
}

/// One executed kernel on the device timeline.
#[derive(Debug, Clone)]
pub struct KernelRecord {
    /// Kernel name, e.g. `"count"` or `"filter"` — used to aggregate the
    /// Fig. 9 breakdown. Borrowed for the static kernel names of the hot
    /// path (recording a launch must not allocate), owned for the few
    /// synthesized names such as `"corrupt:<region>"`.
    pub name: Cow<'static, str>,
    /// Launch configuration used.
    pub config: LaunchConfig,
    /// Simulated start time (after the launch overhead).
    pub start: SimTime,
    /// Simulated execution duration (excluding launch overhead).
    pub duration: SimTime,
    /// Launch latency charged before the kernel ran.
    pub launch_overhead: SimTime,
    /// Aggregated resource usage.
    pub cost: KernelCost,
    /// Per-resource time components (their max is `duration`).
    pub breakdown: CostBreakdown,
    /// How the kernel was launched.
    pub origin: LaunchOrigin,
    /// Injected fault affecting this launch, if any: `LaunchFailure`
    /// means the kernel did not run (zero duration), `LatencySpike`
    /// means it ran slower than modeled.
    pub fault: Option<FaultKind>,
    /// SIMT-sanitizer result for this launch: `Some` (possibly clean)
    /// when the device sanitizer was armed, `None` otherwise.
    pub sanitizer: Option<SanitizerReport>,
}

/// Aggregated statistics for all launches of one kernel name.
#[derive(Debug, Clone)]
pub struct KernelSummary {
    pub name: String,
    pub launches: u64,
    pub total_time: SimTime,
    pub total_launch_overhead: SimTime,
    pub cost: KernelCost,
}

/// A simulated GPU: owns the architecture model, runs kernels
/// block-parallel on the host pool, and advances a simulated clock.
pub struct Device<'p> {
    arch: GpuArchitecture,
    pool: &'p ThreadPool,
    now: SimTime,
    records: Vec<KernelRecord>,
    injector: Option<FaultInjector>,
    latched_fault: Option<LaunchError>,
    launch_counter: u64,
    alloc_counter: u64,
    access_counter: u64,
    memory: DeviceMemory,
    sanitizer: Option<SanitizerSink>,
    buf_pool: Option<BufferPool>,
}

impl<'p> Device<'p> {
    /// Create a device of the given architecture executing on `pool`.
    pub fn new(arch: GpuArchitecture, pool: &'p ThreadPool) -> Self {
        Self {
            arch,
            pool,
            now: SimTime::ZERO,
            records: Vec::new(),
            injector: None,
            latched_fault: None,
            launch_counter: 0,
            alloc_counter: 0,
            access_counter: 0,
            memory: DeviceMemory::unlimited(),
            sanitizer: None,
            buf_pool: None,
        }
    }

    /// Convenience constructor on the process-global pool.
    pub fn on_global_pool(arch: GpuArchitecture) -> Device<'static> {
        Device::new(arch, ThreadPool::global())
    }

    pub fn arch(&self) -> &GpuArchitecture {
        &self.arch
    }

    pub fn pool(&self) -> &'p ThreadPool {
        self.pool
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Record a timestamp (the analogue of `cudaEventRecord`).
    pub fn record_event(&self) -> Event {
        Event::at(self.now)
    }

    /// Install a fault plan: every subsequent launch/commit/allocation
    /// consults a fresh [`FaultInjector`] seeded from the plan.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.injector = Some(FaultInjector::new(plan));
    }

    /// Remove the fault plan (subsequent launches are fault-free).
    pub fn clear_fault_plan(&mut self) {
        self.injector = None;
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.injector.as_ref().map(|inj| inj.plan())
    }

    /// Arm the SIMT sanitizer: buffers handed out by
    /// [`Device::scatter_buffer`] grow shadow write-tracking, kernels
    /// may report invariant violations, and every subsequent
    /// [`KernelRecord`] carries a [`SanitizerReport`] (clean or not).
    ///
    /// Deliberately independent of the launch/alloc counters, so arming
    /// the sanitizer never perturbs an installed fault schedule.
    pub fn set_sanitizer(&mut self, cfg: SanitizerConfig) {
        self.sanitizer = Some(SanitizerSink::new(cfg));
    }

    /// Disarm the sanitizer (subsequent records carry no report).
    pub fn clear_sanitizer(&mut self) {
        self.sanitizer = None;
    }

    /// Whether the sanitizer is armed.
    pub fn sanitizer_enabled(&self) -> bool {
        self.sanitizer.is_some()
    }

    /// A handle to the findings sink, for kernels that create their own
    /// sanitized structures (e.g. a [`crate::SharedArray`]).
    pub fn sanitizer_sink(&self) -> Option<SanitizerSink> {
        self.sanitizer.clone()
    }

    /// All non-clean sanitizer reports on the timeline, with the kernel
    /// name each belongs to.
    pub fn sanitizer_findings(&self) -> Vec<(&str, &SanitizerReport)> {
        self.records
            .iter()
            .filter_map(|r| match &r.sanitizer {
                Some(rep) if !rep.is_clean() => Some((r.name.as_ref(), rep)),
                _ => None,
            })
            .collect()
    }

    /// True when the sanitizer is armed and no kernel on the timeline
    /// produced a finding.
    pub fn sanitizer_clean(&self) -> bool {
        self.sanitizer.is_some()
            && self.records.iter().all(|r| match &r.sanitizer {
                Some(rep) => rep.is_clean(),
                None => true,
            })
    }

    /// Serialize every record's sanitizer report as JSON (the CI
    /// artifact format; empty array when the sanitizer is off).
    pub fn sanitizer_json(&self) -> String {
        let reports: Vec<(String, SanitizerReport)> = self
            .records
            .iter()
            .filter_map(|r| {
                r.sanitizer
                    .as_ref()
                    .map(|rep| (r.name.to_string(), rep.clone()))
            })
            .collect();
        reports_to_json(&reports)
    }

    /// Allocate a scatter buffer for a kernel's output: plain when the
    /// sanitizer is off (zero overhead), shadow-tracked when armed.
    /// Unlike [`Device::try_alloc_scatter`] this touches no fault or
    /// allocation counters — it exists so kernels can opt into
    /// sanitization without perturbing deterministic fault schedules.
    pub fn scatter_buffer<T>(&self, len: usize, region: &str) -> ScatterBuffer<T> {
        match &self.sanitizer {
            Some(sink) => ScatterBuffer::with_sanitizer(len, sink.clone(), region),
            None => ScatterBuffer::new(len),
        }
    }

    /// Arm the buffer pool: [`Device::pooled_scatter`] and
    /// [`Device::lease_vec`] start drawing storage from recycled
    /// allocations instead of the heap. Like the sanitizer, the pool is
    /// deliberately independent of the launch/alloc counters — arming it
    /// never perturbs a fault schedule — and it survives
    /// [`Device::reset`], since its whole point is reuse across repeated
    /// queries. A region the injector corrupts is poisoned in the pool,
    /// so corrupted buffers are never recycled into a later query.
    pub fn enable_buffer_pool(&mut self) {
        if self.buf_pool.is_none() {
            self.buf_pool = Some(BufferPool::new());
        }
    }

    /// Disarm the buffer pool, dropping every shelved allocation.
    pub fn disable_buffer_pool(&mut self) {
        self.buf_pool = None;
    }

    /// Whether the buffer pool is armed.
    pub fn buffer_pool_enabled(&self) -> bool {
        self.buf_pool.is_some()
    }

    /// Pool effectiveness counters (`None` when the pool is disarmed).
    pub fn buffer_pool_stats(&self) -> Option<BufferPoolStats> {
        self.buf_pool.as_ref().map(|p| p.stats())
    }

    /// [`Device::scatter_buffer`] drawing its storage from the buffer
    /// pool when armed (identical semantics otherwise): the kernels'
    /// allocation-free path. Consume the result with
    /// [`ScatterBuffer::into_vec`] and return the vector via
    /// [`Device::recycle_vec`] once its contents are dead.
    pub fn pooled_scatter<T: Send + 'static>(
        &mut self,
        len: usize,
        region: &'static str,
    ) -> ScatterBuffer<T> {
        match &mut self.buf_pool {
            Some(pool) => {
                let storage = pool.acquire::<T>(len, region);
                match &self.sanitizer {
                    Some(sink) => ScatterBuffer::from_storage_with_sanitizer(
                        storage,
                        len,
                        sink.clone(),
                        region,
                    ),
                    None => ScatterBuffer::from_storage(storage, len),
                }
            }
            None => self.scatter_buffer(len, region),
        }
    }

    /// Lease an empty vector with capacity at least `len` from the
    /// buffer pool (a plain empty vector when disarmed — callers grow it
    /// exactly as the unpooled code always did). Pair with
    /// [`Device::recycle_vec`] under the same region tag.
    pub fn lease_vec<T: Send + 'static>(&mut self, len: usize, region: &'static str) -> Vec<T> {
        match &mut self.buf_pool {
            Some(pool) => pool.acquire::<T>(len, region),
            None => Vec::new(),
        }
    }

    /// Return a dead buffer's allocation to the pool (dropped when the
    /// pool is disarmed, or when `region` was poisoned by an injected
    /// corruption since the last recycle).
    pub fn recycle_vec<T: Send + 'static>(&mut self, region: &'static str, buf: Vec<T>) {
        if let Some(pool) = &mut self.buf_pool {
            pool.recycle(region, buf);
        }
    }

    /// Replace the device-memory accounting (e.g. to impose a capacity).
    pub fn set_device_memory(&mut self, memory: DeviceMemory) {
        self.memory = memory;
    }

    /// Device-memory accounting state.
    pub fn memory(&self) -> &DeviceMemory {
        &self.memory
    }

    /// Take the latched fault, if one was injected since the last poll.
    /// Drivers call this after each algorithmic step; `Some` means the
    /// step's outputs are garbage and the step must be retried (or the
    /// algorithm abandoned to a fallback).
    pub fn take_fault(&mut self) -> Option<LaunchError> {
        self.latched_fault.take()
    }

    /// Whether a fault is latched without consuming it.
    pub fn has_fault(&self) -> bool {
        self.latched_fault.is_some()
    }

    /// Advance the simulated clock by `dt` without running anything —
    /// models host-side waits such as retry backoff, so resilience
    /// overhead shows up in the measured timeline.
    pub fn advance_time(&mut self, dt: SimTime) {
        self.now += dt;
    }

    /// Decide the fate of the next launch and hand out its index.
    fn next_launch_decision(&mut self) -> (u64, Option<FaultKind>, f64) {
        let index = self.launch_counter;
        self.launch_counter += 1;
        match &mut self.injector {
            Some(inj) => {
                let fault = inj.on_launch(index);
                (index, fault, inj.spike_factor())
            }
            None => (index, None, 1.0),
        }
    }

    /// Push one record (normal, spiked, or failed) and advance the clock.
    fn commit_record(
        &mut self,
        name: Cow<'static, str>,
        config: LaunchConfig,
        origin: LaunchOrigin,
        cost: KernelCost,
        fault: Option<FaultKind>,
        spike_factor: f64,
    ) -> SimTime {
        let breakdown = match fault {
            // The launch never ran: no execution time, no resource usage.
            Some(FaultKind::LaunchFailure) => CostBreakdown::default(),
            Some(FaultKind::LatencySpike) => {
                let occ = occupancy(&self.arch, &config);
                cost.time_on(&self.arch, occ.effective_sms)
                    .scale(spike_factor)
            }
            _ => {
                let occ = occupancy(&self.arch, &config);
                cost.time_on(&self.arch, occ.effective_sms)
            }
        };
        let duration = breakdown.total();
        let launch_overhead = match origin {
            LaunchOrigin::Host => SimTime::from_us(self.arch.host_launch_us),
            LaunchOrigin::Device => SimTime::from_us(self.arch.device_launch_us),
        };
        self.now += launch_overhead;
        let start = self.now;
        self.now += duration;
        let cost = if fault == Some(FaultKind::LaunchFailure) {
            KernelCost::new()
        } else {
            cost
        };
        // Findings reported since the previous commit belong to this
        // launch; draining here keeps the sink empty between kernels.
        let sanitizer = self.sanitizer.as_ref().map(|sink| sink.drain());
        self.records.push(KernelRecord {
            name,
            config,
            start,
            duration,
            launch_overhead,
            cost,
            breakdown,
            origin,
            fault,
            sanitizer,
        });
        duration + launch_overhead
    }

    /// Fallible kernel launch: run `kernel(block_id, &mut cost)` for
    /// every block of the grid (parallelized over the host pool), convert
    /// the merged resource usage into simulated time, and advance the
    /// clock.
    ///
    /// With a fault plan installed, an injected launch failure skips the
    /// kernel entirely (its closure never runs), charges the launch
    /// overhead, records the failed launch on the timeline, and returns
    /// the error. A latency spike runs the kernel normally but inflates
    /// its recorded duration.
    ///
    /// Returns the duration including launch overhead.
    pub fn try_launch<F>(
        &mut self,
        name: impl Into<Cow<'static, str>>,
        config: LaunchConfig,
        origin: LaunchOrigin,
        kernel: F,
    ) -> Result<SimTime, LaunchError>
    where
        F: Fn(u32, &mut KernelCost) + Sync,
    {
        let name = name.into();
        let (index, fault, spike_factor) = self.next_launch_decision();
        if fault == Some(FaultKind::LaunchFailure) {
            self.commit_record(
                name.clone(),
                config,
                origin,
                KernelCost::new(),
                fault,
                spike_factor,
            );
            return Err(LaunchError {
                kind: FaultKind::LaunchFailure,
                kernel: name.into_owned(),
                launch_index: index,
                at: self.now,
            });
        }
        let blocks = config.blocks as usize;
        let cost = hpc_par::parallel_map_reduce(
            self.pool,
            blocks,
            1,
            KernelCost::new(),
            |range, mut acc| {
                for b in range {
                    kernel(b as u32, &mut acc);
                }
                acc
            },
            |mut a, b| {
                a.merge(&b);
                a
            },
        );
        Ok(self.commit_record(name, config, origin, cost, fault, spike_factor))
    }

    /// Launch a kernel through the infallible path: like
    /// [`Device::try_launch`], but an injected failure is latched for
    /// [`Device::take_fault`] instead of returned, and only the launch
    /// overhead is charged.
    pub fn launch<F>(
        &mut self,
        name: impl Into<Cow<'static, str>>,
        config: LaunchConfig,
        origin: LaunchOrigin,
        kernel: F,
    ) -> SimTime
    where
        F: Fn(u32, &mut KernelCost) + Sync,
    {
        match self.try_launch(name, config, origin, kernel) {
            Ok(t) => t,
            Err(err) => {
                self.latch(err);
                match origin {
                    LaunchOrigin::Host => SimTime::from_us(self.arch.host_launch_us),
                    LaunchOrigin::Device => SimTime::from_us(self.arch.device_launch_us),
                }
            }
        }
    }

    /// Fallible commit of a kernel whose resource usage was computed by
    /// the caller (used when a kernel's functional work and cost
    /// accounting are produced by one fused pass). An injected failure
    /// means the launch is considered not to have happened: the caller's
    /// outputs must be discarded.
    pub fn try_commit(
        &mut self,
        name: impl Into<Cow<'static, str>>,
        config: LaunchConfig,
        origin: LaunchOrigin,
        cost: KernelCost,
    ) -> Result<SimTime, LaunchError> {
        let name = name.into();
        let (index, fault, spike_factor) = self.next_launch_decision();
        if fault == Some(FaultKind::LaunchFailure) {
            self.commit_record(
                name.clone(),
                config,
                origin,
                KernelCost::new(),
                fault,
                spike_factor,
            );
            return Err(LaunchError {
                kind: FaultKind::LaunchFailure,
                kernel: name.into_owned(),
                launch_index: index,
                at: self.now,
            });
        }
        Ok(self.commit_record(name, config, origin, cost, fault, spike_factor))
    }

    /// Infallible commit: latches injected failures like
    /// [`Device::launch`].
    pub fn commit(
        &mut self,
        name: impl Into<Cow<'static, str>>,
        config: LaunchConfig,
        origin: LaunchOrigin,
        cost: KernelCost,
    ) -> SimTime {
        match self.try_commit(name, config, origin, cost) {
            Ok(t) => t,
            Err(err) => {
                self.latch(err);
                match origin {
                    LaunchOrigin::Host => SimTime::from_us(self.arch.host_launch_us),
                    LaunchOrigin::Device => SimTime::from_us(self.arch.device_launch_us),
                }
            }
        }
    }

    /// Allocate a tracked scatter buffer of `len` elements, consulting
    /// the fault injector and the device-memory capacity. Failures are
    /// also latched (kernel helpers using the infallible launch pattern
    /// can return early and let the driver poll [`Device::take_fault`]).
    pub fn try_alloc_scatter<T>(&mut self, len: usize) -> Result<ScatterBuffer<T>, AllocError> {
        let bytes = (len * std::mem::size_of::<T>()) as u64;
        let index = self.alloc_counter;
        self.alloc_counter += 1;
        if let Some(inj) = &mut self.injector {
            if inj.on_alloc(index) {
                self.latch(LaunchError {
                    kind: FaultKind::MemoryExhaustion,
                    kernel: "alloc".to_string(),
                    launch_index: index,
                    at: self.now,
                });
                return Err(AllocError::Injected {
                    alloc_index: index,
                    bytes,
                });
            }
        }
        if let Err(err) = self.memory.try_reserve(bytes) {
            self.latch(LaunchError {
                kind: FaultKind::MemoryExhaustion,
                kernel: "alloc".to_string(),
                launch_index: index,
                at: self.now,
            });
            return Err(err);
        }
        Ok(self.scatter_buffer(len, "alloc"))
    }

    /// Return `bytes` of tracked device memory to the pool (paired with
    /// [`Device::try_alloc_scatter`] once the buffer is consumed).
    pub fn release_alloc(&mut self, bytes: u64) {
        self.memory.release(bytes);
    }

    /// Give the fault injector a chance to corrupt the named
    /// device-memory region (one tracked access). With a corruption-free
    /// plan — or no plan — this is a counter bump and nothing else.
    ///
    /// An injected corruption mutates one byte of `buf` in place and is
    /// recorded on the timeline as a zero-duration `"corrupt"` record
    /// (category `"fault"` in the Chrome trace), but it is **not**
    /// latched: memory upsets are silent on real hardware, so detection
    /// is left to algorithm-level integrity checks.
    pub fn corrupt_region<M: CorruptTarget + ?Sized>(
        &mut self,
        region: &str,
        buf: &mut M,
    ) -> Option<MemoryCorruption> {
        let index = self.access_counter;
        self.access_counter += 1;
        let now = self.now;
        let corruption =
            self.injector
                .as_mut()?
                .on_memory_access(index, now, region, buf.len_bytes())?;
        buf.mutate_byte(corruption.byte_offset, corruption.op);
        // The region's backing buffer now holds corrupted bytes: the pool
        // must not recycle it into a later query.
        if let Some(pool) = &mut self.buf_pool {
            pool.poison(region);
        }
        self.records.push(KernelRecord {
            name: Cow::Owned(format!("corrupt:{region}")),
            config: LaunchConfig {
                blocks: 1,
                threads_per_block: 1,
                shared_mem_bytes: 0,
            },
            start: self.now,
            duration: SimTime::ZERO,
            launch_overhead: SimTime::ZERO,
            cost: KernelCost::new(),
            breakdown: CostBreakdown::default(),
            origin: LaunchOrigin::Host,
            fault: Some(FaultKind::MemoryCorruption),
            sanitizer: None,
        });
        Some(corruption)
    }

    /// Number of memory corruptions injected since the last reset.
    pub fn corruptions_injected(&self) -> u64 {
        self.injector
            .as_ref()
            .map_or(0, |inj| inj.corruptions_injected())
    }

    /// Latch `err` for [`Device::take_fault`], keeping the earliest
    /// unconsumed fault (it is the root cause of a failed step).
    fn latch(&mut self, err: LaunchError) {
        self.latched_fault.get_or_insert(err);
    }

    /// Simulated time elapsed since `event` (the analogue of
    /// `cudaEventElapsedTime`).
    pub fn elapsed_since(&self, event: Event) -> SimTime {
        self.now - event.time()
    }

    /// The full kernel timeline since the last reset.
    pub fn records(&self) -> &[KernelRecord] {
        &self.records
    }

    /// Clear the timeline and reset the clock (between measurements).
    ///
    /// The fault injector is re-seeded from its plan and all fault/alloc
    /// counters restart, so repeated measurement reps see the exact same
    /// fault schedule — same seed, same report. The buffer pool is left
    /// warm: reuse across repeated queries is its purpose, and poisoned
    /// regions stay quarantined until their buffer is dropped.
    pub fn reset(&mut self) {
        self.now = SimTime::ZERO;
        self.records.clear();
        self.latched_fault = None;
        self.launch_counter = 0;
        self.alloc_counter = 0;
        self.access_counter = 0;
        self.memory.reset();
        if let Some(inj) = &self.injector {
            self.injector = Some(FaultInjector::new(inj.plan().clone()));
        }
        if let Some(sink) = &self.sanitizer {
            let _ = sink.drain();
        }
    }

    /// Aggregate the timeline per kernel name, preserving first-seen
    /// order (for Fig. 9-style breakdowns).
    pub fn kernel_summary(&self) -> Vec<KernelSummary> {
        let mut order: Vec<String> = Vec::new();
        let mut out: Vec<KernelSummary> = Vec::new();
        for rec in &self.records {
            let idx = match order.iter().position(|n| n == &rec.name) {
                Some(i) => i,
                None => {
                    order.push(rec.name.to_string());
                    out.push(KernelSummary {
                        name: rec.name.to_string(),
                        launches: 0,
                        total_time: SimTime::ZERO,
                        total_launch_overhead: SimTime::ZERO,
                        cost: KernelCost::new(),
                    });
                    out.len() - 1
                }
            };
            let s = &mut out[idx];
            s.launches += 1;
            s.total_time += rec.duration;
            s.total_launch_overhead += rec.launch_overhead;
            s.cost.merge(&rec.cost);
        }
        out
    }

    /// Total simulated time of every kernel plus launch overheads.
    pub fn total_time(&self) -> SimTime {
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::v100;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn device(pool: &ThreadPool) -> Device<'_> {
        Device::new(v100(), pool)
    }

    #[test]
    fn launch_runs_every_block_once() {
        let pool = ThreadPool::new(4);
        let mut dev = device(&pool);
        let cfg = LaunchConfig {
            blocks: 100,
            threads_per_block: 128,
            shared_mem_bytes: 0,
        };
        let hits: Vec<AtomicU32> = (0..100).map(|_| AtomicU32::new(0)).collect();
        dev.launch("touch", cfg, LaunchOrigin::Host, |b, cost| {
            hits[b as usize].fetch_add(1, Ordering::Relaxed);
            cost.global_read_bytes += 4;
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        assert_eq!(dev.records().len(), 1);
        assert_eq!(dev.records()[0].cost.global_read_bytes, 400);
    }

    #[test]
    fn clock_advances_by_duration_plus_overhead() {
        let pool = ThreadPool::new(2);
        let mut dev = device(&pool);
        let cfg = LaunchConfig {
            blocks: 1000,
            threads_per_block: 256,
            shared_mem_bytes: 0,
        };
        let before = dev.now();
        let total = dev.launch("k", cfg, LaunchOrigin::Host, |_, cost| {
            cost.global_read_bytes += 1_000_000;
        });
        assert!((dev.now() - before).as_ns() > 0.0);
        assert!(((dev.now() - before).as_ns() - total.as_ns()).abs() < 1e-9);
        let rec = &dev.records()[0];
        assert!((rec.launch_overhead.as_us() - dev.arch().host_launch_us).abs() < 1e-9);
    }

    #[test]
    fn device_launch_is_cheaper_than_host_launch() {
        let pool = ThreadPool::new(2);
        let mut dev = device(&pool);
        let cfg = LaunchConfig {
            blocks: 1,
            threads_per_block: 32,
            shared_mem_bytes: 0,
        };
        dev.launch("h", cfg, LaunchOrigin::Host, |_, _| {});
        dev.launch("d", cfg, LaunchOrigin::Device, |_, _| {});
        let recs = dev.records();
        assert!(recs[0].launch_overhead > recs[1].launch_overhead);
    }

    #[test]
    fn events_measure_elapsed_time() {
        let pool = ThreadPool::new(2);
        let mut dev = device(&pool);
        let cfg = LaunchConfig {
            blocks: 100,
            threads_per_block: 256,
            shared_mem_bytes: 0,
        };
        let ev = dev.record_event();
        dev.launch("a", cfg, LaunchOrigin::Host, |_, c| {
            c.global_read_bytes += 500_000;
        });
        let elapsed = dev.elapsed_since(ev);
        assert!(elapsed.as_ns() > 0.0);
        assert!((elapsed.as_ns() - dev.now().as_ns()).abs() < 1e-9);
    }

    #[test]
    fn summary_groups_by_name_in_first_seen_order() {
        let pool = ThreadPool::new(2);
        let mut dev = device(&pool);
        let cfg = LaunchConfig {
            blocks: 10,
            threads_per_block: 64,
            shared_mem_bytes: 0,
        };
        dev.launch("count", cfg, LaunchOrigin::Host, |_, c| {
            c.global_read_bytes += 10
        });
        dev.launch("filter", cfg, LaunchOrigin::Host, |_, c| {
            c.global_read_bytes += 20
        });
        dev.launch("count", cfg, LaunchOrigin::Device, |_, c| {
            c.global_read_bytes += 30
        });
        let summary = dev.kernel_summary();
        assert_eq!(summary.len(), 2);
        assert_eq!(summary[0].name, "count");
        assert_eq!(summary[0].launches, 2);
        assert_eq!(summary[0].cost.global_read_bytes, 400);
        assert_eq!(summary[1].name, "filter");
        assert_eq!(summary[1].launches, 1);
    }

    #[test]
    fn reset_clears_timeline() {
        let pool = ThreadPool::new(2);
        let mut dev = device(&pool);
        let cfg = LaunchConfig {
            blocks: 1,
            threads_per_block: 32,
            shared_mem_bytes: 0,
        };
        dev.launch("k", cfg, LaunchOrigin::Host, |_, _| {});
        dev.reset();
        assert!(dev.records().is_empty());
        assert_eq!(dev.now(), SimTime::ZERO);
    }

    fn small_cfg() -> LaunchConfig {
        LaunchConfig {
            blocks: 10,
            threads_per_block: 64,
            shared_mem_bytes: 0,
        }
    }

    #[test]
    fn injected_launch_failure_skips_kernel_and_latches() {
        let pool = ThreadPool::new(2);
        let mut dev = device(&pool);
        dev.set_fault_plan(FaultPlan::new(1).fail_launches_at(&[0]));
        let ran = AtomicU32::new(0);
        dev.launch("doomed", small_cfg(), LaunchOrigin::Host, |_, _| {
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 0, "closure must not run");
        let rec = &dev.records()[0];
        assert_eq!(rec.fault, Some(FaultKind::LaunchFailure));
        assert_eq!(rec.duration, SimTime::ZERO);
        assert!(
            rec.launch_overhead > SimTime::ZERO,
            "overhead still charged"
        );
        let fault = dev.take_fault().expect("fault latched");
        assert_eq!(fault.kind, FaultKind::LaunchFailure);
        assert_eq!(fault.kernel, "doomed");
        assert_eq!(fault.launch_index, 0);
        assert!(dev.take_fault().is_none(), "fault consumed");
        // subsequent launches succeed and run
        dev.launch("fine", small_cfg(), LaunchOrigin::Host, |_, c| {
            c.global_read_bytes += 100;
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 10);
        assert!(dev.take_fault().is_none());
    }

    #[test]
    fn try_launch_returns_error_without_latching_consumable_twice() {
        let pool = ThreadPool::new(2);
        let mut dev = device(&pool);
        dev.set_fault_plan(FaultPlan::new(1).fail_launches_at(&[0]));
        let err = dev
            .try_launch("k", small_cfg(), LaunchOrigin::Device, |_, _| {})
            .unwrap_err();
        assert_eq!(err.kind, FaultKind::LaunchFailure);
        assert!(dev.take_fault().is_none(), "try path does not latch");
        assert!(dev
            .try_launch("k", small_cfg(), LaunchOrigin::Device, |_, _| {})
            .is_ok());
    }

    #[test]
    fn latency_spike_inflates_duration_but_runs_kernel() {
        let pool = ThreadPool::new(2);
        let work = |_: u32, c: &mut KernelCost| {
            c.global_read_bytes += 100_000;
        };
        // baseline without faults
        let mut clean = device(&pool);
        clean.launch("k", small_cfg(), LaunchOrigin::Host, work);
        let base = clean.records()[0].duration;

        let mut dev = device(&pool);
        dev.set_fault_plan(FaultPlan::new(1).latency_spikes(1.0, 4.0));
        let ran = AtomicU32::new(0);
        dev.launch("k", small_cfg(), LaunchOrigin::Host, |b, c| {
            ran.fetch_add(1, Ordering::Relaxed);
            work(b, c);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 10, "spiked kernel still runs");
        let rec = &dev.records()[0];
        assert_eq!(rec.fault, Some(FaultKind::LatencySpike));
        assert!((rec.duration.as_ns() - 4.0 * base.as_ns()).abs() < 1e-6);
        assert!(dev.take_fault().is_none(), "spikes are not errors");
    }

    #[test]
    fn commit_failure_discards_cost() {
        let pool = ThreadPool::new(2);
        let mut dev = device(&pool);
        dev.set_fault_plan(FaultPlan::new(1).fail_launches_at(&[0]));
        let cost = KernelCost {
            global_read_bytes: 12345,
            ..Default::default()
        };
        let err = dev
            .try_commit("c", small_cfg(), LaunchOrigin::Host, cost)
            .unwrap_err();
        assert_eq!(err.kind, FaultKind::LaunchFailure);
        assert_eq!(dev.records()[0].cost.global_read_bytes, 0);
    }

    #[test]
    fn alloc_faults_and_capacity() {
        let pool = ThreadPool::new(2);
        let mut dev = device(&pool);
        dev.set_fault_plan(FaultPlan::new(1).fail_allocs_at(&[0]));
        let err = dev.try_alloc_scatter::<u64>(100).unwrap_err();
        assert!(err.is_transient());
        assert_eq!(
            dev.take_fault().map(|f| f.kind),
            Some(FaultKind::MemoryExhaustion)
        );
        // retry succeeds and is tracked
        let buf = dev.try_alloc_scatter::<u64>(100).unwrap();
        assert_eq!(buf.len(), 100);
        assert_eq!(dev.memory().in_use(), 800);
        dev.release_alloc(800);
        assert_eq!(dev.memory().in_use(), 0);

        // a hard capacity produces a permanent OOM
        dev.clear_fault_plan();
        dev.set_device_memory(DeviceMemory::with_capacity(64));
        let err = dev.try_alloc_scatter::<u64>(100).unwrap_err();
        assert!(!err.is_transient());
        assert!(dev.take_fault().is_some());
    }

    #[test]
    fn reset_reseeds_injector_for_identical_schedules() {
        let pool = ThreadPool::new(2);
        let mut dev = device(&pool);
        dev.set_fault_plan(FaultPlan::new(99).launch_failures(0.3));
        let schedule = |dev: &mut Device| {
            for _ in 0..32 {
                dev.launch("k", small_cfg(), LaunchOrigin::Host, |_, _| {});
            }
            let pattern: Vec<bool> = dev.records().iter().map(|r| r.fault.is_some()).collect();
            pattern
        };
        let first = schedule(&mut dev);
        assert!(first.iter().any(|&f| f), "some launches must fail");
        assert!(!first.iter().all(|&f| f), "not all launches fail");
        dev.reset();
        let second = schedule(&mut dev);
        assert_eq!(first, second, "same seed, same schedule");
    }

    #[test]
    fn corrupt_region_mutates_buffer_and_records_without_latching() {
        let pool = ThreadPool::new(2);
        let mut dev = device(&pool);
        dev.set_fault_plan(FaultPlan::new(4).corrupt_accesses_at(&[0]));
        let mut counts = vec![0u64; 16];
        let c = dev
            .corrupt_region("counts", counts.as_mut_slice())
            .expect("explicit index fires");
        assert_eq!(c.region, "counts");
        assert!(counts.iter().any(|&v| v != 0), "a bit actually flipped");
        assert!(!dev.has_fault(), "corruption is silent, never latched");
        let rec = &dev.records()[0];
        assert_eq!(rec.name, "corrupt:counts");
        assert_eq!(rec.fault, Some(FaultKind::MemoryCorruption));
        assert_eq!(rec.duration, SimTime::ZERO);
        assert_eq!(dev.corruptions_injected(), 1);
        // access #1 is clean and leaves no record
        let mut more = vec![0u8; 4];
        assert!(dev.corrupt_region("oracles", more.as_mut_slice()).is_none());
        assert_eq!(dev.records().len(), 1);
    }

    #[test]
    fn corrupt_region_without_plan_is_noop() {
        let pool = ThreadPool::new(1);
        let mut dev = device(&pool);
        let mut buf = vec![1.0f32; 8];
        assert!(dev.corrupt_region("data", buf.as_mut_slice()).is_none());
        assert_eq!(buf, vec![1.0f32; 8]);
        assert!(dev.records().is_empty());
    }

    #[test]
    fn reset_reseeds_corruption_schedule() {
        let pool = ThreadPool::new(1);
        let mut dev = device(&pool);
        dev.set_fault_plan(FaultPlan::new(21).bitflips(0.5));
        let schedule = |dev: &mut Device| {
            (0..32)
                .map(|_| {
                    let mut buf = vec![0u32; 8];
                    dev.corrupt_region("r", buf.as_mut_slice())
                        .map(|c| (c.byte_offset, c.op, c.access_index))
                })
                .collect::<Vec<_>>()
        };
        let first = schedule(&mut dev);
        assert!(first.iter().any(|c| c.is_some()));
        dev.reset();
        assert_eq!(first, schedule(&mut dev), "same seed, same corruptions");
    }

    #[test]
    fn sanitizer_reports_attach_to_the_launching_kernel() {
        let pool = ThreadPool::new(2);
        let mut dev = device(&pool);
        dev.set_sanitizer(SanitizerConfig::full());
        assert!(dev.sanitizer_enabled());

        // clean kernel: its record carries an empty report
        let buf = dev.scatter_buffer::<u32>(4, "out");
        assert!(buf.is_sanitized());
        for i in 0..4 {
            unsafe { buf.write(i, i as u32) };
        }
        drop(unsafe { buf.into_vec(4) });
        dev.commit("clean", small_cfg(), LaunchOrigin::Host, KernelCost::new());

        // racy kernel: double write lands on *its* record, not the clean one
        let buf = dev.scatter_buffer::<u32>(2, "out");
        unsafe {
            buf.write(0, 1);
            buf.write(0, 2);
            buf.write(1, 3);
        }
        drop(unsafe { buf.into_vec(2) });
        dev.commit("racy", small_cfg(), LaunchOrigin::Host, KernelCost::new());

        let recs = dev.records();
        assert!(recs[0].sanitizer.as_ref().unwrap().is_clean());
        let racy = recs[1].sanitizer.as_ref().unwrap();
        assert_eq!(racy.findings.len(), 1);
        assert!(!dev.sanitizer_clean());
        assert_eq!(dev.sanitizer_findings().len(), 1);
        assert_eq!(dev.sanitizer_findings()[0].0, "racy");
        assert!(dev.sanitizer_json().contains("write-write-race"));
    }

    #[test]
    fn sanitizer_off_means_no_reports_and_plain_buffers() {
        let pool = ThreadPool::new(2);
        let mut dev = device(&pool);
        assert!(!dev.scatter_buffer::<u32>(4, "out").is_sanitized());
        dev.commit("k", small_cfg(), LaunchOrigin::Host, KernelCost::new());
        assert!(dev.records()[0].sanitizer.is_none());
        assert!(!dev.sanitizer_clean(), "clean requires the sanitizer armed");
        assert_eq!(dev.sanitizer_json(), "[]");
    }

    #[test]
    fn arming_the_sanitizer_does_not_shift_fault_schedules() {
        let pool = ThreadPool::new(2);
        let run = |sanitize: bool| {
            let mut dev = device(&pool);
            dev.set_fault_plan(FaultPlan::new(99).launch_failures(0.3));
            if sanitize {
                dev.set_sanitizer(SanitizerConfig::full());
            }
            for _ in 0..8 {
                let _buf = dev.scatter_buffer::<u64>(16, "out");
                dev.launch("k", small_cfg(), LaunchOrigin::Host, |_, _| {});
            }
            dev.records()
                .iter()
                .map(|r| r.fault.is_some())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn pooled_scatter_reuses_allocations_across_reset() {
        let pool = ThreadPool::new(2);
        let mut dev = device(&pool);
        dev.enable_buffer_pool();
        assert!(dev.buffer_pool_enabled());
        for rep in 0..3 {
            let buf = dev.pooled_scatter::<u64>(64, "count-partials");
            for i in 0..64 {
                unsafe { buf.write(i, i as u64) };
            }
            let v = unsafe { buf.into_vec(64) };
            assert!(v.iter().enumerate().all(|(i, &x)| x == i as u64));
            dev.recycle_vec("count-partials", v);
            dev.reset();
            let stats = dev.buffer_pool_stats().unwrap();
            assert_eq!(stats.acquires, rep + 1);
            assert_eq!(stats.hits, rep, "reset keeps the pool warm");
        }
    }

    #[test]
    fn pooled_scatter_without_pool_matches_plain_buffer() {
        let pool = ThreadPool::new(1);
        let mut dev = device(&pool);
        let buf = dev.pooled_scatter::<u32>(4, "out");
        assert!(!buf.is_sanitized());
        assert_eq!(buf.len(), 4);
        assert!(dev.buffer_pool_stats().is_none());
        // recycling without a pool is a plain drop
        dev.recycle_vec("out", vec![1u32, 2, 3]);
    }

    #[test]
    fn corruption_poisons_the_pool_region() {
        let pool = ThreadPool::new(1);
        let mut dev = device(&pool);
        dev.enable_buffer_pool();
        dev.set_fault_plan(FaultPlan::new(4).corrupt_accesses_at(&[0]));
        let mut counts = dev.lease_vec::<u64>(16, "counts");
        counts.resize(16, 0);
        dev.corrupt_region("counts", counts.as_mut_slice())
            .expect("explicit index fires");
        dev.recycle_vec("counts", counts);
        let stats = dev.buffer_pool_stats().unwrap();
        assert_eq!(stats.poisoned_dropped, 1, "corrupted buffer never shelved");
        // the next lease misses (no recycled buffer to leak from)
        let clean = dev.lease_vec::<u64>(16, "counts");
        assert!(clean.is_empty());
        assert_eq!(dev.buffer_pool_stats().unwrap().hits, 0);
    }

    #[test]
    fn pooled_scatter_with_sanitizer_still_shadow_tracks() {
        let pool = ThreadPool::new(1);
        let mut dev = device(&pool);
        dev.enable_buffer_pool();
        dev.set_sanitizer(SanitizerConfig::full());
        // warm the pool with a stale buffer
        dev.recycle_vec("out", vec![0xAAu32; 8]);
        let buf = dev.pooled_scatter::<u32>(4, "out");
        assert!(buf.is_sanitized());
        unsafe {
            buf.write(0, 1);
            buf.write(2, 3);
        }
        let v = unsafe { buf.into_vec(4) };
        assert_eq!(v, vec![1, 0, 3, 0], "stale bytes zero-filled, reported");
        dev.commit("k", small_cfg(), LaunchOrigin::Host, KernelCost::new());
        assert!(!dev.sanitizer_clean());
    }

    #[test]
    fn advance_time_moves_clock_only() {
        let pool = ThreadPool::new(1);
        let mut dev = device(&pool);
        dev.advance_time(SimTime::from_us(5.0));
        assert!((dev.now().as_us() - 5.0).abs() < 1e-12);
        assert!(dev.records().is_empty());
    }
}
