//! Simulated-time events, mirroring the CUDA Runtime API's
//! `cudaEventRecord` / `cudaEventElapsedTime` measurement pattern the
//! paper uses for all reported timings (§V-B).

use crate::cost::SimTime;

/// A recorded point on the device's simulated timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    at: SimTime,
}

impl Event {
    /// Create an event at the given simulated time (normally via
    /// [`crate::device::Device::record_event`]).
    pub fn at(time: SimTime) -> Self {
        Self { at: time }
    }

    /// The timestamp of this event.
    pub fn time(self) -> SimTime {
        self.at
    }

    /// Elapsed simulated time between two events
    /// (`cudaEventElapsedTime(self, later)`).
    pub fn elapsed_until(self, later: Event) -> SimTime {
        later.at - self.at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_between_events() {
        let a = Event::at(SimTime::from_us(1.0));
        let b = Event::at(SimTime::from_us(3.5));
        assert!((a.elapsed_until(b).as_us() - 2.5).abs() < 1e-12);
    }
}
