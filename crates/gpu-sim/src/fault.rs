//! Deterministic fault injection for the simulated device.
//!
//! Real GPU deployments see transient failures the paper's algorithms
//! never had to face in the lab: kernel launches that error out
//! (`cudaErrorLaunchFailure`, ECC events), allocations that fail under
//! memory pressure, and latency spikes from clock throttling or PCIe
//! contention. [`FaultPlan`] describes *which* of these to inject and
//! [`FaultInjector`] rolls the dice — with a seeded SplitMix64 stream,
//! so a given plan produces the exact same fault schedule on every run.
//! That determinism is what makes the resilience layer testable: a test
//! can assert "launch #3 fails, the driver retries once, the result is
//! still exact" and have it hold forever.
//!
//! The injector is consulted by [`crate::device::Device`] on every
//! launch/commit and every tracked allocation; injected faults are
//! recorded on the timeline ([`crate::device::KernelRecord::fault`]) so
//! they show up in Chrome traces on a dedicated `"fault"` category.

use crate::cost::SimTime;
use std::fmt;

/// The kinds of fault the injector can produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The kernel launch failed; the kernel did not run (or its results
    /// must be considered garbage). Transient: a retry may succeed.
    LaunchFailure,
    /// A device-memory allocation failed. Transient under the injector;
    /// permanent when the requested size exceeds the device capacity.
    MemoryExhaustion,
    /// The kernel ran correctly but took much longer than modeled
    /// (thermal throttling, contention). Never fatal.
    LatencySpike,
    /// A byte in device memory was silently corrupted (bit flip or stuck
    /// byte). Unlike the other kinds this is **not** latched: real
    /// hardware gives no error code for an undetected upset, so the only
    /// way to notice is an algorithm-level integrity check (ABFT).
    MemoryCorruption,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::LaunchFailure => write!(f, "launch-failure"),
            FaultKind::MemoryExhaustion => write!(f, "memory-exhaustion"),
            FaultKind::LatencySpike => write!(f, "latency-spike"),
            FaultKind::MemoryCorruption => write!(f, "memory-corruption"),
        }
    }
}

/// How one injected memory corruption mutates its target byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptionOp {
    /// XOR the byte with `mask` (one or more flipped bits).
    BitFlip { mask: u8 },
    /// Force the byte to `value` regardless of its content (stuck-at-0 /
    /// stuck-at-1 fault).
    StuckByte { value: u8 },
}

impl CorruptionOp {
    /// Apply the corruption to one byte.
    pub fn apply(self, byte: u8) -> u8 {
        match self {
            CorruptionOp::BitFlip { mask } => byte ^ mask,
            CorruptionOp::StuckByte { value } => value,
        }
    }
}

impl fmt::Display for CorruptionOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorruptionOp::BitFlip { mask } => write!(f, "bit-flip mask {mask:#04x}"),
            CorruptionOp::StuckByte { value } => write!(f, "stuck byte {value:#04x}"),
        }
    }
}

/// One injected memory corruption, as applied to a tracked region.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryCorruption {
    /// Name of the corrupted region (e.g. `"counts"`, `"oracles"`).
    pub region: String,
    /// Byte offset inside the region that was mutated.
    pub byte_offset: usize,
    /// The mutation applied.
    pub op: CorruptionOp,
    /// Device-wide tracked-access index (0-based since last reset) at
    /// which the corruption fired.
    pub access_index: u64,
    /// Simulated time at which the corruption was applied.
    pub at: SimTime,
}

impl fmt::Display for MemoryCorruption {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "injected memory-corruption in region `{}` ({} at byte {}, access #{}, t={})",
            self.region, self.op, self.byte_offset, self.access_index, self.at
        )
    }
}

/// A failed (or faulted) kernel launch, as surfaced by the device's
/// fallible launch path.
#[derive(Debug, Clone, PartialEq)]
pub struct LaunchError {
    /// What kind of fault was injected.
    pub kind: FaultKind,
    /// Name of the kernel whose launch failed.
    pub kernel: String,
    /// Device-wide launch index (0-based since the last reset) at which
    /// the fault fired — lets logs pinpoint the exact schedule slot.
    pub launch_index: u64,
    /// Simulated time at which the fault was raised.
    pub at: SimTime,
}

impl fmt::Display for LaunchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "injected {} in kernel `{}` (launch #{}, t={})",
            self.kind, self.kernel, self.launch_index, self.at
        )
    }
}

impl std::error::Error for LaunchError {}

/// Declarative description of the faults to inject into one device.
///
/// Rates are per-event probabilities in `[0, 1]`; explicit index lists
/// fire deterministically regardless of the rates. `seed` drives the
/// probabilistic draws, so the full fault schedule is a pure function of
/// the plan.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed of the injector's RNG stream.
    pub seed: u64,
    /// Probability that any given kernel launch fails.
    pub launch_failure_rate: f64,
    /// Cap on probabilistic launch failures (explicit indices are
    /// exempt); `u64::MAX` means unlimited.
    pub max_launch_failures: u64,
    /// Launch indices (0-based since last reset) that always fail.
    pub fail_launch_indices: Vec<u64>,
    /// Probability that any given tracked allocation fails.
    pub alloc_failure_rate: f64,
    /// Cap on probabilistic allocation failures; `u64::MAX` = unlimited.
    pub max_alloc_failures: u64,
    /// Allocation indices (0-based since last reset) that always fail.
    pub fail_alloc_indices: Vec<u64>,
    /// Probability that a (successful) launch suffers a latency spike.
    pub latency_spike_rate: f64,
    /// Duration multiplier applied to spiked launches (> 1).
    pub latency_spike_factor: f64,
    /// Probability that any given tracked memory access flips 1–2 bits
    /// of one byte in the accessed region.
    pub bitflip_rate: f64,
    /// Probability that any given tracked memory access leaves one byte
    /// of the region stuck at `0x00` or `0xFF`.
    pub stuck_byte_rate: f64,
    /// Cap on probabilistic corruptions (explicit indices are exempt);
    /// `u64::MAX` means unlimited.
    pub max_corruptions: u64,
    /// Tracked-access indices (0-based since last reset) that are always
    /// corrupted (single-bit flip at a seeded offset).
    pub corrupt_access_indices: Vec<u64>,
    /// Probabilistic corruptions only fire at or after this simulated
    /// time (schedule-by-time; explicit indices are exempt).
    pub corrupt_not_before: SimTime,
}

impl FaultPlan {
    /// A plan that injects nothing (useful as a builder starting point).
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            launch_failure_rate: 0.0,
            max_launch_failures: u64::MAX,
            fail_launch_indices: Vec::new(),
            alloc_failure_rate: 0.0,
            max_alloc_failures: u64::MAX,
            fail_alloc_indices: Vec::new(),
            latency_spike_rate: 0.0,
            latency_spike_factor: 4.0,
            bitflip_rate: 0.0,
            stuck_byte_rate: 0.0,
            max_corruptions: u64::MAX,
            corrupt_access_indices: Vec::new(),
            corrupt_not_before: SimTime::ZERO,
        }
    }

    /// Fail each launch with probability `rate`.
    pub fn launch_failures(mut self, rate: f64) -> Self {
        debug_assert!((0.0..=1.0).contains(&rate));
        self.launch_failure_rate = rate;
        self
    }

    /// Cap the number of probabilistic launch failures.
    pub fn max_launch_failures(mut self, max: u64) -> Self {
        self.max_launch_failures = max;
        self
    }

    /// Always fail the launches at these device-wide indices.
    pub fn fail_launches_at(mut self, indices: &[u64]) -> Self {
        self.fail_launch_indices = indices.to_vec();
        self
    }

    /// Fail each tracked allocation with probability `rate`.
    pub fn alloc_failures(mut self, rate: f64) -> Self {
        debug_assert!((0.0..=1.0).contains(&rate));
        self.alloc_failure_rate = rate;
        self
    }

    /// Cap the number of probabilistic allocation failures.
    pub fn max_alloc_failures(mut self, max: u64) -> Self {
        self.max_alloc_failures = max;
        self
    }

    /// Always fail the allocations at these indices.
    pub fn fail_allocs_at(mut self, indices: &[u64]) -> Self {
        self.fail_alloc_indices = indices.to_vec();
        self
    }

    /// Inflate the duration of each launch by `factor` with probability
    /// `rate`.
    pub fn latency_spikes(mut self, rate: f64, factor: f64) -> Self {
        debug_assert!((0.0..=1.0).contains(&rate));
        debug_assert!(factor >= 1.0);
        self.latency_spike_rate = rate;
        self.latency_spike_factor = factor;
        self
    }

    /// Flip bits in tracked memory regions: each tracked access is
    /// corrupted with probability `rate`.
    pub fn bitflips(mut self, rate: f64) -> Self {
        debug_assert!((0.0..=1.0).contains(&rate));
        self.bitflip_rate = rate;
        self
    }

    /// Stick one byte of a tracked region at `0x00`/`0xFF` with
    /// probability `rate` per tracked access.
    pub fn stuck_bytes(mut self, rate: f64) -> Self {
        debug_assert!((0.0..=1.0).contains(&rate));
        self.stuck_byte_rate = rate;
        self
    }

    /// Cap the number of probabilistic corruptions.
    pub fn max_corruptions(mut self, max: u64) -> Self {
        self.max_corruptions = max;
        self
    }

    /// Always corrupt the tracked memory accesses at these indices.
    pub fn corrupt_accesses_at(mut self, indices: &[u64]) -> Self {
        self.corrupt_access_indices = indices.to_vec();
        self
    }

    /// Only fire probabilistic corruptions at or after simulated time
    /// `t` (models an upset arriving mid-run).
    pub fn corrupt_not_before(mut self, t: SimTime) -> Self {
        self.corrupt_not_before = t;
        self
    }

    /// Whether the plan can inject anything at all.
    pub fn is_noop(&self) -> bool {
        self.launch_failure_rate == 0.0
            && self.fail_launch_indices.is_empty()
            && self.alloc_failure_rate == 0.0
            && self.fail_alloc_indices.is_empty()
            && self.latency_spike_rate == 0.0
            && self.bitflip_rate == 0.0
            && self.stuck_byte_rate == 0.0
            && self.corrupt_access_indices.is_empty()
    }
}

/// Stateful executor of a [`FaultPlan`]: a seeded RNG stream plus the
/// counters that enforce the failure caps.
///
/// The fault schedule is a deterministic function of the plan: draws are
/// consumed in a fixed order (one failure draw per launch if the failure
/// rate is nonzero, then one spike draw if the spike rate is nonzero,
/// one draw per tracked allocation), so identical call sequences see
/// identical faults.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    state: u64,
    launch_failures: u64,
    alloc_failures: u64,
    corruptions: u64,
}

impl FaultInjector {
    pub fn new(plan: FaultPlan) -> Self {
        let state = plan.seed;
        Self {
            plan,
            state,
            launch_failures: 0,
            alloc_failures: 0,
            corruptions: 0,
        }
    }

    /// The plan this injector executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Number of launch failures injected so far.
    pub fn launch_failures_injected(&self) -> u64 {
        self.launch_failures
    }

    /// Number of allocation failures injected so far.
    pub fn alloc_failures_injected(&self) -> u64 {
        self.alloc_failures
    }

    /// Number of memory corruptions injected so far.
    pub fn corruptions_injected(&self) -> u64 {
        self.corruptions
    }

    /// SplitMix64 step.
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Decide the fate of launch number `index`. Returns the fault to
    /// apply, if any; `LatencySpike` means "run it, but slower".
    pub fn on_launch(&mut self, index: u64) -> Option<FaultKind> {
        if self.plan.fail_launch_indices.contains(&index) {
            self.launch_failures += 1;
            return Some(FaultKind::LaunchFailure);
        }
        if self.plan.launch_failure_rate > 0.0 {
            let draw = self.unit_f64();
            if draw < self.plan.launch_failure_rate
                && self.launch_failures < self.plan.max_launch_failures
            {
                self.launch_failures += 1;
                return Some(FaultKind::LaunchFailure);
            }
        }
        if self.plan.latency_spike_rate > 0.0 {
            let draw = self.unit_f64();
            if draw < self.plan.latency_spike_rate {
                return Some(FaultKind::LatencySpike);
            }
        }
        None
    }

    /// Decide the fate of tracked allocation number `index`.
    pub fn on_alloc(&mut self, index: u64) -> bool {
        if self.plan.fail_alloc_indices.contains(&index) {
            self.alloc_failures += 1;
            return true;
        }
        if self.plan.alloc_failure_rate > 0.0 {
            let draw = self.unit_f64();
            if draw < self.plan.alloc_failure_rate
                && self.alloc_failures < self.plan.max_alloc_failures
            {
                self.alloc_failures += 1;
                return true;
            }
        }
        false
    }

    /// Duration multiplier for spiked launches.
    pub fn spike_factor(&self) -> f64 {
        self.plan.latency_spike_factor
    }

    /// Draw a 1–2 bit flip mask and a byte offset inside `len_bytes`.
    fn draw_bitflip(&mut self, len_bytes: usize) -> (usize, CorruptionOp) {
        let offset = (self.next_u64() % len_bytes as u64) as usize;
        let r = self.next_u64();
        let mut mask = 1u8 << (r % 8);
        if r & (1 << 8) != 0 {
            mask |= 1u8 << ((r >> 9) % 8);
        }
        (offset, CorruptionOp::BitFlip { mask })
    }

    /// Draw a stuck-byte value and a byte offset inside `len_bytes`.
    fn draw_stuck_byte(&mut self, len_bytes: usize) -> (usize, CorruptionOp) {
        let offset = (self.next_u64() % len_bytes as u64) as usize;
        let value = if self.next_u64() & 1 == 0 { 0x00 } else { 0xFF };
        (offset, CorruptionOp::StuckByte { value })
    }

    /// Decide the fate of tracked memory access number `index` on a
    /// region of `len_bytes` bytes at simulated time `now`. Returns the
    /// corruption to apply, if any. Explicit indices fire regardless of
    /// rates, caps, and the time gate (mirroring the launch/alloc
    /// index-list semantics).
    pub fn on_memory_access(
        &mut self,
        index: u64,
        now: SimTime,
        region: &str,
        len_bytes: usize,
    ) -> Option<MemoryCorruption> {
        if len_bytes == 0 {
            return None;
        }
        let make = |offset: usize, op: CorruptionOp| MemoryCorruption {
            region: region.to_string(),
            byte_offset: offset,
            op,
            access_index: index,
            at: now,
        };
        if self.plan.corrupt_access_indices.contains(&index) {
            self.corruptions += 1;
            let (offset, op) = self.draw_bitflip(len_bytes);
            return Some(make(offset, op));
        }
        let gate_open = now >= self.plan.corrupt_not_before;
        if self.plan.bitflip_rate > 0.0 {
            let draw = self.unit_f64();
            if draw < self.plan.bitflip_rate
                && gate_open
                && self.corruptions < self.plan.max_corruptions
            {
                self.corruptions += 1;
                let (offset, op) = self.draw_bitflip(len_bytes);
                return Some(make(offset, op));
            }
        }
        if self.plan.stuck_byte_rate > 0.0 {
            let draw = self.unit_f64();
            if draw < self.plan.stuck_byte_rate
                && gate_open
                && self.corruptions < self.plan.max_corruptions
            {
                self.corruptions += 1;
                let (offset, op) = self.draw_stuck_byte(len_bytes);
                return Some(make(offset, op));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_plan_injects_nothing() {
        let mut inj = FaultInjector::new(FaultPlan::new(42));
        assert!(inj.plan().is_noop());
        for i in 0..1000 {
            assert_eq!(inj.on_launch(i), None);
            assert!(!inj.on_alloc(i));
        }
    }

    #[test]
    fn explicit_indices_always_fire() {
        let plan = FaultPlan::new(0)
            .fail_launches_at(&[2, 5])
            .fail_allocs_at(&[1]);
        let mut inj = FaultInjector::new(plan);
        let faults: Vec<_> = (0..8).map(|i| inj.on_launch(i)).collect();
        assert_eq!(faults[2], Some(FaultKind::LaunchFailure));
        assert_eq!(faults[5], Some(FaultKind::LaunchFailure));
        assert!(faults.iter().filter(|f| f.is_some()).count() == 2);
        assert!(!inj.on_alloc(0));
        assert!(inj.on_alloc(1));
        assert_eq!(inj.launch_failures_injected(), 2);
        assert_eq!(inj.alloc_failures_injected(), 1);
    }

    #[test]
    fn same_seed_same_schedule() {
        let plan = FaultPlan::new(7)
            .launch_failures(0.2)
            .latency_spikes(0.3, 5.0)
            .alloc_failures(0.1);
        let mut a = FaultInjector::new(plan.clone());
        let mut b = FaultInjector::new(plan);
        for i in 0..500 {
            assert_eq!(a.on_launch(i), b.on_launch(i));
            assert_eq!(a.on_alloc(i), b.on_alloc(i));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mk = |seed| {
            let mut inj = FaultInjector::new(FaultPlan::new(seed).launch_failures(0.5));
            (0..64).map(|i| inj.on_launch(i)).collect::<Vec<_>>()
        };
        assert_ne!(mk(1), mk(2));
    }

    #[test]
    fn failure_rate_roughly_respected() {
        let mut inj = FaultInjector::new(FaultPlan::new(11).launch_failures(0.25));
        let n = 10_000;
        let failures = (0..n)
            .filter(|&i| inj.on_launch(i) == Some(FaultKind::LaunchFailure))
            .count();
        let rate = failures as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.03, "rate {rate}");
    }

    #[test]
    fn max_failures_caps_probabilistic_faults() {
        let mut inj = FaultInjector::new(
            FaultPlan::new(3)
                .launch_failures(1.0)
                .max_launch_failures(2),
        );
        let failures = (0..100)
            .filter(|&i| inj.on_launch(i) == Some(FaultKind::LaunchFailure))
            .count();
        assert_eq!(failures, 2);
    }

    #[test]
    fn corruption_draws_are_deterministic() {
        let plan = FaultPlan::new(13).bitflips(0.3).stuck_bytes(0.1);
        let mut a = FaultInjector::new(plan.clone());
        let mut b = FaultInjector::new(plan);
        for i in 0..500 {
            assert_eq!(
                a.on_memory_access(i, SimTime::ZERO, "r", 64),
                b.on_memory_access(i, SimTime::ZERO, "r", 64)
            );
        }
        assert!(a.corruptions_injected() > 0);
    }

    #[test]
    fn corruption_offsets_stay_in_bounds() {
        let mut inj = FaultInjector::new(FaultPlan::new(5).bitflips(1.0).stuck_bytes(1.0));
        for i in 0..200 {
            let len = 1 + (i as usize % 37);
            let c = inj
                .on_memory_access(i, SimTime::ZERO, "buf", len)
                .expect("rate 1.0 always corrupts");
            assert!(c.byte_offset < len, "offset {} in {}", c.byte_offset, len);
            if let CorruptionOp::BitFlip { mask } = c.op {
                assert!(mask != 0 && mask.count_ones() <= 2);
            }
        }
    }

    #[test]
    fn explicit_access_indices_always_corrupt() {
        let mut inj = FaultInjector::new(FaultPlan::new(0).corrupt_accesses_at(&[3]));
        assert!(inj.on_memory_access(0, SimTime::ZERO, "r", 16).is_none());
        let c = inj.on_memory_access(3, SimTime::ZERO, "r", 16).unwrap();
        assert_eq!(c.access_index, 3);
        assert_eq!(inj.corruptions_injected(), 1);
    }

    #[test]
    fn max_corruptions_caps_probabilistic_corruptions() {
        let mut inj = FaultInjector::new(FaultPlan::new(9).bitflips(1.0).max_corruptions(3));
        let hits = (0..50)
            .filter(|&i| inj.on_memory_access(i, SimTime::ZERO, "r", 8).is_some())
            .count();
        assert_eq!(hits, 3);
    }

    #[test]
    fn time_gate_delays_corruptions() {
        let plan = FaultPlan::new(9)
            .bitflips(1.0)
            .corrupt_not_before(SimTime::from_us(10.0));
        let mut inj = FaultInjector::new(plan);
        assert!(inj
            .on_memory_access(0, SimTime::from_us(5.0), "r", 8)
            .is_none());
        assert!(inj
            .on_memory_access(1, SimTime::from_us(10.0), "r", 8)
            .is_some());
    }

    #[test]
    fn empty_region_is_never_corrupted() {
        let mut inj = FaultInjector::new(FaultPlan::new(2).bitflips(1.0));
        assert!(inj.on_memory_access(0, SimTime::ZERO, "r", 0).is_none());
    }

    #[test]
    fn corruption_op_apply() {
        assert_eq!(CorruptionOp::BitFlip { mask: 0b101 }.apply(0b1111), 0b1010);
        assert_eq!(CorruptionOp::StuckByte { value: 0xFF }.apply(0x12), 0xFF);
    }

    #[test]
    fn display_formats() {
        assert_eq!(FaultKind::LaunchFailure.to_string(), "launch-failure");
        assert_eq!(FaultKind::MemoryExhaustion.to_string(), "memory-exhaustion");
        assert_eq!(FaultKind::LatencySpike.to_string(), "latency-spike");
        assert_eq!(FaultKind::MemoryCorruption.to_string(), "memory-corruption");
        let corruption = MemoryCorruption {
            region: "counts".to_string(),
            byte_offset: 17,
            op: CorruptionOp::BitFlip { mask: 0x04 },
            access_index: 2,
            at: SimTime::from_us(3.0),
        };
        let msg = corruption.to_string();
        assert!(msg.contains("memory-corruption"));
        assert!(msg.contains("counts"));
        assert!(msg.contains("byte 17"));
        let err = LaunchError {
            kind: FaultKind::LaunchFailure,
            kernel: "count".to_string(),
            launch_index: 3,
            at: SimTime::from_us(1.0),
        };
        let msg = err.to_string();
        assert!(msg.contains("launch-failure"));
        assert!(msg.contains("count"));
        assert!(msg.contains("#3"));
    }
}
