//! A strict, dependency-free JSON parser for validating the
//! hand-written exports of this workspace (chrome traces, sanitizer
//! reports, metrics snapshots).
//!
//! The workspace serializes JSON by hand (no serde — the build is
//! offline/vendored), so its tests need a real recursive-descent parser
//! rather than brace counting to prove the output is well-formed. This
//! is that parser: the full RFC 8259 grammar minus the parts the
//! exporters never emit (`\uXXXX` surrogate pairs are decoded BMP-only,
//! which covers every string the simulator writes).
//!
//! It is a validation tool, not a performance-sensitive path.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Object in key order of appearance is not preserved; a `BTreeMap`
    /// keeps lookups simple and comparisons deterministic. Duplicate
    /// keys are a parse error (strict mode).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Object member lookup (`None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_obj().and_then(|m| m.get(key))
    }
}

/// Parse error with byte position.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    pub at: usize,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Strictly parse a complete JSON document (trailing garbage rejected).
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            at: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), ParseError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!(
                "expected '{}', found {:?}",
                c as char,
                self.peek().map(|b| b as char)
            )))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(self.err(format!("unexpected {:?}", other.map(|b| b as char)))),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("invalid literal, expected `{word}`")))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            if map.insert(key.clone(), value).is_some() {
                return Err(self.err(format!("duplicate key `{key}`")));
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                other => {
                    return Err(self.err(format!(
                        "expected ',' or '}}' in object, found {:?}",
                        other.map(|b| b as char)
                    )))
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => {
                    return Err(self.err(format!(
                        "expected ',' or ']' in array, found {:?}",
                        other.map(|b| b as char)
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(c);
                            self.pos += 3; // +1 below finishes the 4 digits
                        }
                        other => {
                            return Err(
                                self.err(format!("invalid escape {:?}", other.map(|b| b as char)))
                            )
                        }
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("unescaped control character in string"))
                }
                Some(_) => {
                    // consume one UTF-8 scalar (input is a &str, so the
                    // encoding is already valid)
                    let rest = &self.bytes[self.pos..];
                    let ch_len = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8"))?
                        .chars()
                        .next()
                        .map(|c| c.len_utf8())
                        .unwrap_or(1);
                    out.push_str(std::str::from_utf8(&rest[..ch_len]).unwrap());
                    self.pos += ch_len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // integer part: 0 | [1-9][0-9]*
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit required after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit required in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("number out of range"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse(" -12.5e2 ").unwrap(), Json::Num(-1250.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Json::Str("a\nb".into()));
        let v = parse("[1, [2, 3], {\"k\": \"v\"}]").unwrap();
        let arr = v.as_arr().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("k").unwrap().as_str(), Some("v"));
    }

    #[test]
    fn decodes_unicode_escapes() {
        assert_eq!(parse("\"\\u0041\\u00e9\"").unwrap(), Json::Str("Aé".into()));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":1,}",
            "{\"a\" 1}",
            "{'a': 1}",
            "01",
            "1.",
            "+1",
            "nul",
            "\"unterminated",
            "\"bad\\q\"",
            "[1] trailing",
            "{\"dup\":1,\"dup\":2}",
            "\"ctrl \u{1} char\"",
        ] {
            assert!(parse(bad).is_err(), "accepted malformed input {bad:?}");
        }
    }

    #[test]
    fn depth_limit_holds() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(50) + &"]".repeat(50);
        assert!(parse(&ok).is_ok());
    }
}
