//! Kernel launch configuration, occupancy, and the dynamic-parallelism
//! tail-launch queue.

use crate::arch::GpuArchitecture;
use std::collections::VecDeque;

/// Grid/block dimensions and static shared-memory footprint of a kernel
/// launch, mirroring CUDA's `<<<blocks, threads, smem>>>` triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchConfig {
    /// Number of thread blocks in the grid.
    pub blocks: u32,
    /// Threads per block (multiple of the warp size for full warps).
    pub threads_per_block: u32,
    /// Static shared memory per block, in bytes.
    pub shared_mem_bytes: u32,
}

impl LaunchConfig {
    /// A grid that covers `n` elements with `threads_per_block` threads
    /// per block and `items_per_thread` elements per thread (grid-stride
    /// processing within a block's contiguous chunk).
    pub fn for_elements(
        n: usize,
        threads_per_block: u32,
        items_per_thread: u32,
        shared_mem_bytes: u32,
    ) -> Self {
        let per_block = (threads_per_block as usize) * (items_per_thread as usize).max(1);
        let blocks = n.div_ceil(per_block.max(1)).max(1);
        Self {
            blocks: blocks.min(u32::MAX as usize) as u32,
            threads_per_block,
            shared_mem_bytes,
        }
    }

    /// Elements each block processes when `n` elements are distributed
    /// over the grid in contiguous chunks.
    pub fn block_chunk(&self, n: usize) -> usize {
        n.div_ceil(self.blocks as usize).max(1)
    }

    /// Warps per block.
    pub fn warps_per_block(&self, warp_size: u32) -> u32 {
        self.threads_per_block.div_ceil(warp_size)
    }

    /// Total threads in the grid.
    pub fn total_threads(&self) -> u64 {
        self.blocks as u64 * self.threads_per_block as u64
    }
}

/// Occupancy analysis: how many blocks can be resident per SM, and how
/// much of the device a launch keeps busy.
#[derive(Debug, Clone, Copy)]
pub struct Occupancy {
    /// Resident blocks per SM given threads/smem/block-count limits.
    pub blocks_per_sm: u32,
    /// Resident warps per SM.
    pub warps_per_sm: u32,
    /// Effective number of busy SMs (fractional): SM count actually
    /// covered by the grid, derated when too few warps are resident to
    /// hide memory latency.
    pub effective_sms: f64,
}

/// Number of resident warps per SM needed to hide DRAM latency; below
/// this, effective parallelism is derated linearly. (Little's-law
/// style: latency x bandwidth demands ~a dozen outstanding warps.)
const LATENCY_HIDING_WARPS: f64 = 12.0;

/// Compute the occupancy of `config` on `arch`.
pub fn occupancy(arch: &GpuArchitecture, config: &LaunchConfig) -> Occupancy {
    let threads = config.threads_per_block.max(1);
    let by_threads = (arch.max_threads_per_sm / threads).max(1);
    let smem_per_block = config.shared_mem_bytes.max(1);
    let by_smem = ((arch.shared_mem_per_block_kib * 1024) / smem_per_block).max(1);
    let blocks_per_sm = by_threads.min(by_smem).min(arch.max_blocks_per_sm);

    let warps_per_block = config.warps_per_block(arch.warp_size);
    // Blocks actually resident on each SM, limited by the grid size.
    let grid_blocks = config.blocks as f64;
    let resident_blocks_per_busy_sm = (grid_blocks / arch.num_sms as f64)
        .min(blocks_per_sm as f64)
        .max(1.0_f64.min(grid_blocks));
    let resident_warps = resident_blocks_per_busy_sm * warps_per_block as f64;
    let latency_factor = (resident_warps / LATENCY_HIDING_WARPS).min(1.0);

    // The grid covers min(blocks, num_sms) SMs at minimum one block per
    // SM; latency hiding derates them.
    let busy = grid_blocks.min(arch.num_sms as f64);
    Occupancy {
        blocks_per_sm,
        warps_per_sm: blocks_per_sm * warps_per_block,
        effective_sms: (busy * latency_factor).max(0.05),
    }
}

/// FIFO of pending device-side launches: the simulator's model of CUDA
/// Dynamic Parallelism tail recursion (§IV-E).
///
/// The paper exploits that "all kernels launched from the CPU or a single
/// thread on the GPU will be executed in the order they were launched
/// in" to implement tail recursion without host round-trips. The queue
/// captures that ordering: the recursion driver pushes follow-up work
/// descriptors and pops them in order, and the device charges the
/// (cheaper) device-launch latency instead of a host launch for each.
#[derive(Debug)]
pub struct TailLaunchQueue<T> {
    queue: VecDeque<T>,
    total_enqueued: u64,
}

impl<T> TailLaunchQueue<T> {
    pub fn new() -> Self {
        Self {
            queue: VecDeque::new(),
            total_enqueued: 0,
        }
    }

    /// Enqueue a follow-up launch descriptor (ordered behind everything
    /// already queued).
    pub fn push(&mut self, task: T) {
        self.total_enqueued += 1;
        self.queue.push_back(task);
    }

    /// Pop the next launch in submission order.
    pub fn pop(&mut self) -> Option<T> {
        self.queue.pop_front()
    }

    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Number of launches enqueued over the queue's lifetime — i.e. how
    /// many device-side launches a run performed.
    pub fn total_enqueued(&self) -> u64 {
        self.total_enqueued
    }
}

impl<T> Default for TailLaunchQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::v100;

    #[test]
    fn for_elements_covers_input() {
        let cfg = LaunchConfig::for_elements(1000, 128, 4, 0);
        assert!(cfg.blocks as usize * 128 * 4 >= 1000);
        assert_eq!(cfg.threads_per_block, 128);
    }

    #[test]
    fn for_elements_empty_input_gets_one_block() {
        let cfg = LaunchConfig::for_elements(0, 256, 1, 0);
        assert_eq!(cfg.blocks, 1);
    }

    #[test]
    fn block_chunk_tiles_grid() {
        let cfg = LaunchConfig::for_elements(10_000, 256, 4, 0);
        let chunk = cfg.block_chunk(10_000);
        assert!(chunk * cfg.blocks as usize >= 10_000);
        assert!(chunk * (cfg.blocks as usize - 1) < 10_000);
    }

    #[test]
    fn warps_per_block_rounds_up() {
        let cfg = LaunchConfig {
            blocks: 1,
            threads_per_block: 33,
            shared_mem_bytes: 0,
        };
        assert_eq!(cfg.warps_per_block(32), 2);
    }

    #[test]
    fn occupancy_limited_by_threads() {
        let arch = v100();
        let cfg = LaunchConfig {
            blocks: 10_000,
            threads_per_block: 1024,
            shared_mem_bytes: 0,
        };
        let occ = occupancy(&arch, &cfg);
        assert_eq!(occ.blocks_per_sm, 2); // 2048 / 1024
        assert!((occ.effective_sms - arch.num_sms as f64).abs() < 1e-9);
    }

    #[test]
    fn occupancy_limited_by_shared_memory() {
        let arch = v100();
        let cfg = LaunchConfig {
            blocks: 10_000,
            threads_per_block: 128,
            shared_mem_bytes: 48 * 1024,
        };
        let occ = occupancy(&arch, &cfg);
        assert_eq!(occ.blocks_per_sm, 2); // 96 KiB / 48 KiB
    }

    #[test]
    fn small_grid_cannot_fill_device() {
        let arch = v100();
        let cfg = LaunchConfig {
            blocks: 4,
            threads_per_block: 512,
            shared_mem_bytes: 0,
        };
        let occ = occupancy(&arch, &cfg);
        assert!(occ.effective_sms <= 4.0);
    }

    #[test]
    fn tiny_block_derated_for_latency() {
        let arch = v100();
        let one_warp = LaunchConfig {
            blocks: arch.num_sms,
            threads_per_block: 32,
            shared_mem_bytes: 0,
        };
        let occ = occupancy(&arch, &one_warp);
        // One warp per SM cannot hide latency: far below full speed.
        assert!(occ.effective_sms < arch.num_sms as f64 * 0.2);
    }

    #[test]
    fn tail_queue_preserves_fifo_order() {
        let mut q = TailLaunchQueue::new();
        q.push(1);
        q.push(2);
        q.push(3);
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        q.push(4);
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), Some(4));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
        assert_eq!(q.total_enqueued(), 4);
    }
}
