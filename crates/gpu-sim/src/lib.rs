//! # gpu-sim
//!
//! A warp-accurate functional SIMT execution model with a per-architecture
//! analytic cost model — the substrate on which this workspace runs the
//! GPU selection kernels of Ribizel & Anzt, *Approximate and Exact
//! Selection on GPUs* (2019), in the absence of real CUDA hardware.
//!
//! ## Structure
//!
//! * [`arch`] — hardware descriptors (Table I of the paper: Tesla K20Xm,
//!   Tesla V100, plus the Tesla C2070 used in the §V-D comparison) and
//!   the cost-model parameters attached to each.
//! * [`warp`] — warp-level intrinsics (`ballot`, `match_any`, shuffles)
//!   with exact per-warp atomic-collision analysis.
//! * [`block`] — a thread-level BSP block executor (the slow reference
//!   interpretation of the SIMT model, used to cross-validate the
//!   vectorized kernels).
//! * [`cost`] — resource counters ([`cost::KernelCost`]) and the
//!   roofline-style overlap model converting them to [`cost::SimTime`].
//! * [`launch`] — launch configurations, occupancy, and the
//!   dynamic-parallelism tail-launch queue.
//! * [`memory`] — scatter buffers for the two-pass counter scheme and
//!   traffic-tracked shared-memory arrays.
//! * [`bufpool`] — size-classed, fault-aware recycling of device
//!   buffers, so steady-state queries allocate nothing (the simulation
//!   analogue of amortizing `cudaMalloc` across kernels).
//! * [`sanitizer`] — the opt-in SIMT sanitizer (a
//!   `compute-sanitizer` analogue): per-phase shared-memory race,
//!   barrier-divergence, uninitialized-read, out-of-bounds, and
//!   mixed-atomic detection, reported as structured findings on the
//!   kernel timeline.
//! * [`device`] — the simulated GPU: block-parallel functional execution
//!   on a host thread pool, a simulated clock, and a kernel timeline.
//! * [`event`] — `cudaEventRecord`-style measurement points.
//! * [`fault`] — deterministic, seed-driven fault injection (failed
//!   launches, memory exhaustion, latency spikes, silent memory
//!   corruption) for exercising the resilience layer built on top of
//!   the simulator.
//! * [`jsonv`] — a strict, dependency-free JSON validator used by the
//!   workspace's tests to prove the hand-rolled exporters (traces,
//!   metrics snapshots) emit well-formed documents.
//!
//! ## Fidelity
//!
//! The *functional* layer is exact: kernels compute bit-identical results
//! to a sequential reference, warp ballots follow CUDA semantics, and
//! atomic collision counts are computed per warp, not sampled. The
//! *timing* layer is analytic: each kernel's resource usage is converted
//! to time with per-architecture parameters, so architecture-dependent
//! effects (Kepler's slow lock-based shared atomics vs. Volta's native
//! ones, same-address global-atomic serialization, launch latencies)
//! shape the results mechanistically.

pub mod arch;
pub mod block;
pub mod bufpool;
pub mod cost;
pub mod device;
pub mod event;
pub mod fault;
pub mod jsonv;
pub mod launch;
pub mod memory;
pub mod sanitizer;
pub mod trace;
pub mod warp;

pub use arch::{GpuArchitecture, GpuGeneration, LinkModel};
pub use block::{BlockExec, SmemAccessError, WarpSchedule};
pub use bufpool::{BufferPool, BufferPoolStats};
pub use cost::{CostBreakdown, KernelCost, SimTime};
pub use device::{Device, KernelRecord, KernelSummary, LaunchOrigin};
pub use event::Event;
pub use fault::{CorruptionOp, FaultInjector, FaultKind, FaultPlan, LaunchError, MemoryCorruption};
pub use launch::{occupancy, LaunchConfig, Occupancy, TailLaunchQueue};
pub use memory::{AllocError, CorruptTarget, DeviceMemory, ScatterBuffer, SharedArray};
pub use sanitizer::{
    SanitizerConfig, SanitizerFinding, SanitizerKind, SanitizerReport, SanitizerSink,
};
pub use trace::{chrome_trace, chrome_trace_with_counters, trace_events, CounterTrack};
