//! Device-memory helpers for the functional simulation.
//!
//! [`ScatterBuffer`] is the output-side primitive of the paper's two-pass
//! counter scheme (§IV-G): after the prefix sum has assigned each block a
//! disjoint index range, every output slot is written by exactly one
//! simulated thread, so concurrent host threads can fill one allocation
//! without locks.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;

/// A write-once scatter buffer shared across the host threads that
/// simulate thread blocks.
///
/// # Safety contract
///
/// [`ScatterBuffer::write`] is `unsafe`: callers must guarantee that each
/// index is written at most once across all threads before
/// [`ScatterBuffer::into_vec`] is called, and that `into_vec(len)` is
/// only called when indices `0..len` have all been written. The
/// selection kernels uphold this structurally — indices are
/// `block_offset + local_rank` with disjoint per-block ranges from an
/// exclusive scan — and the integration tests verify the resulting
/// permutation property.
pub struct ScatterBuffer<T> {
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
}

// SAFETY: access discipline (disjoint write-once indices) is delegated to
// the unsafe `write` contract; the buffer itself carries no aliasing.
unsafe impl<T: Send> Sync for ScatterBuffer<T> {}
unsafe impl<T: Send> Send for ScatterBuffer<T> {}

impl<T> ScatterBuffer<T> {
    /// Allocate an uninitialized buffer of `len` slots.
    pub fn new(len: usize) -> Self {
        let mut v = Vec::with_capacity(len);
        for _ in 0..len {
            v.push(UnsafeCell::new(MaybeUninit::uninit()));
        }
        Self {
            slots: v.into_boxed_slice(),
        }
    }

    /// Capacity of the buffer.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Write `value` into slot `idx`.
    ///
    /// # Safety
    /// `idx < len()`, and no other write to `idx` may happen concurrently
    /// or at any other time before `into_vec`.
    pub unsafe fn write(&self, idx: usize, value: T) {
        debug_assert!(idx < self.slots.len(), "scatter write out of bounds");
        (*self.slots[idx].get()).write(value);
    }

    /// Consume the buffer, returning the first `len` slots as a `Vec`.
    ///
    /// # Safety
    /// Slots `0..len` must all have been written.
    pub unsafe fn into_vec(self, len: usize) -> Vec<T> {
        assert!(len <= self.slots.len());
        let mut slots = Vec::from(self.slots);
        slots.truncate(len);
        slots
            .into_iter()
            .map(|cell| cell.into_inner().assume_init())
            .collect()
    }
}

/// Model of one block's shared-memory array for the bitonic sorting
/// kernel: tracks the bytes moved so bank traffic can be charged, while
/// the data itself lives in a plain host vector.
pub struct SharedArray<T> {
    data: Vec<T>,
    bytes_accessed: u64,
}

impl<T: Copy + Default> SharedArray<T> {
    /// Allocate a shared array of `len` elements (must fit the block's
    /// shared-memory budget; the caller checks against the architecture).
    pub fn new(len: usize) -> Self {
        Self {
            data: vec![T::default(); len],
            bytes_accessed: 0,
        }
    }

    pub fn from_slice(values: &[T]) -> Self {
        Self {
            data: values.to_vec(),
            bytes_accessed: std::mem::size_of_val(values) as u64,
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn read(&mut self, idx: usize) -> T {
        self.bytes_accessed += std::mem::size_of::<T>() as u64;
        self.data[idx]
    }

    pub fn write(&mut self, idx: usize, value: T) {
        self.bytes_accessed += std::mem::size_of::<T>() as u64;
        self.data[idx] = value;
    }

    /// Swap two elements (one compare-exchange of a sorting network).
    pub fn swap(&mut self, a: usize, b: usize) {
        self.bytes_accessed += 4 * std::mem::size_of::<T>() as u64;
        self.data.swap(a, b);
    }

    /// Untracked view of the contents (for returning results).
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Shared-memory traffic generated so far, in bytes.
    pub fn bytes_accessed(&self) -> u64 {
        self.bytes_accessed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scatter_roundtrip_sequential() {
        let buf = ScatterBuffer::new(10);
        for i in 0..10 {
            unsafe { buf.write(i, i * 2) };
        }
        let v = unsafe { buf.into_vec(10) };
        assert_eq!(v, vec![0, 2, 4, 6, 8, 10, 12, 14, 16, 18]);
    }

    #[test]
    fn scatter_partial_extraction() {
        let buf = ScatterBuffer::new(10);
        for i in 0..5 {
            unsafe { buf.write(i, i as f64) };
        }
        let v = unsafe { buf.into_vec(5) };
        assert_eq!(v, vec![0.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn scatter_concurrent_disjoint_writes() {
        let pool = hpc_par::ThreadPool::new(4);
        let n = 100_000;
        let buf = ScatterBuffer::new(n);
        let buf_ref = &buf;
        hpc_par::parallel_for_chunks(&pool, n, 1024, |range| {
            for i in range {
                // SAFETY: ranges tile 0..n disjointly.
                unsafe { buf_ref.write(i, n - i) };
            }
        });
        let v = unsafe { buf.into_vec(n) };
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, n - i);
        }
    }

    #[test]
    fn scatter_drop_without_extraction_is_safe() {
        let buf: ScatterBuffer<String> = ScatterBuffer::new(4);
        unsafe { buf.write(0, "leak-check".to_string()) };
        // Dropping without into_vec must not double-free or touch
        // uninitialized slots (MaybeUninit never drops payloads; the one
        // written String is intentionally forgotten).
        drop(buf);
    }

    #[test]
    fn shared_array_tracks_traffic() {
        let mut arr = SharedArray::<u32>::new(8);
        arr.write(0, 42);
        assert_eq!(arr.read(0), 42);
        arr.swap(0, 1);
        assert_eq!(arr.read(0), 0);
        assert_eq!(arr.read(1), 42);
        // write(4) + read(4) + swap(16) + 2 reads (8) = 32 bytes
        assert_eq!(arr.bytes_accessed(), 32);
    }

    #[test]
    fn shared_array_from_slice() {
        let arr = SharedArray::from_slice(&[1.0f32, 2.0, 3.0]);
        assert_eq!(arr.as_slice(), &[1.0, 2.0, 3.0]);
        assert_eq!(arr.bytes_accessed(), 12);
    }
}
