//! Device-memory helpers for the functional simulation.
//!
//! [`ScatterBuffer`] is the output-side primitive of the paper's two-pass
//! counter scheme (§IV-G): after the prefix sum has assigned each block a
//! disjoint index range, every output slot is written by exactly one
//! simulated thread, so concurrent host threads can fill one allocation
//! without locks.

use crate::fault::CorruptionOp;
use crate::sanitizer::{SanitizerFinding, SanitizerKind, SanitizerSink};
use std::cell::UnsafeCell;
use std::fmt;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU8, Ordering};

/// Why a tracked device allocation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocError {
    /// The fault injector failed this allocation (transient: a retry may
    /// succeed).
    Injected {
        /// Allocation index (0-based since the last reset) that failed.
        alloc_index: u64,
        /// Requested size in bytes.
        bytes: u64,
    },
    /// The request exceeds what the device can ever hold (permanent).
    OutOfMemory {
        /// Requested size in bytes.
        requested: u64,
        /// Bytes already resident.
        in_use: u64,
        /// Configured device capacity in bytes.
        capacity: u64,
    },
}

impl AllocError {
    /// Whether retrying the same allocation can possibly succeed.
    pub fn is_transient(&self) -> bool {
        matches!(self, AllocError::Injected { .. })
    }
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::Injected { alloc_index, bytes } => write!(
                f,
                "injected allocation failure (alloc #{alloc_index}, {bytes} bytes)"
            ),
            AllocError::OutOfMemory {
                requested,
                in_use,
                capacity,
            } => write!(
                f,
                "device out of memory: requested {requested} bytes with {in_use}/{capacity} in use"
            ),
        }
    }
}

impl std::error::Error for AllocError {}

/// Device-memory accounting: tracks resident bytes against an optional
/// capacity so the simulation can exhibit — and the resilience layer can
/// recover from — out-of-memory conditions.
#[derive(Debug, Clone, Default)]
pub struct DeviceMemory {
    capacity: Option<u64>,
    in_use: u64,
    peak: u64,
    allocs: u64,
}

impl DeviceMemory {
    /// Unlimited memory (the default: timing-only simulations should not
    /// hit artificial OOMs).
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Memory capped at `capacity` bytes.
    pub fn with_capacity(capacity: u64) -> Self {
        Self {
            capacity: Some(capacity),
            ..Self::default()
        }
    }

    /// Configured capacity, if any.
    pub fn capacity(&self) -> Option<u64> {
        self.capacity
    }

    /// Bytes currently resident.
    pub fn in_use(&self) -> u64 {
        self.in_use
    }

    /// High-water mark of resident bytes since the last reset.
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// Number of successful reservations since the last reset.
    pub fn allocs(&self) -> u64 {
        self.allocs
    }

    /// Reserve `bytes`, failing when it would exceed the capacity.
    pub fn try_reserve(&mut self, bytes: u64) -> Result<(), AllocError> {
        if let Some(capacity) = self.capacity {
            if self.in_use.saturating_add(bytes) > capacity {
                return Err(AllocError::OutOfMemory {
                    requested: bytes,
                    in_use: self.in_use,
                    capacity,
                });
            }
        }
        self.in_use += bytes;
        self.peak = self.peak.max(self.in_use);
        self.allocs += 1;
        Ok(())
    }

    /// Return `bytes` to the pool (saturating: double-frees in the
    /// simulation clamp to zero instead of corrupting the accounting).
    pub fn release(&mut self, bytes: u64) {
        self.in_use = self.in_use.saturating_sub(bytes);
    }

    /// Clear usage counters, keeping the capacity.
    pub fn reset(&mut self) {
        self.in_use = 0;
        self.peak = 0;
        self.allocs = 0;
    }
}

/// A write-once scatter buffer shared across the host threads that
/// simulate thread blocks.
///
/// # Safety contract
///
/// [`ScatterBuffer::write`] is `unsafe`: callers must guarantee that each
/// index is written at most once across all threads before
/// [`ScatterBuffer::into_vec`] is called, and that `into_vec(len)` is
/// only called when indices `0..len` have all been written. The
/// selection kernels uphold this structurally — indices are
/// `block_offset + local_rank` with disjoint per-block ranges from an
/// exclusive scan — and the integration tests verify the resulting
/// permutation property.
pub struct ScatterBuffer<T> {
    slots: Vec<UnsafeCell<MaybeUninit<T>>>,
    shadow: Option<ScatterShadow>,
}

/// Per-slot write tracking attached to a sanitized [`ScatterBuffer`]:
/// catches out-of-bounds and double writes (the vectorized-path
/// equivalents of the `BlockExec` detectors) without changing the
/// buffer's hot-path layout — unsanitized buffers carry `None`.
struct ScatterShadow {
    written: Box<[AtomicU8]>,
    sink: SanitizerSink,
    region: String,
}

impl ScatterShadow {
    fn report(&self, kind: SanitizerKind, index: usize) {
        self.sink.record(SanitizerFinding {
            kind,
            index,
            phase: 0,
            thread: None,
            other_thread: None,
            context: format!("scatter:{}", self.region),
        });
    }
}

impl<T> fmt::Debug for ScatterBuffer<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ScatterBuffer")
            .field("len", &self.slots.len())
            .finish()
    }
}

// SAFETY: access discipline (disjoint write-once indices) is delegated to
// the unsafe `write` contract; the buffer itself carries no aliasing.
unsafe impl<T: Send> Sync for ScatterBuffer<T> {}
unsafe impl<T: Send> Send for ScatterBuffer<T> {}

impl<T> ScatterBuffer<T> {
    /// Allocate an uninitialized buffer of `len` slots.
    pub fn new(len: usize) -> Self {
        let mut v = Vec::with_capacity(len);
        for _ in 0..len {
            v.push(UnsafeCell::new(MaybeUninit::uninit()));
        }
        Self {
            slots: v,
            shadow: None,
        }
    }

    /// Build a buffer of `len` slots on top of a recycled allocation
    /// (typically leased from a [`crate::BufferPool`]): the vector's
    /// capacity is reused and no slot initialization loop runs —
    /// `MaybeUninit` slots are legitimately uninitialized. Capacity is
    /// grown only if `storage` is too small. [`ScatterBuffer::into_vec`]
    /// returns the same allocation, so it can be recycled again.
    pub fn from_storage(mut storage: Vec<T>, len: usize) -> Self {
        storage.clear();
        if storage.capacity() < len {
            // relative to the (zero) length: guarantees capacity >= len
            storage.reserve(len);
        }
        // Reinterpret the allocation: `UnsafeCell<MaybeUninit<T>>` is
        // guaranteed to have the same size, alignment, and memory layout
        // as `T` (both wrappers are documented as layout-transparent),
        // so the Vec's (ptr, capacity) pair describes the same heap
        // block under either element type.
        let mut slots: Vec<UnsafeCell<MaybeUninit<T>>> = unsafe {
            let cap = storage.capacity();
            let ptr = storage.as_mut_ptr() as *mut UnsafeCell<MaybeUninit<T>>;
            std::mem::forget(storage);
            Vec::from_raw_parts(ptr, 0, cap)
        };
        // SAFETY: len <= capacity, and MaybeUninit slots need no
        // initialization to be valid.
        unsafe { slots.set_len(len) };
        Self {
            slots,
            shadow: None,
        }
    }

    /// [`ScatterBuffer::from_storage`] with a sanitizer shadow attached
    /// (see [`ScatterBuffer::with_sanitizer`] for its semantics).
    pub fn from_storage_with_sanitizer(
        storage: Vec<T>,
        len: usize,
        sink: SanitizerSink,
        region: &str,
    ) -> Self {
        let mut buf = Self::from_storage(storage, len);
        let mut written = Vec::with_capacity(len);
        written.resize_with(len, || AtomicU8::new(0));
        buf.shadow = Some(ScatterShadow {
            written: written.into_boxed_slice(),
            sink,
            region: region.to_string(),
        });
        buf
    }

    /// Allocate a *sanitized* buffer: each write is checked against a
    /// per-slot shadow map, and out-of-bounds or double writes are
    /// reported to `sink` (tagged with `region`) instead of invoking
    /// undefined behaviour. Unwritten slots extracted by
    /// [`ScatterBuffer::into_vec`] are reported as uninitialized reads
    /// and zero-filled, so the element type must be valid for the
    /// all-zero bit pattern (true of every kernel payload here:
    /// integers, floats, and tuples thereof).
    pub fn with_sanitizer(len: usize, sink: SanitizerSink, region: &str) -> Self {
        let mut buf = Self::new(len);
        let mut written = Vec::with_capacity(len);
        written.resize_with(len, || AtomicU8::new(0));
        buf.shadow = Some(ScatterShadow {
            written: written.into_boxed_slice(),
            sink,
            region: region.to_string(),
        });
        buf
    }

    /// Whether this buffer carries a sanitizer shadow map.
    pub fn is_sanitized(&self) -> bool {
        self.shadow.is_some()
    }

    /// Capacity of the buffer.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Write `value` into slot `idx`.
    ///
    /// # Safety
    /// `idx < len()`, and no other write to `idx` may happen concurrently
    /// or at any other time before `into_vec`.
    pub unsafe fn write(&self, idx: usize, value: T) {
        if let Some(shadow) = &self.shadow {
            if idx >= self.slots.len() {
                shadow.report(SanitizerKind::OutOfBounds, idx);
                return;
            }
            if shadow.written[idx].swap(1, Ordering::Relaxed) != 0 {
                // keep the first write so the write-once invariant (and
                // determinism) survives the violation
                shadow.report(SanitizerKind::WriteWriteRace, idx);
                return;
            }
        } else {
            debug_assert!(idx < self.slots.len(), "scatter write out of bounds");
        }
        (*self.slots[idx].get()).write(value);
    }

    /// Write `values` into the contiguous slot run starting at `start`
    /// (the bulk flush of a SIMD-compressed staging buffer: one
    /// streaming store run instead of per-element scatter calls).
    ///
    /// # Safety
    /// `start + values.len() <= len()`, and — as for
    /// [`ScatterBuffer::write`] — no slot in the run may be written by
    /// anyone else before `into_vec`.
    pub unsafe fn write_slice(&self, start: usize, values: &[T])
    where
        T: Copy,
    {
        if let Some(shadow) = &self.shadow {
            // Sanitized buffers keep per-slot tracking semantics: fall
            // back to the checked per-element path.
            for (j, &v) in values.iter().enumerate() {
                let idx = start + j;
                if idx >= self.slots.len() {
                    shadow.report(SanitizerKind::OutOfBounds, idx);
                    continue;
                }
                if shadow.written[idx].swap(1, Ordering::Relaxed) != 0 {
                    shadow.report(SanitizerKind::WriteWriteRace, idx);
                    continue;
                }
                (*self.slots[idx].get()).write(v);
            }
            return;
        }
        debug_assert!(
            start + values.len() <= self.slots.len(),
            "scatter write_slice out of bounds"
        );
        if values.is_empty() {
            return;
        }
        let dst = self.slots[start].get() as *mut T;
        std::ptr::copy_nonoverlapping(values.as_ptr(), dst, values.len());
    }

    /// Consume the buffer, returning the first `len` slots as a `Vec`.
    ///
    /// # Safety
    /// Slots `0..len` must all have been written. With a sanitizer
    /// shadow attached, an unwritten slot is reported as a finding and
    /// zero-filled instead (see [`ScatterBuffer::with_sanitizer`] for
    /// the element-type requirement this relies on).
    pub unsafe fn into_vec(self, len: usize) -> Vec<T> {
        assert!(len <= self.slots.len());
        let mut slots = self.slots;
        if let Some(shadow) = &self.shadow {
            for (idx, slot) in slots.iter_mut().take(len).enumerate() {
                if shadow.written[idx].load(Ordering::Relaxed) == 0 {
                    shadow.report(SanitizerKind::UninitRead, idx);
                    *slot.get() = MaybeUninit::zeroed();
                }
            }
        }
        // Reinterpret the allocation in place (the inverse of
        // `from_storage`; see the layout argument there). Keeping the
        // original capacity lets the caller recycle the allocation.
        let cap = slots.capacity();
        let ptr = slots.as_mut_ptr() as *mut T;
        std::mem::forget(slots);
        Vec::from_raw_parts(ptr, len, cap)
    }
}

/// A device-memory region the fault injector can corrupt byte-wise.
///
/// Corruption works on the little-endian byte image of the region, so a
/// single bit flip in, say, a `u64` count lands in one specific byte of
/// one specific element — exactly the granularity of a real memory
/// upset — without any `unsafe` reinterpretation.
pub trait CorruptTarget {
    /// Size of the region's byte image.
    fn len_bytes(&self) -> usize;
    /// Apply `op` to the byte at `offset` (no-op when out of range).
    fn mutate_byte(&mut self, offset: usize, op: CorruptionOp);
}

impl CorruptTarget for [u8] {
    fn len_bytes(&self) -> usize {
        self.len()
    }

    fn mutate_byte(&mut self, offset: usize, op: CorruptionOp) {
        if let Some(b) = self.get_mut(offset) {
            *b = op.apply(*b);
        }
    }
}

macro_rules! impl_corrupt_target {
    ($($t:ty),*) => {$(
        impl CorruptTarget for [$t] {
            fn len_bytes(&self) -> usize {
                std::mem::size_of_val(self)
            }

            fn mutate_byte(&mut self, offset: usize, op: CorruptionOp) {
                let width = std::mem::size_of::<$t>();
                let (idx, byte) = (offset / width, offset % width);
                if let Some(v) = self.get_mut(idx) {
                    let mut bytes = v.to_le_bytes();
                    bytes[byte] = op.apply(bytes[byte]);
                    *v = <$t>::from_le_bytes(bytes);
                }
            }
        }
    )*};
}

impl_corrupt_target!(u16, u32, u64, i32, i64, f32, f64);

/// Model of one block's shared-memory array for the bitonic sorting
/// kernel: tracks the bytes moved so bank traffic can be charged, while
/// the data itself lives in a plain host vector.
pub struct SharedArray<T> {
    data: Vec<T>,
    bytes_accessed: u64,
    sink: Option<(SanitizerSink, String)>,
}

impl<T: Copy + Default> SharedArray<T> {
    /// Allocate a shared array of `len` elements (must fit the block's
    /// shared-memory budget; the caller checks against the architecture).
    pub fn new(len: usize) -> Self {
        Self {
            data: vec![T::default(); len],
            bytes_accessed: 0,
            sink: None,
        }
    }

    pub fn from_slice(values: &[T]) -> Self {
        Self {
            data: values.to_vec(),
            bytes_accessed: std::mem::size_of_val(values) as u64,
            sink: None,
        }
    }

    /// Allocate a *sanitized* shared array: out-of-bounds accesses are
    /// reported to `sink` (tagged with `region`) and degraded — reads
    /// return `T::default()`, writes and swaps are dropped — instead of
    /// panicking.
    pub fn with_sanitizer(len: usize, sink: SanitizerSink, region: &str) -> Self {
        let mut arr = Self::new(len);
        arr.sink = Some((sink, region.to_string()));
        arr
    }

    /// Report an out-of-bounds access when sanitized; `true` if handled
    /// (caller must degrade gracefully), `false` if the legacy panic
    /// should fire.
    fn oob(&self, index: usize) -> bool {
        match &self.sink {
            Some((sink, region)) => {
                sink.record(SanitizerFinding {
                    kind: SanitizerKind::OutOfBounds,
                    index,
                    phase: 0,
                    thread: None,
                    other_thread: None,
                    context: format!("shared:{region}"),
                });
                true
            }
            None => false,
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn read(&mut self, idx: usize) -> T {
        self.bytes_accessed += std::mem::size_of::<T>() as u64;
        if idx >= self.data.len() && self.oob(idx) {
            return T::default();
        }
        self.data[idx]
    }

    pub fn write(&mut self, idx: usize, value: T) {
        self.bytes_accessed += std::mem::size_of::<T>() as u64;
        if idx >= self.data.len() && self.oob(idx) {
            return;
        }
        self.data[idx] = value;
    }

    /// Swap two elements (one compare-exchange of a sorting network).
    pub fn swap(&mut self, a: usize, b: usize) {
        self.bytes_accessed += 4 * std::mem::size_of::<T>() as u64;
        let len = self.data.len();
        if (a >= len || b >= len) && self.oob(a.max(b)) {
            return;
        }
        self.data.swap(a, b);
    }

    /// Untracked view of the contents (for returning results).
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Shared-memory traffic generated so far, in bytes.
    pub fn bytes_accessed(&self) -> u64 {
        self.bytes_accessed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scatter_roundtrip_sequential() {
        let buf = ScatterBuffer::new(10);
        for i in 0..10 {
            unsafe { buf.write(i, i * 2) };
        }
        let v = unsafe { buf.into_vec(10) };
        assert_eq!(v, vec![0, 2, 4, 6, 8, 10, 12, 14, 16, 18]);
    }

    #[test]
    fn scatter_partial_extraction() {
        let buf = ScatterBuffer::new(10);
        for i in 0..5 {
            unsafe { buf.write(i, i as f64) };
        }
        let v = unsafe { buf.into_vec(5) };
        assert_eq!(v, vec![0.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn scatter_concurrent_disjoint_writes() {
        let pool = hpc_par::ThreadPool::new(4);
        let n = 100_000;
        let buf = ScatterBuffer::new(n);
        let buf_ref = &buf;
        hpc_par::parallel_for_chunks(&pool, n, 1024, |range| {
            for i in range {
                // SAFETY: ranges tile 0..n disjointly.
                unsafe { buf_ref.write(i, n - i) };
            }
        });
        let v = unsafe { buf.into_vec(n) };
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, n - i);
        }
    }

    #[test]
    fn scatter_drop_without_extraction_is_safe() {
        let buf: ScatterBuffer<String> = ScatterBuffer::new(4);
        unsafe { buf.write(0, "leak-check".to_string()) };
        // Dropping without into_vec must not double-free or touch
        // uninitialized slots (MaybeUninit never drops payloads; the one
        // written String is intentionally forgotten).
        drop(buf);
    }

    #[test]
    fn scatter_from_storage_reuses_allocation() {
        let storage = Vec::<u64>::with_capacity(16);
        let cap = storage.capacity();
        let block = storage.as_ptr();
        let buf = ScatterBuffer::from_storage(storage, 8);
        assert_eq!(buf.len(), 8);
        for i in 0..8 {
            unsafe { buf.write(i, i as u64) };
        }
        let v = unsafe { buf.into_vec(8) };
        assert_eq!(v, (0..8).collect::<Vec<u64>>());
        assert_eq!(v.capacity(), cap, "capacity survives the roundtrip");
        assert_eq!(v.as_ptr(), block, "same heap block end to end");
    }

    #[test]
    fn scatter_from_storage_grows_undersized_storage() {
        let buf = ScatterBuffer::from_storage(Vec::<u32>::with_capacity(2), 6);
        assert_eq!(buf.len(), 6);
        for i in 0..6 {
            unsafe { buf.write(i, i as u32 * 10) };
        }
        let v = unsafe { buf.into_vec(6) };
        assert_eq!(v, vec![0, 10, 20, 30, 40, 50]);
    }

    #[test]
    fn scatter_from_storage_with_sanitizer_matches_fresh_semantics() {
        use crate::sanitizer::{SanitizerConfig, SanitizerKind, SanitizerSink};
        let sink = SanitizerSink::new(SanitizerConfig::full());
        let storage = vec![7u64; 5]; // stale contents must not leak
        let buf = ScatterBuffer::from_storage_with_sanitizer(storage, 3, sink.clone(), "re");
        assert!(buf.is_sanitized());
        unsafe {
            buf.write(0, 1);
            buf.write(2, 3);
        }
        let v = unsafe { buf.into_vec(3) };
        assert_eq!(v, vec![1, 0, 3], "unwritten slot zero-filled, not stale");
        assert_eq!(sink.drain().count_of(SanitizerKind::UninitRead), 1);
    }

    #[test]
    fn shared_array_tracks_traffic() {
        let mut arr = SharedArray::<u32>::new(8);
        arr.write(0, 42);
        assert_eq!(arr.read(0), 42);
        arr.swap(0, 1);
        assert_eq!(arr.read(0), 0);
        assert_eq!(arr.read(1), 42);
        // write(4) + read(4) + swap(16) + 2 reads (8) = 32 bytes
        assert_eq!(arr.bytes_accessed(), 32);
    }

    #[test]
    fn shared_array_from_slice() {
        let arr = SharedArray::from_slice(&[1.0f32, 2.0, 3.0]);
        assert_eq!(arr.as_slice(), &[1.0, 2.0, 3.0]);
        assert_eq!(arr.bytes_accessed(), 12);
    }

    #[test]
    fn unlimited_memory_never_fails() {
        let mut mem = DeviceMemory::unlimited();
        assert!(mem.try_reserve(u64::MAX / 2).is_ok());
        assert!(mem.try_reserve(1 << 40).is_ok());
        assert_eq!(mem.allocs(), 2);
    }

    #[test]
    fn capacity_is_enforced_and_released() {
        let mut mem = DeviceMemory::with_capacity(1000);
        assert!(mem.try_reserve(600).is_ok());
        let err = mem.try_reserve(600).unwrap_err();
        assert_eq!(
            err,
            AllocError::OutOfMemory {
                requested: 600,
                in_use: 600,
                capacity: 1000
            }
        );
        assert!(!err.is_transient());
        mem.release(600);
        assert!(mem.try_reserve(600).is_ok());
        assert_eq!(mem.peak(), 600);
        assert_eq!(mem.in_use(), 600);
    }

    #[test]
    fn corrupt_target_flips_one_bit_of_one_element() {
        let mut counts = [0u64; 8];
        // byte 2 of element 3: flipping bit 0 adds 2^16 to counts[3]
        counts.mutate_byte(3 * 8 + 2, CorruptionOp::BitFlip { mask: 0x01 });
        assert_eq!(counts[3], 1 << 16);
        assert!(counts.iter().enumerate().all(|(i, &c)| i == 3 || c == 0));
        assert_eq!(counts.len_bytes(), 64);
    }

    #[test]
    fn corrupt_target_stuck_byte_and_floats() {
        let mut oracle = vec![7u8; 4];
        oracle.mutate_byte(1, CorruptionOp::StuckByte { value: 0xFF });
        assert_eq!(oracle, vec![7, 0xFF, 7, 7]);

        let mut xs = [1.0f32, 2.0];
        let before = xs[1];
        xs.mutate_byte(4 + 3, CorruptionOp::BitFlip { mask: 0x80 });
        assert_eq!(xs[1], -before, "sign-bit flip negates");
        assert_eq!(xs[0], 1.0);
    }

    #[test]
    fn corrupt_target_out_of_range_is_noop() {
        let mut xs = vec![5u32; 2];
        xs.mutate_byte(99, CorruptionOp::StuckByte { value: 0 });
        assert_eq!(xs, vec![5, 5]);
    }

    #[test]
    fn sanitized_scatter_reports_oob_and_double_writes() {
        use crate::sanitizer::{SanitizerConfig, SanitizerKind, SanitizerSink};
        let sink = SanitizerSink::new(SanitizerConfig::full());
        let buf = ScatterBuffer::with_sanitizer(4, sink.clone(), "test-out");
        assert!(buf.is_sanitized());
        unsafe {
            buf.write(0, 10u32);
            buf.write(9, 99); // out of bounds: dropped, reported
            buf.write(0, 20); // double write: dropped, first value kept
            buf.write(1, 11);
            buf.write(2, 12);
            buf.write(3, 13);
        }
        let v = unsafe { buf.into_vec(4) };
        assert_eq!(v, vec![10, 11, 12, 13]);
        let report = sink.drain();
        assert_eq!(report.count_of(SanitizerKind::OutOfBounds), 1);
        assert_eq!(report.count_of(SanitizerKind::WriteWriteRace), 1);
        assert!(report
            .findings
            .iter()
            .all(|f| f.context == "scatter:test-out"));
    }

    #[test]
    fn sanitized_scatter_zero_fills_unwritten_slots() {
        use crate::sanitizer::{SanitizerConfig, SanitizerKind, SanitizerSink};
        let sink = SanitizerSink::new(SanitizerConfig::full());
        let buf = ScatterBuffer::with_sanitizer(3, sink.clone(), "gap");
        unsafe {
            buf.write(0, 5u64);
            buf.write(2, 7);
        }
        let v = unsafe { buf.into_vec(3) };
        assert_eq!(v, vec![5, 0, 7]);
        assert_eq!(sink.drain().count_of(SanitizerKind::UninitRead), 1);
    }

    #[test]
    fn sanitized_shared_array_degrades_oob_instead_of_panicking() {
        use crate::sanitizer::{SanitizerConfig, SanitizerKind, SanitizerSink};
        let sink = SanitizerSink::new(SanitizerConfig::full());
        let mut arr = SharedArray::<u32>::with_sanitizer(4, sink.clone(), "sort");
        arr.write(0, 42);
        arr.write(4, 1); // dropped
        assert_eq!(arr.read(4), 0); // default
        arr.swap(0, 7); // dropped
        assert_eq!(arr.read(0), 42);
        let report = sink.drain();
        assert_eq!(report.count_of(SanitizerKind::OutOfBounds), 3);
        assert!(report.findings.iter().all(|f| f.context == "shared:sort"));
    }

    #[test]
    fn release_saturates_and_reset_clears() {
        let mut mem = DeviceMemory::with_capacity(100);
        mem.try_reserve(50).unwrap();
        mem.release(500);
        assert_eq!(mem.in_use(), 0);
        mem.try_reserve(80).unwrap();
        mem.reset();
        assert_eq!(mem.in_use(), 0);
        assert_eq!(mem.peak(), 0);
        assert_eq!(mem.allocs(), 0);
        assert_eq!(mem.capacity(), Some(100));
    }
}
