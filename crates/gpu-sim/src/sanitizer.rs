//! The SIMT sanitizer: a `compute-sanitizer` / `cuda-memcheck` analogue
//! for the simulated device.
//!
//! The BSP contract of [`crate::block::BlockExec`] — every phase is
//! data-race-free, threads reach the same barriers — is documented but,
//! without this module, unenforced: a racy kernel port silently produces
//! schedule-dependent results. The sanitizer is the enforcement layer.
//! It is strictly **opt-in** ([`SanitizerConfig`] installed on a
//! [`crate::Device`] or a `BlockExec`); with no config installed every
//! tracking branch is behind an `Option` that stays `None`, so the fast
//! paths pay nothing.
//!
//! Five detector classes are implemented (mirroring the
//! `memcheck`/`racecheck`/`initcheck`/`synccheck` tools):
//!
//! * [`SanitizerKind::WriteWriteRace`] / [`SanitizerKind::ReadWriteRace`]
//!   — two threads touch the same shared word in one barrier interval,
//!   at least one of them writing;
//! * [`SanitizerKind::BarrierDivergence`] — threads of a block execute
//!   different numbers of conditional barriers in one phase;
//! * [`SanitizerKind::UninitRead`] — a shared word is read before any
//!   thread wrote it;
//! * [`SanitizerKind::OutOfBounds`] — a shared-memory, `SharedArray`, or
//!   `ScatterBuffer` access past the allocation;
//! * [`SanitizerKind::MixedAtomic`] — the same counter word is accessed
//!   both atomically and with plain loads/stores in one barrier
//!   interval.
//!
//! Findings are *reported, never panicked*: they surface as a structured
//! [`SanitizerReport`] attached to the launching kernel's
//! [`crate::KernelRecord`] (and from there to the Chrome trace), or are
//! taken directly off a `BlockExec`. The offending access is dropped or
//! zero-substituted so the simulation continues deterministically.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Which detector classes are armed. The default arms everything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SanitizerConfig {
    /// Detect write-write and read-write races within a phase.
    pub races: bool,
    /// Detect threads reaching different conditional-barrier counts.
    pub barriers: bool,
    /// Detect reads of never-written shared words.
    pub uninit: bool,
    /// Detect out-of-bounds shared/scatter accesses.
    pub bounds: bool,
    /// Detect mixed atomic/non-atomic access to one counter word.
    pub atomics: bool,
    /// Findings kept per report; the rest are counted as truncated.
    pub max_findings: usize,
}

impl Default for SanitizerConfig {
    fn default() -> Self {
        Self {
            races: true,
            barriers: true,
            uninit: true,
            bounds: true,
            atomics: true,
            max_findings: 64,
        }
    }
}

impl SanitizerConfig {
    /// All detector classes armed (the default).
    pub fn full() -> Self {
        Self::default()
    }
}

/// The detector class of one finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SanitizerKind {
    /// Two threads wrote the same shared word in one phase.
    WriteWriteRace,
    /// One thread read a shared word another thread wrote (or wrote a
    /// word another thread read) in the same phase.
    ReadWriteRace,
    /// Threads of one block executed different numbers of conditional
    /// barriers within a phase (`__syncthreads` divergence).
    BarrierDivergence,
    /// A shared word was read before any thread initialized it.
    UninitRead,
    /// An access landed outside the allocation.
    OutOfBounds,
    /// A counter word was accessed both atomically and with plain
    /// loads/stores in the same phase.
    MixedAtomic,
}

impl SanitizerKind {
    /// Stable kebab-case name (used in reports and JSON).
    pub fn name(self) -> &'static str {
        match self {
            SanitizerKind::WriteWriteRace => "write-write-race",
            SanitizerKind::ReadWriteRace => "read-write-race",
            SanitizerKind::BarrierDivergence => "barrier-divergence",
            SanitizerKind::UninitRead => "uninit-read",
            SanitizerKind::OutOfBounds => "out-of-bounds",
            SanitizerKind::MixedAtomic => "mixed-atomic",
        }
    }
}

impl fmt::Display for SanitizerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One detected violation.
#[derive(Debug, Clone, PartialEq)]
pub struct SanitizerFinding {
    /// Detector class.
    pub kind: SanitizerKind,
    /// Word / slot index the access targeted.
    pub index: usize,
    /// Barrier interval (phase) in which the access happened; 0 for
    /// findings from device-global buffers with no phase structure.
    pub phase: u64,
    /// Thread id of the offending access, when known.
    pub thread: Option<u32>,
    /// Thread id of the earlier conflicting access, when known.
    pub other_thread: Option<u32>,
    /// Where it happened (`"smem"`, `"scatter:filter-out"`, ...).
    pub context: String,
}

impl fmt::Display for SanitizerFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} at {}[{}] (phase {}",
            self.kind, self.context, self.index, self.phase
        )?;
        if let Some(t) = self.thread {
            write!(f, ", thread {t}")?;
        }
        if let Some(o) = self.other_thread {
            write!(f, ", conflicts with thread {o}")?;
        }
        f.write_str(")")
    }
}

/// The structured result of sanitizing one kernel (or one `BlockExec`
/// run): every finding, plus coverage counters so "clean" can be
/// distinguished from "did not look".
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SanitizerReport {
    /// All findings, in detection order (capped at
    /// [`SanitizerConfig::max_findings`]).
    pub findings: Vec<SanitizerFinding>,
    /// Findings dropped beyond the cap.
    pub truncated: u64,
    /// Barrier intervals observed.
    pub phases: u64,
    /// Tracked accesses checked.
    pub accesses: u64,
}

impl SanitizerReport {
    /// No findings (truncated ones count as findings).
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty() && self.truncated == 0
    }

    /// Findings of one detector class.
    pub fn count_of(&self, kind: SanitizerKind) -> usize {
        self.findings.iter().filter(|f| f.kind == kind).count()
    }

    /// Fold another report into this one (summing coverage counters).
    pub fn merge(&mut self, other: &SanitizerReport) {
        self.findings.extend(other.findings.iter().cloned());
        self.truncated += other.truncated;
        self.phases += other.phases;
        self.accesses += other.accesses;
    }

    /// Serialize as a JSON object (hand-rolled, same style as the
    /// Chrome-trace writer: no serialization dependency).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128 + self.findings.len() * 128);
        self.write_json(&mut out);
        out
    }

    pub(crate) fn write_json(&self, out: &mut String) {
        out.push('{');
        out.push_str(&format!(
            "\"clean\":{},\"truncated\":{},\"phases\":{},\"accesses\":{},\"findings\":[",
            self.is_clean(),
            self.truncated,
            self.phases,
            self.accesses
        ));
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"kind\":\"{}\",\"index\":{},\"phase\":{},",
                f.kind.name(),
                f.index,
                f.phase
            ));
            match f.thread {
                Some(t) => out.push_str(&format!("\"thread\":{t},")),
                None => out.push_str("\"thread\":null,"),
            }
            match f.other_thread {
                Some(t) => out.push_str(&format!("\"other_thread\":{t},")),
                None => out.push_str("\"other_thread\":null,"),
            }
            out.push_str("\"context\":");
            json_escape(&f.context, out);
            out.push('}');
        }
        out.push_str("]}");
    }
}

/// Serialize a set of named reports (e.g. one per kernel record) as a
/// JSON array — the artifact format the CI `sanitize` job uploads.
pub fn reports_to_json(reports: &[(String, SanitizerReport)]) -> String {
    let mut out = String::with_capacity(64 + reports.len() * 256);
    out.push('[');
    for (i, (name, report)) in reports.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"kernel\":");
        json_escape(name, &mut out);
        out.push_str(",\"report\":");
        report.write_json(&mut out);
        out.push('}');
    }
    out.push(']');
    out
}

fn json_escape(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct SinkInner {
    cfg: SanitizerConfig,
    findings: Mutex<Vec<SanitizerFinding>>,
    truncated: AtomicU64,
    accesses: AtomicU64,
}

/// A thread-safe findings collector shared between a [`crate::Device`]
/// and the buffers it hands to kernels. Vectorized kernels run their
/// blocks on concurrent host threads, so shadowed [`crate::ScatterBuffer`]s
/// report through this sink; the device drains it into the launching
/// kernel's record at commit time.
#[derive(Clone)]
pub struct SanitizerSink {
    inner: Arc<SinkInner>,
}

impl fmt::Debug for SanitizerSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SanitizerSink")
            .field("pending", &self.pending())
            .finish()
    }
}

impl SanitizerSink {
    pub fn new(cfg: SanitizerConfig) -> Self {
        Self {
            inner: Arc::new(SinkInner {
                cfg,
                findings: Mutex::new(Vec::new()),
                truncated: AtomicU64::new(0),
                accesses: AtomicU64::new(0),
            }),
        }
    }

    pub fn config(&self) -> SanitizerConfig {
        self.inner.cfg
    }

    /// Record one finding (capped at the configured maximum).
    pub fn record(&self, finding: SanitizerFinding) {
        let mut findings = self.inner.findings.lock().unwrap();
        if findings.len() < self.inner.cfg.max_findings {
            findings.push(finding);
        } else {
            self.inner.truncated.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Count one tracked access (coverage accounting).
    pub fn note_access(&self) {
        self.inner.accesses.fetch_add(1, Ordering::Relaxed);
    }

    /// Findings currently pending (not yet drained).
    pub fn pending(&self) -> usize {
        self.inner.findings.lock().unwrap().len()
    }

    /// Take everything recorded since the last drain as a report.
    pub fn drain(&self) -> SanitizerReport {
        let findings = std::mem::take(&mut *self.inner.findings.lock().unwrap());
        SanitizerReport {
            findings,
            truncated: self.inner.truncated.swap(0, Ordering::Relaxed),
            phases: 0,
            accesses: self.inner.accesses.swap(0, Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(kind: SanitizerKind, index: usize) -> SanitizerFinding {
        SanitizerFinding {
            kind,
            index,
            phase: 2,
            thread: Some(3),
            other_thread: Some(7),
            context: "smem".to_string(),
        }
    }

    #[test]
    fn report_counts_and_cleanliness() {
        let mut report = SanitizerReport::default();
        assert!(report.is_clean());
        report
            .findings
            .push(finding(SanitizerKind::WriteWriteRace, 0));
        report.findings.push(finding(SanitizerKind::UninitRead, 1));
        assert!(!report.is_clean());
        assert_eq!(report.count_of(SanitizerKind::WriteWriteRace), 1);
        assert_eq!(report.count_of(SanitizerKind::OutOfBounds), 0);
    }

    #[test]
    fn truncation_alone_is_not_clean() {
        let report = SanitizerReport {
            truncated: 3,
            ..Default::default()
        };
        assert!(!report.is_clean());
    }

    #[test]
    fn sink_caps_findings_and_counts_truncated() {
        let sink = SanitizerSink::new(SanitizerConfig {
            max_findings: 2,
            ..Default::default()
        });
        for i in 0..5 {
            sink.record(finding(SanitizerKind::OutOfBounds, i));
        }
        let report = sink.drain();
        assert_eq!(report.findings.len(), 2);
        assert_eq!(report.truncated, 3);
        // the drain resets the sink
        assert!(sink.drain().is_clean());
    }

    #[test]
    fn sink_is_shareable_across_threads() {
        let sink = SanitizerSink::new(SanitizerConfig::default());
        std::thread::scope(|scope| {
            for t in 0..4 {
                let sink = sink.clone();
                scope.spawn(move || {
                    sink.record(finding(SanitizerKind::WriteWriteRace, t));
                    sink.note_access();
                });
            }
        });
        let report = sink.drain();
        assert_eq!(report.findings.len(), 4);
        assert_eq!(report.accesses, 4);
    }

    #[test]
    fn json_shape_is_valid() {
        let mut report = SanitizerReport::default();
        report
            .findings
            .push(finding(SanitizerKind::MixedAtomic, 17));
        report.accesses = 9;
        let json = report.to_json();
        assert!(json.contains("\"kind\":\"mixed-atomic\""));
        assert!(json.contains("\"index\":17"));
        assert!(json.contains("\"clean\":false"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());

        let all = reports_to_json(&[("count \"x\"".to_string(), report)]);
        assert!(all.starts_with('[') && all.ends_with(']'));
        assert!(all.contains("count \\\"x\\\""));
    }

    #[test]
    fn display_names_are_kebab_case() {
        for (kind, name) in [
            (SanitizerKind::WriteWriteRace, "write-write-race"),
            (SanitizerKind::ReadWriteRace, "read-write-race"),
            (SanitizerKind::BarrierDivergence, "barrier-divergence"),
            (SanitizerKind::UninitRead, "uninit-read"),
            (SanitizerKind::OutOfBounds, "out-of-bounds"),
            (SanitizerKind::MixedAtomic, "mixed-atomic"),
        ] {
            assert_eq!(kind.to_string(), name);
        }
        let text = finding(SanitizerKind::ReadWriteRace, 4).to_string();
        assert!(text.contains("read-write-race") && text.contains("smem[4]"));
    }

    #[test]
    fn merge_accumulates() {
        let mut a = SanitizerReport {
            phases: 2,
            accesses: 10,
            ..Default::default()
        };
        let b = SanitizerReport {
            findings: vec![finding(SanitizerKind::UninitRead, 0)],
            truncated: 1,
            phases: 3,
            accesses: 5,
        };
        a.merge(&b);
        assert_eq!(a.findings.len(), 1);
        assert_eq!(a.truncated, 1);
        assert_eq!(a.phases, 5);
        assert_eq!(a.accesses, 15);
    }
}
