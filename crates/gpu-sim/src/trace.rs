//! Timeline export in the Chrome trace-event format.
//!
//! `Device::records()` holds the full kernel timeline of a run;
//! [`chrome_trace`] serializes it into the JSON array format understood
//! by `chrome://tracing`, Perfetto (<https://ui.perfetto.dev>), and
//! Speedscope — so a simulated selection run can be inspected with the
//! same tooling people use for real GPU profiles.
//!
//! Each kernel becomes a complete event (`"ph": "X"`) on a per-origin
//! track; launch overheads appear as separate events on an "overhead"
//! track, making the dynamic-parallelism latency savings (§IV-E)
//! directly visible.

use crate::device::{Device, LaunchOrigin};
use serde::Serialize;

/// One Chrome trace event (the subset of fields the viewers need).
#[derive(Debug, Serialize)]
pub struct TraceEvent {
    /// Event name (kernel name, or `"launch"` for overheads).
    pub name: String,
    /// Category: `"kernel"` or `"launch-overhead"`.
    pub cat: String,
    /// Phase: `"X"` = complete event with duration.
    pub ph: String,
    /// Start timestamp in microseconds.
    pub ts: f64,
    /// Duration in microseconds.
    pub dur: f64,
    /// Process id (constant; one simulated device).
    pub pid: u32,
    /// Thread id: 0 = host-launched kernels, 1 = device-launched.
    pub tid: u32,
    /// Extra details shown in the viewer's detail pane.
    pub args: TraceArgs,
}

/// Detail payload for one kernel event.
#[derive(Debug, Serialize)]
pub struct TraceArgs {
    pub blocks: u32,
    pub threads_per_block: u32,
    pub bottleneck: String,
    pub global_bytes: u64,
    pub shared_atomic_warp_ops: u64,
    pub global_atomic_ops: u64,
}

/// Build the trace events for everything on the device timeline.
pub fn trace_events(device: &Device) -> Vec<TraceEvent> {
    let mut events = Vec::with_capacity(device.records().len() * 2);
    for rec in device.records() {
        let tid = match rec.origin {
            LaunchOrigin::Host => 0,
            LaunchOrigin::Device => 1,
        };
        // launch overhead precedes the kernel
        events.push(TraceEvent {
            name: format!("launch {}", rec.name),
            cat: "launch-overhead".to_string(),
            ph: "X".to_string(),
            ts: (rec.start - rec.launch_overhead).as_us(),
            dur: rec.launch_overhead.as_us(),
            pid: 1,
            tid,
            args: TraceArgs {
                blocks: rec.config.blocks,
                threads_per_block: rec.config.threads_per_block,
                bottleneck: "launch".to_string(),
                global_bytes: 0,
                shared_atomic_warp_ops: 0,
                global_atomic_ops: 0,
            },
        });
        events.push(TraceEvent {
            name: rec.name.clone(),
            cat: "kernel".to_string(),
            ph: "X".to_string(),
            ts: rec.start.as_us(),
            dur: rec.duration.as_us(),
            pid: 1,
            tid,
            args: TraceArgs {
                blocks: rec.config.blocks,
                threads_per_block: rec.config.threads_per_block,
                bottleneck: rec.breakdown.bottleneck().to_string(),
                global_bytes: rec.cost.total_global_bytes(),
                shared_atomic_warp_ops: rec.cost.shared_atomic_warp_ops,
                global_atomic_ops: rec.cost.global_atomic_ops,
            },
        });
    }
    events
}

/// Serialize the device timeline as a Chrome trace JSON string.
pub fn chrome_trace(device: &Device) -> String {
    serde_json::to_string_nothing_pretty(&trace_events(device))
}

// A hand-rolled stand-in for `serde_json` (which is not among the
// approved dependencies): serialize via serde into the tiny JSON subset
// the trace format needs. Kept private to this module.
mod serde_json {
    use serde::ser::{self, Serialize};

    /// Serialize any `Serialize` value composed of structs, sequences,
    /// strings, and numbers into compact JSON.
    pub fn to_string_nothing_pretty<T: Serialize>(value: &T) -> String {
        let mut out = String::new();
        value
            .serialize(&mut Writer { out: &mut out })
            .expect("trace serialization cannot fail");
        out
    }

    pub struct Writer<'a> {
        out: &'a mut String,
    }

    #[derive(Debug)]
    pub struct Error(String);

    impl std::fmt::Display for Error {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.0)
        }
    }
    impl std::error::Error for Error {}
    impl ser::Error for Error {
        fn custom<T: std::fmt::Display>(msg: T) -> Self {
            Error(msg.to_string())
        }
    }

    fn escape(s: &str, out: &mut String) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push('"');
    }

    macro_rules! forward_num {
        ($($fn:ident: $t:ty),*) => {$(
            fn $fn(self, v: $t) -> Result<(), Error> {
                self.out.push_str(&v.to_string());
                Ok(())
            }
        )*};
    }

    impl<'a, 'b> ser::Serializer for &'b mut Writer<'a> {
        type Ok = ();
        type Error = Error;
        type SerializeSeq = Seq<'a, 'b>;
        type SerializeTuple = Seq<'a, 'b>;
        type SerializeTupleStruct = Seq<'a, 'b>;
        type SerializeTupleVariant = Seq<'a, 'b>;
        type SerializeMap = Seq<'a, 'b>;
        type SerializeStruct = Seq<'a, 'b>;
        type SerializeStructVariant = Seq<'a, 'b>;

        forward_num!(serialize_i8: i8, serialize_i16: i16, serialize_i32: i32,
            serialize_i64: i64, serialize_u8: u8, serialize_u16: u16,
            serialize_u32: u32, serialize_u64: u64);

        fn serialize_f32(self, v: f32) -> Result<(), Error> {
            self.serialize_f64(v as f64)
        }
        fn serialize_f64(self, v: f64) -> Result<(), Error> {
            if v.is_finite() {
                self.out.push_str(&format!("{v}"));
            } else {
                self.out.push_str("null");
            }
            Ok(())
        }
        fn serialize_bool(self, v: bool) -> Result<(), Error> {
            self.out.push_str(if v { "true" } else { "false" });
            Ok(())
        }
        fn serialize_char(self, v: char) -> Result<(), Error> {
            escape(&v.to_string(), self.out);
            Ok(())
        }
        fn serialize_str(self, v: &str) -> Result<(), Error> {
            escape(v, self.out);
            Ok(())
        }
        fn serialize_bytes(self, _v: &[u8]) -> Result<(), Error> {
            Err(ser::Error::custom("bytes unsupported"))
        }
        fn serialize_none(self) -> Result<(), Error> {
            self.out.push_str("null");
            Ok(())
        }
        fn serialize_some<T: Serialize + ?Sized>(self, v: &T) -> Result<(), Error> {
            v.serialize(self)
        }
        fn serialize_unit(self) -> Result<(), Error> {
            self.out.push_str("null");
            Ok(())
        }
        fn serialize_unit_struct(self, _: &'static str) -> Result<(), Error> {
            self.serialize_unit()
        }
        fn serialize_unit_variant(
            self,
            _: &'static str,
            _: u32,
            variant: &'static str,
        ) -> Result<(), Error> {
            self.serialize_str(variant)
        }
        fn serialize_newtype_struct<T: Serialize + ?Sized>(
            self,
            _: &'static str,
            v: &T,
        ) -> Result<(), Error> {
            v.serialize(self)
        }
        fn serialize_newtype_variant<T: Serialize + ?Sized>(
            self,
            _: &'static str,
            _: u32,
            _: &'static str,
            v: &T,
        ) -> Result<(), Error> {
            v.serialize(self)
        }
        fn serialize_seq(self, _: Option<usize>) -> Result<Seq<'a, 'b>, Error> {
            self.out.push('[');
            Ok(Seq {
                w: self,
                first: true,
                close: ']',
            })
        }
        fn serialize_tuple(self, len: usize) -> Result<Seq<'a, 'b>, Error> {
            self.serialize_seq(Some(len))
        }
        fn serialize_tuple_struct(self, _: &'static str, len: usize) -> Result<Seq<'a, 'b>, Error> {
            self.serialize_seq(Some(len))
        }
        fn serialize_tuple_variant(
            self,
            _: &'static str,
            _: u32,
            _: &'static str,
            len: usize,
        ) -> Result<Seq<'a, 'b>, Error> {
            self.serialize_seq(Some(len))
        }
        fn serialize_map(self, _: Option<usize>) -> Result<Seq<'a, 'b>, Error> {
            self.out.push('{');
            Ok(Seq {
                w: self,
                first: true,
                close: '}',
            })
        }
        fn serialize_struct(self, _: &'static str, _: usize) -> Result<Seq<'a, 'b>, Error> {
            self.out.push('{');
            Ok(Seq {
                w: self,
                first: true,
                close: '}',
            })
        }
        fn serialize_struct_variant(
            self,
            name: &'static str,
            _: u32,
            _: &'static str,
            len: usize,
        ) -> Result<Seq<'a, 'b>, Error> {
            self.serialize_struct(name, len)
        }
    }

    pub struct Seq<'a, 'b> {
        w: &'b mut Writer<'a>,
        first: bool,
        close: char,
    }

    impl Seq<'_, '_> {
        fn comma(&mut self) {
            if self.first {
                self.first = false;
            } else {
                self.w.out.push(',');
            }
        }
    }

    impl ser::SerializeSeq for Seq<'_, '_> {
        type Ok = ();
        type Error = Error;
        fn serialize_element<T: Serialize + ?Sized>(&mut self, v: &T) -> Result<(), Error> {
            self.comma();
            v.serialize(&mut *self.w)
        }
        fn end(self) -> Result<(), Error> {
            self.w.out.push(self.close);
            Ok(())
        }
    }

    macro_rules! seq_like {
        ($trait:ident, $fn:ident) => {
            impl ser::$trait for Seq<'_, '_> {
                type Ok = ();
                type Error = Error;
                fn $fn<T: Serialize + ?Sized>(&mut self, v: &T) -> Result<(), Error> {
                    self.comma();
                    v.serialize(&mut *self.w)
                }
                fn end(self) -> Result<(), Error> {
                    self.w.out.push(self.close);
                    Ok(())
                }
            }
        };
    }
    seq_like!(SerializeTuple, serialize_element);
    seq_like!(SerializeTupleStruct, serialize_field);
    seq_like!(SerializeTupleVariant, serialize_field);

    impl ser::SerializeStruct for Seq<'_, '_> {
        type Ok = ();
        type Error = Error;
        fn serialize_field<T: Serialize + ?Sized>(
            &mut self,
            key: &'static str,
            v: &T,
        ) -> Result<(), Error> {
            self.comma();
            escape(key, self.w.out);
            self.w.out.push(':');
            v.serialize(&mut *self.w)
        }
        fn end(self) -> Result<(), Error> {
            self.w.out.push(self.close);
            Ok(())
        }
    }

    impl ser::SerializeStructVariant for Seq<'_, '_> {
        type Ok = ();
        type Error = Error;
        fn serialize_field<T: Serialize + ?Sized>(
            &mut self,
            key: &'static str,
            v: &T,
        ) -> Result<(), Error> {
            ser::SerializeStruct::serialize_field(self, key, v)
        }
        fn end(self) -> Result<(), Error> {
            self.w.out.push(self.close);
            Ok(())
        }
    }

    impl ser::SerializeMap for Seq<'_, '_> {
        type Ok = ();
        type Error = Error;
        fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), Error> {
            self.comma();
            key.serialize(&mut *self.w)
        }
        fn serialize_value<T: Serialize + ?Sized>(&mut self, v: &T) -> Result<(), Error> {
            self.w.out.push(':');
            v.serialize(&mut *self.w)
        }
        fn end(self) -> Result<(), Error> {
            self.w.out.push(self.close);
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::v100;
    use crate::launch::LaunchConfig;
    use hpc_par::ThreadPool;

    fn run_device(pool: &ThreadPool) -> Device<'_> {
        let mut device = Device::new(v100(), pool);
        let cfg = LaunchConfig {
            blocks: 100,
            threads_per_block: 256,
            shared_mem_bytes: 0,
        };
        device.launch("count", cfg, LaunchOrigin::Host, |_, c| {
            c.global_read_bytes += 1000;
        });
        device.launch("filter", cfg, LaunchOrigin::Device, |_, c| {
            c.global_write_bytes += 500;
        });
        device
    }

    #[test]
    fn events_cover_every_kernel_and_overhead() {
        let pool = ThreadPool::new(1);
        let device = run_device(&pool);
        let events = trace_events(&device);
        assert_eq!(events.len(), 4); // 2 kernels + 2 launch overheads
        assert_eq!(events[1].name, "count");
        assert_eq!(events[1].tid, 0, "host track");
        assert_eq!(events[3].name, "filter");
        assert_eq!(events[3].tid, 1, "device track");
        // events are chronologically ordered and non-overlapping
        assert!(events[0].ts + events[0].dur <= events[1].ts + 1e-9);
        assert!(events[1].ts + events[1].dur <= events[2].ts + 1e-9);
    }

    #[test]
    fn chrome_trace_is_valid_json_shape() {
        let pool = ThreadPool::new(1);
        let device = run_device(&pool);
        let json = chrome_trace(&device);
        assert!(json.starts_with('['));
        assert!(json.ends_with(']'));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"name\":\"count\""));
        assert!(json.contains("\"bottleneck\""));
        // balanced braces/brackets (cheap structural check)
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
        // no trailing commas
        assert!(!json.contains(",]") && !json.contains(",}"));
    }

    #[test]
    fn string_escaping() {
        let pool = ThreadPool::new(1);
        let mut device = Device::new(v100(), &pool);
        let cfg = LaunchConfig {
            blocks: 1,
            threads_per_block: 32,
            shared_mem_bytes: 0,
        };
        device.launch("weird \"name\"\n", cfg, LaunchOrigin::Host, |_, _| {});
        let json = chrome_trace(&device);
        assert!(json.contains("weird \\\"name\\\"\\n"));
    }
}
