//! Timeline export in the Chrome trace-event format.
//!
//! `Device::records()` holds the full kernel timeline of a run;
//! [`chrome_trace`] serializes it into the JSON array format understood
//! by `chrome://tracing`, Perfetto (<https://ui.perfetto.dev>), and
//! Speedscope — so a simulated selection run can be inspected with the
//! same tooling people use for real GPU profiles.
//!
//! Each kernel becomes a complete event (`"ph": "X"`) on a per-origin
//! track; launch overheads appear as separate events on an "overhead"
//! track, making the dynamic-parallelism latency savings (§IV-E)
//! directly visible.
//!
//! Counter timeseries (bucket occupancy, atomic-collision rate,
//! buffer-pool hit rate — sampled by the observability layer above this
//! crate) ride along as Perfetto counter tracks: `"ph": "C"` events via
//! [`chrome_trace_with_counters`].
//!
//! Serialization is a direct JSON writer (the trace subset only needs
//! objects, arrays, strings, and numbers), so the crate carries no
//! serialization dependency.

use crate::device::{Device, LaunchOrigin};

/// One Chrome trace event (the subset of fields the viewers need).
#[derive(Debug)]
pub struct TraceEvent {
    /// Event name (kernel name, or `"launch"` for overheads).
    pub name: String,
    /// Category: `"kernel"`, `"launch-overhead"`, or `"fault"`.
    pub cat: String,
    /// Phase: `"X"` = complete event with duration.
    pub ph: String,
    /// Start timestamp in microseconds.
    pub ts: f64,
    /// Duration in microseconds.
    pub dur: f64,
    /// Process id (constant; one simulated device).
    pub pid: u32,
    /// Thread id: 0 = host-launched kernels, 1 = device-launched.
    pub tid: u32,
    /// Extra details shown in the viewer's detail pane.
    pub args: TraceArgs,
}

/// Detail payload for one kernel event.
#[derive(Debug)]
pub struct TraceArgs {
    pub blocks: u32,
    pub threads_per_block: u32,
    pub bottleneck: String,
    pub global_bytes: u64,
    pub shared_atomic_warp_ops: u64,
    pub global_atomic_ops: u64,
    /// Injected-fault description, when the kernel launch failed. A
    /// faulted launch carries the annotation on *both* its events (the
    /// launch-overhead event and the kernel event), so filtering either
    /// track in the viewer still surfaces the fault.
    pub fault: Option<String>,
    /// SIMT-sanitizer findings attributed to this kernel (0 when clean
    /// or when the sanitizer was off; only written to JSON when > 0).
    /// Counts only *recorded* findings — dropped ones are reported
    /// separately in [`TraceArgs::sanitizer_truncated`], never folded in.
    pub sanitizer_findings: u64,
    /// Findings the sanitizer dropped after its per-kernel cap (only
    /// written to JSON when > 0).
    pub sanitizer_truncated: u64,
}

/// Build the trace events for everything on the device timeline.
pub fn trace_events(device: &Device) -> Vec<TraceEvent> {
    let mut events = Vec::with_capacity(device.records().len() * 2);
    for rec in device.records() {
        let tid = match rec.origin {
            LaunchOrigin::Host => 0,
            LaunchOrigin::Device => 1,
        };
        let fault = rec.fault.as_ref().map(|f| f.to_string());
        // launch overhead precedes the kernel
        events.push(TraceEvent {
            name: format!("launch {}", rec.name),
            cat: "launch-overhead".to_string(),
            ph: "X".to_string(),
            ts: (rec.start - rec.launch_overhead).as_us(),
            dur: rec.launch_overhead.as_us(),
            pid: 1,
            tid,
            args: TraceArgs {
                blocks: rec.config.blocks,
                threads_per_block: rec.config.threads_per_block,
                bottleneck: "launch".to_string(),
                global_bytes: 0,
                shared_atomic_warp_ops: 0,
                global_atomic_ops: 0,
                fault: fault.clone(),
                sanitizer_findings: 0,
                sanitizer_truncated: 0,
            },
        });
        events.push(TraceEvent {
            name: rec.name.to_string(),
            cat: if rec.fault.is_some() {
                "fault".to_string()
            } else {
                "kernel".to_string()
            },
            ph: "X".to_string(),
            ts: rec.start.as_us(),
            dur: rec.duration.as_us(),
            pid: 1,
            tid,
            args: TraceArgs {
                blocks: rec.config.blocks,
                threads_per_block: rec.config.threads_per_block,
                bottleneck: rec.breakdown.bottleneck().to_string(),
                global_bytes: rec.cost.total_global_bytes(),
                shared_atomic_warp_ops: rec.cost.shared_atomic_warp_ops,
                global_atomic_ops: rec.cost.global_atomic_ops,
                fault,
                sanitizer_findings: rec
                    .sanitizer
                    .as_ref()
                    .map_or(0, |s| s.findings.len() as u64),
                sanitizer_truncated: rec.sanitizer.as_ref().map_or(0, |s| s.truncated),
            },
        });
    }
    events
}

/// One Perfetto counter track: a named series of `(ts_us, value)`
/// samples rendered as a `"ph": "C"` counter lane in the trace viewer.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CounterTrack {
    /// Track (and counter) name shown in the viewer.
    pub name: String,
    /// `(timestamp in microseconds, value)` samples, in time order.
    pub samples: Vec<(f64, f64)>,
}

/// Serialize the device timeline as a Chrome trace JSON string.
pub fn chrome_trace(device: &Device) -> String {
    chrome_trace_with_counters(device, &[])
}

/// [`chrome_trace`] plus counter tracks appended as `"ph": "C"` events
/// (one per sample). Empty tracks are skipped.
pub fn chrome_trace_with_counters(device: &Device, tracks: &[CounterTrack]) -> String {
    let events = trace_events(device);
    let samples: usize = tracks.iter().map(|t| t.samples.len()).sum();
    let mut out = String::with_capacity((events.len() + samples) * 256 + 2);
    out.push('[');
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_event(&mut out, ev);
    }
    let mut first = events.is_empty();
    for track in tracks {
        for &(ts, value) in &track.samples {
            if !first {
                out.push(',');
            }
            first = false;
            write_counter_event(&mut out, &track.name, ts, value);
        }
    }
    out.push(']');
    out
}

fn write_counter_event(out: &mut String, name: &str, ts: f64, value: f64) {
    out.push('{');
    write_str_field(out, "name", name, true);
    write_str_field(out, "cat", "counter", false);
    write_str_field(out, "ph", "C", false);
    write_num_field(out, "ts", ts, false);
    write_uint_field(out, "pid", 1, false);
    out.push_str(",\"args\":{");
    write_num_field(out, "value", value, true);
    out.push_str("}}");
}

fn write_event(out: &mut String, ev: &TraceEvent) {
    out.push('{');
    write_str_field(out, "name", &ev.name, true);
    write_str_field(out, "cat", &ev.cat, false);
    write_str_field(out, "ph", &ev.ph, false);
    write_num_field(out, "ts", ev.ts, false);
    write_num_field(out, "dur", ev.dur, false);
    write_uint_field(out, "pid", ev.pid as u64, false);
    write_uint_field(out, "tid", ev.tid as u64, false);
    out.push_str(",\"args\":{");
    write_uint_field(out, "blocks", ev.args.blocks as u64, true);
    write_uint_field(
        out,
        "threads_per_block",
        ev.args.threads_per_block as u64,
        false,
    );
    write_str_field(out, "bottleneck", &ev.args.bottleneck, false);
    write_uint_field(out, "global_bytes", ev.args.global_bytes, false);
    write_uint_field(
        out,
        "shared_atomic_warp_ops",
        ev.args.shared_atomic_warp_ops,
        false,
    );
    write_uint_field(out, "global_atomic_ops", ev.args.global_atomic_ops, false);
    if let Some(fault) = &ev.args.fault {
        write_str_field(out, "fault", fault, false);
    }
    if ev.args.sanitizer_findings > 0 {
        write_uint_field(out, "sanitizer_findings", ev.args.sanitizer_findings, false);
    }
    if ev.args.sanitizer_truncated > 0 {
        write_uint_field(
            out,
            "sanitizer_truncated",
            ev.args.sanitizer_truncated,
            false,
        );
    }
    out.push_str("}}");
}

fn write_str_field(out: &mut String, key: &str, value: &str, first: bool) {
    if !first {
        out.push(',');
    }
    escape(key, out);
    out.push(':');
    escape(value, out);
}

fn write_num_field(out: &mut String, key: &str, value: f64, first: bool) {
    if !first {
        out.push(',');
    }
    escape(key, out);
    out.push(':');
    if value.is_finite() {
        out.push_str(&format!("{value}"));
    } else {
        out.push_str("null");
    }
}

fn write_uint_field(out: &mut String, key: &str, value: u64, first: bool) {
    if !first {
        out.push(',');
    }
    escape(key, out);
    out.push(':');
    out.push_str(&value.to_string());
}

fn escape(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::v100;
    use crate::launch::LaunchConfig;
    use hpc_par::ThreadPool;

    fn run_device(pool: &ThreadPool) -> Device<'_> {
        let mut device = Device::new(v100(), pool);
        let cfg = LaunchConfig {
            blocks: 100,
            threads_per_block: 256,
            shared_mem_bytes: 0,
        };
        device.launch("count", cfg, LaunchOrigin::Host, |_, c| {
            c.global_read_bytes += 1000;
        });
        device.launch("filter", cfg, LaunchOrigin::Device, |_, c| {
            c.global_write_bytes += 500;
        });
        device
    }

    #[test]
    fn events_cover_every_kernel_and_overhead() {
        let pool = ThreadPool::new(1);
        let device = run_device(&pool);
        let events = trace_events(&device);
        assert_eq!(events.len(), 4); // 2 kernels + 2 launch overheads
        assert_eq!(events[1].name, "count");
        assert_eq!(events[1].tid, 0, "host track");
        assert_eq!(events[3].name, "filter");
        assert_eq!(events[3].tid, 1, "device track");
        // events are chronologically ordered and non-overlapping
        assert!(events[0].ts + events[0].dur <= events[1].ts + 1e-9);
        assert!(events[1].ts + events[1].dur <= events[2].ts + 1e-9);
    }

    #[test]
    fn chrome_trace_is_valid_json_shape() {
        let pool = ThreadPool::new(1);
        let device = run_device(&pool);
        let json = chrome_trace(&device);
        // strict parse via the workspace's recursive-descent validator —
        // every event must be an object with the trace-event fields.
        let doc = crate::jsonv::parse(&json).expect("trace is valid JSON");
        let events = doc.as_arr().expect("trace is an array");
        assert_eq!(events.len(), 4);
        for ev in events {
            let obj = ev.as_obj().expect("event is an object");
            assert_eq!(ev.get("ph").and_then(|p| p.as_str()), Some("X"));
            for key in ["name", "cat", "ts", "dur", "pid", "tid", "args"] {
                assert!(obj.contains_key(key), "event missing {key}: {obj:?}");
            }
            let args = ev.get("args").unwrap();
            assert!(args.get("bottleneck").is_some());
            assert!(args.get("blocks").and_then(|b| b.as_num()).is_some());
        }
        assert_eq!(
            events[1].get("name").and_then(|n| n.as_str()),
            Some("count")
        );
    }

    #[test]
    fn counter_tracks_emit_perfetto_counter_events() {
        let pool = ThreadPool::new(1);
        let device = run_device(&pool);
        let tracks = [
            CounterTrack {
                name: "bucket_occupancy".to_string(),
                samples: vec![(1.0, 212.0), (2.5, 48.0)],
            },
            CounterTrack {
                name: "empty_track".to_string(),
                samples: Vec::new(),
            },
        ];
        let json = chrome_trace_with_counters(&device, &tracks);
        let doc = crate::jsonv::parse(&json).expect("trace with counters is valid JSON");
        let events = doc.as_arr().unwrap();
        assert_eq!(events.len(), 4 + 2, "2 counter samples appended");
        let counters: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("C"))
            .collect();
        assert_eq!(counters.len(), 2);
        assert_eq!(
            counters[0].get("name").and_then(|n| n.as_str()),
            Some("bucket_occupancy")
        );
        assert_eq!(
            counters[0]
                .get("args")
                .and_then(|a| a.get("value"))
                .and_then(|v| v.as_num()),
            Some(212.0)
        );
        assert_eq!(counters[1].get("ts").and_then(|t| t.as_num()), Some(2.5));
        // empty device + only counter events still forms a valid array
        let fresh = Device::new(v100(), &pool);
        let json = chrome_trace_with_counters(&fresh, &tracks);
        let doc = crate::jsonv::parse(&json).expect("counter-only trace parses");
        assert_eq!(doc.as_arr().unwrap().len(), 2);
    }

    #[test]
    fn faulted_launch_annotates_both_events() {
        use crate::fault::FaultPlan;
        let pool = ThreadPool::new(1);
        let mut device = Device::new(v100(), &pool);
        device.set_fault_plan(FaultPlan::new(9).launch_failures(1.0));
        let cfg = LaunchConfig {
            blocks: 4,
            threads_per_block: 64,
            shared_mem_bytes: 0,
        };
        device.launch("doomed", cfg, LaunchOrigin::Host, |_, _| {});
        assert!(device.has_fault());
        let events = trace_events(&device);
        assert_eq!(events.len(), 2);
        let overhead = &events[0];
        let kernel = &events[1];
        assert_eq!(overhead.cat, "launch-overhead");
        assert!(
            overhead.args.fault.is_some(),
            "launch-overhead event of a faulted launch must carry the fault"
        );
        assert_eq!(overhead.args.fault, kernel.args.fault);
        assert_eq!(kernel.cat, "fault");
        // and the JSON carries the annotation twice
        let json = chrome_trace(&device);
        assert_eq!(json.matches("\"fault\":").count(), 2);
        crate::jsonv::parse(&json).expect("faulted trace is valid JSON");
    }

    #[test]
    fn sanitizer_truncated_is_not_folded_into_findings() {
        use crate::sanitizer::SanitizerConfig;
        let pool = ThreadPool::new(1);
        let mut device = Device::new(v100(), &pool);
        device.set_sanitizer(SanitizerConfig {
            max_findings: 1,
            ..SanitizerConfig::full()
        });
        let cfg = LaunchConfig {
            blocks: 1,
            threads_per_block: 32,
            shared_mem_bytes: 0,
        };
        let buf = device.scatter_buffer::<u32>(1, "out");
        unsafe {
            buf.write(0, 1);
            buf.write(0, 2); // finding 1 (recorded)
            buf.write(0, 3); // finding 2 (truncated by the cap)
        }
        drop(buf);
        device.launch("racy", cfg, LaunchOrigin::Host, |_, _| {});
        let events = trace_events(&device);
        let racy = events.iter().find(|e| e.name == "racy").unwrap();
        assert_eq!(racy.args.sanitizer_findings, 1, "recorded findings only");
        assert!(racy.args.sanitizer_truncated >= 1, "cap overflow surfaced");
        let json = chrome_trace(&device);
        assert!(json.contains("\"sanitizer_findings\":1"));
        assert!(json.contains("\"sanitizer_truncated\":"));
        crate::jsonv::parse(&json).expect("sanitizer trace is valid JSON");
    }

    #[test]
    fn sanitizer_findings_surface_in_trace_args() {
        use crate::sanitizer::SanitizerConfig;
        let pool = ThreadPool::new(1);
        let mut device = Device::new(v100(), &pool);
        device.set_sanitizer(SanitizerConfig::full());
        let cfg = LaunchConfig {
            blocks: 1,
            threads_per_block: 32,
            shared_mem_bytes: 0,
        };
        let buf = device.scatter_buffer::<u32>(1, "out");
        unsafe {
            buf.write(0, 1);
            buf.write(0, 2); // double write → one finding
        }
        drop(buf);
        device.launch("racy", cfg, LaunchOrigin::Host, |_, _| {});
        device.launch("clean", cfg, LaunchOrigin::Host, |_, _| {});
        let json = chrome_trace(&device);
        assert_eq!(json.matches("\"sanitizer_findings\":1").count(), 1);
        let events = trace_events(&device);
        let racy = events.iter().find(|e| e.name == "racy").unwrap();
        assert_eq!(racy.args.sanitizer_findings, 1);
        let clean = events.iter().find(|e| e.name == "clean").unwrap();
        assert_eq!(clean.args.sanitizer_findings, 0);
    }

    #[test]
    fn string_escaping() {
        let pool = ThreadPool::new(1);
        let mut device = Device::new(v100(), &pool);
        let cfg = LaunchConfig {
            blocks: 1,
            threads_per_block: 32,
            shared_mem_bytes: 0,
        };
        device.launch("weird \"name\"\n", cfg, LaunchOrigin::Host, |_, _| {});
        let json = chrome_trace(&device);
        assert!(json.contains("weird \\\"name\\\"\\n"));
    }
}
