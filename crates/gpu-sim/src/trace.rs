//! Timeline export in the Chrome trace-event format.
//!
//! `Device::records()` holds the full kernel timeline of a run;
//! [`chrome_trace`] serializes it into the JSON array format understood
//! by `chrome://tracing`, Perfetto (<https://ui.perfetto.dev>), and
//! Speedscope — so a simulated selection run can be inspected with the
//! same tooling people use for real GPU profiles.
//!
//! Each kernel becomes a complete event (`"ph": "X"`) on a per-origin
//! track; launch overheads appear as separate events on an "overhead"
//! track, making the dynamic-parallelism latency savings (§IV-E)
//! directly visible.
//!
//! Serialization is a direct JSON writer (the trace subset only needs
//! objects, arrays, strings, and numbers), so the crate carries no
//! serialization dependency.

use crate::device::{Device, LaunchOrigin};

/// One Chrome trace event (the subset of fields the viewers need).
#[derive(Debug)]
pub struct TraceEvent {
    /// Event name (kernel name, or `"launch"` for overheads).
    pub name: String,
    /// Category: `"kernel"`, `"launch-overhead"`, or `"fault"`.
    pub cat: String,
    /// Phase: `"X"` = complete event with duration.
    pub ph: String,
    /// Start timestamp in microseconds.
    pub ts: f64,
    /// Duration in microseconds.
    pub dur: f64,
    /// Process id (constant; one simulated device).
    pub pid: u32,
    /// Thread id: 0 = host-launched kernels, 1 = device-launched.
    pub tid: u32,
    /// Extra details shown in the viewer's detail pane.
    pub args: TraceArgs,
}

/// Detail payload for one kernel event.
#[derive(Debug)]
pub struct TraceArgs {
    pub blocks: u32,
    pub threads_per_block: u32,
    pub bottleneck: String,
    pub global_bytes: u64,
    pub shared_atomic_warp_ops: u64,
    pub global_atomic_ops: u64,
    /// Injected-fault description, when the kernel launch failed.
    pub fault: Option<String>,
    /// SIMT-sanitizer findings attributed to this kernel (0 when clean
    /// or when the sanitizer was off; only written to JSON when > 0).
    pub sanitizer_findings: u64,
}

/// Build the trace events for everything on the device timeline.
pub fn trace_events(device: &Device) -> Vec<TraceEvent> {
    let mut events = Vec::with_capacity(device.records().len() * 2);
    for rec in device.records() {
        let tid = match rec.origin {
            LaunchOrigin::Host => 0,
            LaunchOrigin::Device => 1,
        };
        let fault = rec.fault.as_ref().map(|f| f.to_string());
        // launch overhead precedes the kernel
        events.push(TraceEvent {
            name: format!("launch {}", rec.name),
            cat: "launch-overhead".to_string(),
            ph: "X".to_string(),
            ts: (rec.start - rec.launch_overhead).as_us(),
            dur: rec.launch_overhead.as_us(),
            pid: 1,
            tid,
            args: TraceArgs {
                blocks: rec.config.blocks,
                threads_per_block: rec.config.threads_per_block,
                bottleneck: "launch".to_string(),
                global_bytes: 0,
                shared_atomic_warp_ops: 0,
                global_atomic_ops: 0,
                fault: None,
                sanitizer_findings: 0,
            },
        });
        events.push(TraceEvent {
            name: rec.name.to_string(),
            cat: if rec.fault.is_some() {
                "fault".to_string()
            } else {
                "kernel".to_string()
            },
            ph: "X".to_string(),
            ts: rec.start.as_us(),
            dur: rec.duration.as_us(),
            pid: 1,
            tid,
            args: TraceArgs {
                blocks: rec.config.blocks,
                threads_per_block: rec.config.threads_per_block,
                bottleneck: rec.breakdown.bottleneck().to_string(),
                global_bytes: rec.cost.total_global_bytes(),
                shared_atomic_warp_ops: rec.cost.shared_atomic_warp_ops,
                global_atomic_ops: rec.cost.global_atomic_ops,
                fault,
                sanitizer_findings: rec
                    .sanitizer
                    .as_ref()
                    .map_or(0, |s| s.findings.len() as u64 + s.truncated),
            },
        });
    }
    events
}

/// Serialize the device timeline as a Chrome trace JSON string.
pub fn chrome_trace(device: &Device) -> String {
    let events = trace_events(device);
    let mut out = String::with_capacity(events.len() * 256 + 2);
    out.push('[');
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_event(&mut out, ev);
    }
    out.push(']');
    out
}

fn write_event(out: &mut String, ev: &TraceEvent) {
    out.push('{');
    write_str_field(out, "name", &ev.name, true);
    write_str_field(out, "cat", &ev.cat, false);
    write_str_field(out, "ph", &ev.ph, false);
    write_num_field(out, "ts", ev.ts, false);
    write_num_field(out, "dur", ev.dur, false);
    write_uint_field(out, "pid", ev.pid as u64, false);
    write_uint_field(out, "tid", ev.tid as u64, false);
    out.push_str(",\"args\":{");
    write_uint_field(out, "blocks", ev.args.blocks as u64, true);
    write_uint_field(
        out,
        "threads_per_block",
        ev.args.threads_per_block as u64,
        false,
    );
    write_str_field(out, "bottleneck", &ev.args.bottleneck, false);
    write_uint_field(out, "global_bytes", ev.args.global_bytes, false);
    write_uint_field(
        out,
        "shared_atomic_warp_ops",
        ev.args.shared_atomic_warp_ops,
        false,
    );
    write_uint_field(out, "global_atomic_ops", ev.args.global_atomic_ops, false);
    if let Some(fault) = &ev.args.fault {
        write_str_field(out, "fault", fault, false);
    }
    if ev.args.sanitizer_findings > 0 {
        write_uint_field(out, "sanitizer_findings", ev.args.sanitizer_findings, false);
    }
    out.push_str("}}");
}

fn write_str_field(out: &mut String, key: &str, value: &str, first: bool) {
    if !first {
        out.push(',');
    }
    escape(key, out);
    out.push(':');
    escape(value, out);
}

fn write_num_field(out: &mut String, key: &str, value: f64, first: bool) {
    if !first {
        out.push(',');
    }
    escape(key, out);
    out.push(':');
    if value.is_finite() {
        out.push_str(&format!("{value}"));
    } else {
        out.push_str("null");
    }
}

fn write_uint_field(out: &mut String, key: &str, value: u64, first: bool) {
    if !first {
        out.push(',');
    }
    escape(key, out);
    out.push(':');
    out.push_str(&value.to_string());
}

fn escape(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::v100;
    use crate::launch::LaunchConfig;
    use hpc_par::ThreadPool;

    fn run_device(pool: &ThreadPool) -> Device<'_> {
        let mut device = Device::new(v100(), pool);
        let cfg = LaunchConfig {
            blocks: 100,
            threads_per_block: 256,
            shared_mem_bytes: 0,
        };
        device.launch("count", cfg, LaunchOrigin::Host, |_, c| {
            c.global_read_bytes += 1000;
        });
        device.launch("filter", cfg, LaunchOrigin::Device, |_, c| {
            c.global_write_bytes += 500;
        });
        device
    }

    #[test]
    fn events_cover_every_kernel_and_overhead() {
        let pool = ThreadPool::new(1);
        let device = run_device(&pool);
        let events = trace_events(&device);
        assert_eq!(events.len(), 4); // 2 kernels + 2 launch overheads
        assert_eq!(events[1].name, "count");
        assert_eq!(events[1].tid, 0, "host track");
        assert_eq!(events[3].name, "filter");
        assert_eq!(events[3].tid, 1, "device track");
        // events are chronologically ordered and non-overlapping
        assert!(events[0].ts + events[0].dur <= events[1].ts + 1e-9);
        assert!(events[1].ts + events[1].dur <= events[2].ts + 1e-9);
    }

    #[test]
    fn chrome_trace_is_valid_json_shape() {
        let pool = ThreadPool::new(1);
        let device = run_device(&pool);
        let json = chrome_trace(&device);
        assert!(json.starts_with('['));
        assert!(json.ends_with(']'));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"name\":\"count\""));
        assert!(json.contains("\"bottleneck\""));
        // balanced braces/brackets (cheap structural check)
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
        // no trailing commas
        assert!(!json.contains(",]") && !json.contains(",}"));
    }

    #[test]
    fn sanitizer_findings_surface_in_trace_args() {
        use crate::sanitizer::SanitizerConfig;
        let pool = ThreadPool::new(1);
        let mut device = Device::new(v100(), &pool);
        device.set_sanitizer(SanitizerConfig::full());
        let cfg = LaunchConfig {
            blocks: 1,
            threads_per_block: 32,
            shared_mem_bytes: 0,
        };
        let buf = device.scatter_buffer::<u32>(1, "out");
        unsafe {
            buf.write(0, 1);
            buf.write(0, 2); // double write → one finding
        }
        drop(buf);
        device.launch("racy", cfg, LaunchOrigin::Host, |_, _| {});
        device.launch("clean", cfg, LaunchOrigin::Host, |_, _| {});
        let json = chrome_trace(&device);
        assert_eq!(json.matches("\"sanitizer_findings\":1").count(), 1);
        let events = trace_events(&device);
        let racy = events.iter().find(|e| e.name == "racy").unwrap();
        assert_eq!(racy.args.sanitizer_findings, 1);
        let clean = events.iter().find(|e| e.name == "clean").unwrap();
        assert_eq!(clean.args.sanitizer_findings, 0);
    }

    #[test]
    fn string_escaping() {
        let pool = ThreadPool::new(1);
        let mut device = Device::new(v100(), &pool);
        let cfg = LaunchConfig {
            blocks: 1,
            threads_per_block: 32,
            shared_mem_bytes: 0,
        };
        device.launch("weird \"name\"\n", cfg, LaunchOrigin::Host, |_, _| {});
        let json = chrome_trace(&device);
        assert!(json.contains("weird \\\"name\\\"\\n"));
    }
}
