//! Warp-level primitives.
//!
//! A *warp* is a group of 32 threads executing in lockstep. The functions
//! here reproduce the semantics of the CUDA warp intrinsics the paper's
//! kernels rely on (`__ballot_sync`, `__shfl_*_sync`) operating on
//! per-lane value slices. Partial warps (fewer than 32 active lanes, at
//! the tail of a data chunk) are supported throughout: lane `i` of the
//! slice is lane `i` of the warp and inactive lanes do not participate.

/// Threads per warp on every NVIDIA architecture to date.
pub const WARP_SIZE: usize = 32;

/// `__ballot_sync`: build a bitmask with bit `i` set iff lane `i`'s
/// predicate is true. Lanes beyond `preds.len()` are inactive (bit 0).
///
/// # Panics
/// Panics if more than 32 lanes are supplied.
pub fn ballot(preds: &[bool]) -> u32 {
    assert!(preds.len() <= WARP_SIZE, "a warp has at most 32 lanes");
    let mut mask = 0u32;
    for (lane, &p) in preds.iter().enumerate() {
        if p {
            mask |= 1 << lane;
        }
    }
    mask
}

/// Mask with one bit set for each active lane of a (possibly partial)
/// warp: `__activemask()` for a tail warp of `lanes` threads.
pub fn active_mask(lanes: usize) -> u32 {
    assert!(lanes <= WARP_SIZE);
    if lanes == WARP_SIZE {
        u32::MAX
    } else {
        (1u32 << lanes) - 1
    }
}

/// `__shfl_sync`: every lane reads the value held by `src_lane`.
pub fn shfl<T: Copy>(values: &[T], src_lane: usize) -> T {
    values[src_lane]
}

/// `__shfl_down_sync`-based butterfly sum: the warp-wide sum every lane
/// would observe after a standard shuffle reduction.
pub fn warp_sum(values: &[u64]) -> u64 {
    values.iter().sum()
}

/// Per-lane equality masks, the result of the paper's Fig. 6 loop:
/// `out[i]` has a bit set for every active lane holding the same value as
/// lane `i` (including lane `i` itself).
///
/// This is the semantics of the Volta `__match_any_sync` intrinsic, which
/// pre-Volta architectures emulate with `tree_height` ballots — see
/// [`match_any_via_ballots`] for the paper's emulation, which this
/// function is tested against.
pub fn match_any(values: &[u32]) -> Vec<u32> {
    assert!(values.len() <= WARP_SIZE);
    let mut out = vec![0u32; values.len()];
    for (i, &vi) in values.iter().enumerate() {
        let mut mask = 0u32;
        for (j, &vj) in values.iter().enumerate() {
            if vi == vj {
                mask |= 1 << j;
            }
        }
        out[i] = mask;
    }
    out
}

/// The paper's Fig. 6 warp-aggregation mask computation, verbatim: for
/// each of the `bits` bit positions of the bucket index, ballot the bit
/// and intersect, keeping exactly the lanes that agree with this lane on
/// every bit.
///
/// Returns the per-lane masks along with the number of ballots executed
/// (`bits`), which the caller charges as warp intrinsics.
pub fn match_any_via_ballots(values: &[u32], bits: u32) -> (Vec<u32>, u64) {
    assert!(values.len() <= WARP_SIZE);
    let lanes = values.len();
    let full = active_mask(lanes);
    let mut masks = vec![full; lanes];
    for b in 0..bits {
        let step: Vec<bool> = values.iter().map(|v| v & (1 << b) != 0).collect();
        let step_mask = ballot(&step);
        for (lane, mask) in masks.iter_mut().enumerate() {
            if step[lane] {
                // keep all threads that have the bit set
                *mask &= step_mask;
            } else {
                // keep all threads that don't have the bit set
                *mask &= !step_mask & full;
            }
        }
    }
    (masks, bits as u64)
}

/// Outcome of analysing one warp's worth of atomic-increment targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WarpAtomicStats {
    /// Number of distinct addresses targeted by the warp.
    pub distinct: u32,
    /// Maximum number of lanes hitting the same address — the hardware
    /// replay/serialization depth for a non-aggregated atomic.
    pub max_multiplicity: u32,
    /// Number of active lanes.
    pub lanes: u32,
}

/// Analyse the per-lane atomic targets of one warp.
///
/// `scratch` must be a zeroed slice at least `num_targets` long; it is
/// returned zeroed (touched entries are reset), so one allocation can be
/// reused across all warps of a block.
pub fn warp_atomic_stats(targets: &[u32], scratch: &mut [u32]) -> WarpAtomicStats {
    assert!(targets.len() <= WARP_SIZE);
    let mut touched = [0u32; WARP_SIZE];
    let mut num_touched = 0usize;
    let mut max_mult = 0u32;
    for &t in targets {
        let slot = &mut scratch[t as usize];
        if *slot == 0 {
            touched[num_touched] = t;
            num_touched += 1;
        }
        *slot += 1;
        max_mult = max_mult.max(*slot);
    }
    for &t in &touched[..num_touched] {
        scratch[t as usize] = 0;
    }
    WarpAtomicStats {
        distinct: num_touched as u32,
        max_multiplicity: max_mult,
        lanes: targets.len() as u32,
    }
}

/// The serialized "replay units" hardware spends on one warp-wide atomic:
/// with warp aggregation a single lane per distinct address issues the
/// op (conflict-free, one unit); without, same-address lanes replay.
pub fn replay_units(stats: WarpAtomicStats, aggregated: bool) -> u64 {
    if stats.lanes == 0 {
        return 0;
    }
    if aggregated {
        1
    } else {
        stats.max_multiplicity as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ballot_basic() {
        assert_eq!(ballot(&[true, false, true]), 0b101);
        assert_eq!(ballot(&[false; 32]), 0);
        assert_eq!(ballot(&[true; 32]), u32::MAX);
        assert_eq!(ballot(&[]), 0);
    }

    #[test]
    #[should_panic(expected = "at most 32")]
    fn ballot_rejects_oversized_warp() {
        ballot(&[true; 33]);
    }

    #[test]
    fn active_mask_partial_and_full() {
        assert_eq!(active_mask(0), 0);
        assert_eq!(active_mask(1), 1);
        assert_eq!(active_mask(5), 0b11111);
        assert_eq!(active_mask(32), u32::MAX);
    }

    #[test]
    fn shfl_reads_source_lane() {
        let vals = [10, 20, 30, 40];
        assert_eq!(shfl(&vals, 2), 30);
    }

    #[test]
    fn match_any_groups_equal_values() {
        let masks = match_any(&[7, 3, 7, 7]);
        assert_eq!(masks[0], 0b1101);
        assert_eq!(masks[1], 0b0010);
        assert_eq!(masks[2], 0b1101);
        assert_eq!(masks[3], 0b1101);
    }

    #[test]
    fn fig6_ballot_emulation_matches_match_any() {
        // Exhaustive-ish: pseudo-random bucket indices in [0, 256).
        let mut state = 0x12345678u64;
        for len in [1usize, 7, 31, 32] {
            for _ in 0..50 {
                let values: Vec<u32> = (0..len)
                    .map(|_| {
                        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                        ((state >> 33) % 256) as u32
                    })
                    .collect();
                let (emulated, ballots) = match_any_via_ballots(&values, 8);
                assert_eq!(ballots, 8);
                assert_eq!(emulated, match_any(&values), "values {values:?}");
            }
        }
    }

    #[test]
    fn fig6_with_fewer_bits_than_needed_conflates_buckets() {
        // Using fewer ballot bits than the index width merges buckets
        // that agree on the low bits — verifying the loop really uses
        // `tree_height` iterations for correctness.
        let values = [0u32, 8];
        let (masks, _) = match_any_via_ballots(&values, 3);
        // 0 and 8 agree on bits 0..3, so with 3 ballots they look equal.
        assert_eq!(masks[0], 0b11);
    }

    #[test]
    fn warp_stats_all_same() {
        let mut scratch = vec![0u32; 256];
        let stats = warp_atomic_stats(&[5; 32], &mut scratch);
        assert_eq!(stats.distinct, 1);
        assert_eq!(stats.max_multiplicity, 32);
        assert!(scratch.iter().all(|&c| c == 0), "scratch must be reset");
    }

    #[test]
    fn warp_stats_all_distinct() {
        let targets: Vec<u32> = (0..32).collect();
        let mut scratch = vec![0u32; 256];
        let stats = warp_atomic_stats(&targets, &mut scratch);
        assert_eq!(stats.distinct, 32);
        assert_eq!(stats.max_multiplicity, 1);
    }

    #[test]
    fn warp_stats_partial_warp() {
        let mut scratch = vec![0u32; 16];
        let stats = warp_atomic_stats(&[3, 3, 9], &mut scratch);
        assert_eq!(stats.distinct, 2);
        assert_eq!(stats.max_multiplicity, 2);
        assert_eq!(stats.lanes, 3);
    }

    #[test]
    fn replay_units_model() {
        let mut scratch = vec![0u32; 64];
        let collide = warp_atomic_stats(&[1; 32], &mut scratch);
        assert_eq!(replay_units(collide, false), 32);
        assert_eq!(replay_units(collide, true), 1);
        let spread: Vec<u32> = (0..32).collect();
        let free = warp_atomic_stats(&spread, &mut scratch);
        assert_eq!(replay_units(free, false), 1);
        assert_eq!(replay_units(free, true), 1);
        let empty = warp_atomic_stats(&[], &mut scratch);
        assert_eq!(replay_units(empty, false), 0);
    }

    #[test]
    fn warp_sum_sums() {
        assert_eq!(warp_sum(&[1, 2, 3]), 6);
        assert_eq!(warp_sum(&[]), 0);
    }
}
