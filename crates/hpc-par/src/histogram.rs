//! Parallel histogram: the CPU analogue of the paper's shared-memory
//! bucket counters.
//!
//! Each pool task accumulates into a private local histogram (no atomics,
//! no collisions — the moral equivalent of per-thread-block shared-memory
//! counters) and the locals are summed into the global result at the end
//! (the moral equivalent of the `reduce` kernel).

use crate::pool::ThreadPool;
use parking_lot::Mutex;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Compute a histogram with `bins` buckets over `0..n` items in parallel.
///
/// `classify(range, local)` must increment `local[b]` once for each item
/// in `range` that falls into bin `b`. The per-task locals are merged and
/// returned. The sum over the result equals the number of classified
/// items.
pub fn parallel_histogram<F>(pool: &ThreadPool, n: usize, bins: usize, classify: F) -> Vec<u64>
where
    F: Fn(Range<usize>, &mut [u64]) + Sync,
{
    let threads = pool.num_threads();
    if n == 0 || bins == 0 {
        return vec![0; bins];
    }
    const MIN_CHUNK: usize = 1 << 13;
    if n < MIN_CHUNK || threads == 1 {
        let mut local = vec![0u64; bins];
        classify(0..n, &mut local);
        return local;
    }
    let chunk = n.div_ceil(threads * 4).max(MIN_CHUNK / 4);
    let num_chunks = n.div_ceil(chunk);
    let next = AtomicUsize::new(0);
    let global = Mutex::new(vec![0u64; bins]);
    {
        let next = &next;
        let classify = &classify;
        let global = &global;
        pool.scope(|s| {
            for _ in 0..threads {
                s.spawn(move || {
                    let mut local = vec![0u64; bins];
                    let mut did_work = false;
                    loop {
                        let c = next.fetch_add(1, Ordering::Relaxed);
                        if c >= num_chunks {
                            break;
                        }
                        did_work = true;
                        let start = c * chunk;
                        let end = (start + chunk).min(n);
                        classify(start..end, &mut local);
                    }
                    if did_work {
                        let mut g = global.lock();
                        for (g, l) in g.iter_mut().zip(local.iter()) {
                            *g += *l;
                        }
                    }
                });
            }
        });
    }
    global.into_inner()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_counts_every_item() {
        let pool = ThreadPool::new(4);
        let n = 100_000;
        let bins = 17;
        let data: Vec<usize> = (0..n).map(|i| (i * 31) % bins).collect();
        let data_ref = &data;
        let hist = parallel_histogram(&pool, n, bins, |range, local| {
            for i in range {
                local[data_ref[i]] += 1;
            }
        });
        assert_eq!(hist.iter().sum::<u64>(), n as u64);
        // Compare with sequential reference.
        let mut expected = vec![0u64; bins];
        for &b in &data {
            expected[b] += 1;
        }
        assert_eq!(hist, expected);
    }

    #[test]
    fn histogram_empty_input() {
        let pool = ThreadPool::new(4);
        let hist = parallel_histogram(&pool, 0, 8, |_, _| panic!("not called"));
        assert_eq!(hist, vec![0; 8]);
    }

    #[test]
    fn histogram_zero_bins() {
        let pool = ThreadPool::new(2);
        let hist = parallel_histogram(&pool, 10, 0, |_range, _local| {});
        assert!(hist.is_empty());
    }

    #[test]
    fn histogram_single_bin() {
        let pool = ThreadPool::new(4);
        let hist = parallel_histogram(&pool, 50_000, 1, |range, local| {
            local[0] += range.len() as u64;
        });
        assert_eq!(hist, vec![50_000]);
    }
}
