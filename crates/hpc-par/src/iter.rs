//! Bulk index-space primitives: parallel for, map-collect, map-reduce.
//!
//! All primitives use *dynamic chunk scheduling*: tasks pull chunk indexes
//! from a shared atomic counter, so uneven per-chunk cost (e.g. the filter
//! kernel touching only some buckets) still balances well.

use crate::min_chunk;
use crate::pool::{SendPtr, ThreadPool};
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Compute how many parallel tasks to use for `n` items with a given
/// minimum chunk size, capped by the pool width.
fn task_count(pool: &ThreadPool, n: usize, min_chunk: usize) -> usize {
    if n == 0 {
        return 0;
    }
    let max_useful = n.div_ceil(min_chunk.max(1));
    max_useful.min(pool.num_threads()).max(1)
}

/// Round `chunk` up to the next multiple of `align` (`align >= 1`).
///
/// Parallel chunk boundaries placed on SIMD-width multiples keep every
/// chunk's vector main loop identical regardless of how many threads
/// split the work, so lane-batched kernels produce thread-count- and
/// lane-width-independent results without per-chunk epilogue drift.
fn align_chunk(chunk: usize, align: usize) -> usize {
    let align = align.max(1);
    chunk.div_ceil(align) * align
}

/// Run `body` over `0..n` in parallel, invoking it once per chunk range.
///
/// `body` receives half-open index ranges that exactly tile `0..n`.
/// Chunks are distributed dynamically. Runs inline on the caller when a
/// single task suffices.
pub fn parallel_for_chunks<F>(pool: &ThreadPool, n: usize, min_chunk: usize, body: F)
where
    F: Fn(Range<usize>) + Sync,
{
    parallel_for_chunks_aligned(pool, n, min_chunk, 1, body)
}

/// [`parallel_for_chunks`] with caller-supplied chunk alignment: every
/// chunk boundary except the final `n` lands on a multiple of `align`.
pub fn parallel_for_chunks_aligned<F>(
    pool: &ThreadPool,
    n: usize,
    min_chunk: usize,
    align: usize,
    body: F,
) where
    F: Fn(Range<usize>) + Sync,
{
    let tasks = task_count(pool, n, min_chunk);
    if tasks <= 1 {
        if n > 0 {
            body(0..n);
        }
        return;
    }
    // Aim for a few chunks per task so dynamic scheduling can balance.
    let target_chunks = tasks * 4;
    let chunk = align_chunk((n.div_ceil(target_chunks)).max(min_chunk.max(1)), align);
    let num_chunks = n.div_ceil(chunk);
    let next = AtomicUsize::new(0);
    let body = &body;
    let next = &next;
    pool.scope(|s| {
        for _ in 0..tasks {
            s.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= num_chunks {
                    break;
                }
                let start = i * chunk;
                let end = (start + chunk).min(n);
                body(start..end);
            });
        }
    });
}

/// Run `body(i)` for every `i in 0..n` in parallel.
pub fn parallel_for<F>(pool: &ThreadPool, n: usize, body: F)
where
    F: Fn(usize) + Sync,
{
    parallel_for_chunks(pool, n, min_chunk(), |range| {
        for i in range {
            body(i);
        }
    });
}

/// Build a `Vec` where `out[i] = f(i)`, computed in parallel.
pub fn parallel_map_collect<T, F>(pool: &ThreadPool, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let mut out: Vec<T> = Vec::with_capacity(n);
    let ptr = SendPtr::new(out.as_mut_ptr());
    parallel_for_chunks(pool, n, min_chunk().min(1024), |range| {
        for i in range {
            // SAFETY: chunk ranges tile 0..n disjointly, so each slot is
            // written exactly once; capacity is n.
            unsafe { ptr.get().add(i).write(f(i)) };
        }
    });
    // SAFETY: all n slots were initialized above.
    unsafe { out.set_len(n) };
    out
}

/// Chunked parallel map-reduce over `0..n`.
///
/// Each task folds the chunks it grabs with `map`, starting from
/// `identity`, and the per-task partials are combined with `combine` on
/// the caller. `combine` must be associative; `identity` must be its
/// neutral element.
pub fn parallel_map_reduce<T, M, C>(
    pool: &ThreadPool,
    n: usize,
    min_chunk: usize,
    identity: T,
    map: M,
    combine: C,
) -> T
where
    T: Send + Sync + Clone,
    M: Fn(Range<usize>, T) -> T + Sync,
    C: Fn(T, T) -> T,
{
    parallel_map_reduce_aligned(pool, n, min_chunk, 1, identity, map, combine)
}

/// [`parallel_map_reduce`] with caller-supplied chunk alignment (see
/// [`parallel_for_chunks_aligned`]).
pub fn parallel_map_reduce_aligned<T, M, C>(
    pool: &ThreadPool,
    n: usize,
    min_chunk: usize,
    align: usize,
    identity: T,
    map: M,
    combine: C,
) -> T
where
    T: Send + Sync + Clone,
    M: Fn(Range<usize>, T) -> T + Sync,
    C: Fn(T, T) -> T,
{
    let tasks = task_count(pool, n, min_chunk);
    if tasks <= 1 {
        if n == 0 {
            return identity;
        }
        return map(0..n, identity);
    }
    let target_chunks = tasks * 4;
    let chunk = align_chunk((n.div_ceil(target_chunks)).max(min_chunk.max(1)), align);
    let num_chunks = n.div_ceil(chunk);
    let next = AtomicUsize::new(0);
    let partials: Vec<parking_lot::Mutex<Option<T>>> =
        (0..tasks).map(|_| parking_lot::Mutex::new(None)).collect();
    {
        let next = &next;
        let map = &map;
        let identity_ref = &identity;
        let partials = &partials;
        pool.scope(|s| {
            for slot in partials.iter() {
                s.spawn(move || {
                    let mut acc = identity_ref.clone();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= num_chunks {
                            break;
                        }
                        let start = i * chunk;
                        let end = (start + chunk).min(n);
                        acc = map(start..end, acc);
                    }
                    *slot.lock() = Some(acc);
                });
            }
        });
    }
    partials
        .into_iter()
        .filter_map(|m| m.into_inner())
        .fold(identity, &combine)
}

/// Apply `body` to disjoint mutable chunks of `data` in parallel.
///
/// `body(chunk_index, chunk)` is invoked once per `chunk_size`-sized piece
/// (the last piece may be shorter).
pub fn parallel_chunks_mut<T, F>(pool: &ThreadPool, data: &mut [T], chunk_size: usize, body: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let n = data.len();
    let chunk_size = chunk_size.max(1);
    let num_chunks = n.div_ceil(chunk_size);
    let ptr = SendPtr::new(data.as_mut_ptr());
    parallel_for_chunks(pool, num_chunks, 1, |chunk_range| {
        for c in chunk_range {
            let start = c * chunk_size;
            let end = (start + chunk_size).min(n);
            // SAFETY: chunks [start, end) are pairwise disjoint and within
            // bounds; each is handed to exactly one invocation.
            let slice =
                unsafe { std::slice::from_raw_parts_mut(ptr.get().add(start), end - start) };
            body(c, slice);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn pool() -> ThreadPool {
        ThreadPool::new(4)
    }

    #[test]
    fn parallel_for_chunks_tiles_range_exactly() {
        let p = pool();
        let n = 100_000;
        let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        parallel_for_chunks(&p, n, 64, |range| {
            for i in range {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_for_chunks_empty_range() {
        let p = pool();
        parallel_for_chunks(&p, 0, 64, |_| panic!("must not be called"));
    }

    #[test]
    fn parallel_for_visits_every_index_once() {
        let p = pool();
        let n = 10_000;
        let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        parallel_for(&p, n, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn map_collect_matches_sequential() {
        let p = pool();
        let out = parallel_map_collect(&p, 50_000, |i| i * 3 + 1);
        let expected: Vec<usize> = (0..50_000).map(|i| i * 3 + 1).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn map_collect_empty() {
        let p = pool();
        let out: Vec<u8> = parallel_map_collect(&p, 0, |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn map_reduce_sums_correctly() {
        let p = pool();
        let n = 1_000_000u64;
        let sum = parallel_map_reduce(
            &p,
            n as usize,
            1024,
            0u64,
            |range, acc| acc + range.map(|i| i as u64).sum::<u64>(),
            |a, b| a + b,
        );
        assert_eq!(sum, n * (n - 1) / 2);
    }

    #[test]
    fn map_reduce_empty_returns_identity() {
        let p = pool();
        let v = parallel_map_reduce(&p, 0, 64, 7u32, |_, acc| acc, |a, _| a);
        assert_eq!(v, 7);
    }

    #[test]
    fn map_reduce_small_runs_inline() {
        let p = pool();
        let v = parallel_map_reduce(
            &p,
            10,
            1024,
            0usize,
            |range, acc| acc + range.len(),
            |a, b| a + b,
        );
        assert_eq!(v, 10);
    }

    #[test]
    fn aligned_chunks_start_on_multiples() {
        let p = pool();
        let n = 100_003;
        let align = 8;
        let starts = parking_lot::Mutex::new(Vec::new());
        parallel_for_chunks_aligned(&p, n, 64, align, |range| {
            starts.lock().push((range.start, range.end));
        });
        let mut ranges = starts.into_inner();
        ranges.sort_unstable();
        // exact tiling
        let mut expect_start = 0;
        for &(s, e) in &ranges {
            assert_eq!(s, expect_start);
            assert!(e > s);
            expect_start = e;
        }
        assert_eq!(expect_start, n);
        // every boundary except the final n is a multiple of align
        for &(s, e) in &ranges {
            assert_eq!(s % align, 0);
            assert!(e % align == 0 || e == n);
        }
    }

    #[test]
    fn aligned_map_reduce_matches_unaligned() {
        let p = pool();
        let n = 999_983usize; // prime, so boundaries would fall anywhere
        let sum_ref: u64 = (0..n as u64).sum();
        for align in [1usize, 8, 32] {
            let sum = parallel_map_reduce_aligned(
                &p,
                n,
                1024,
                align,
                0u64,
                |range, acc| acc + range.map(|i| i as u64).sum::<u64>(),
                |a, b| a + b,
            );
            assert_eq!(sum, sum_ref, "align={align}");
        }
    }

    #[test]
    fn results_identical_across_thread_counts() {
        // Lane-batched chunk processing must give bit-identical results
        // no matter how many threads split the range. Emulate a batched
        // kernel whose per-chunk result depends on where SIMD groups
        // start: with aligned chunking, group boundaries are global.
        let n = 65_537usize;
        let data: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(0x9e3779b9)).collect();
        let batched_sum = |range: Range<usize>, acc: u64| {
            let mut acc = acc;
            let mut i = range.start;
            // SIMD-ish main loop over aligned groups of 8
            while i + 8 <= range.end {
                let mut g = 0u64;
                for j in 0..8 {
                    g = g.rotate_left(3) ^ data[i + j];
                }
                acc = acc.wrapping_add(g);
                i += 8;
            }
            // scalar epilogue
            for &v in &data[i..range.end] {
                acc = acc.wrapping_add(v.rotate_left(1));
            }
            acc
        };
        let mut results = Vec::new();
        for threads in [1usize, 4, 16] {
            let p = ThreadPool::new(threads);
            let v = parallel_map_reduce_aligned(&p, n, 64, 8, 0u64, batched_sum, |a, b| {
                a.wrapping_add(b)
            });
            results.push((threads, v));
        }
        let first = results[0].1;
        for (threads, v) in results {
            assert_eq!(v, first, "threads={threads}");
        }
    }

    #[test]
    fn chunks_mut_writes_disjointly() {
        let p = pool();
        let mut data = vec![0usize; 100_000];
        parallel_chunks_mut(&p, &mut data, 777, |c, chunk| {
            for v in chunk.iter_mut() {
                *v = c + 1;
            }
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i / 777 + 1);
        }
    }

    #[test]
    fn chunks_mut_chunk_larger_than_data() {
        let p = pool();
        let mut data = vec![1u8; 10];
        parallel_chunks_mut(&p, &mut data, 100, |c, chunk| {
            assert_eq!(c, 0);
            assert_eq!(chunk.len(), 10);
            chunk.fill(9);
        });
        assert!(data.iter().all(|&b| b == 9));
    }
}
