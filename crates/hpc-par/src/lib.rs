//! # hpc-par
//!
//! A small, self-contained data-parallel substrate used by the
//! `gpu-selection` workspace: a persistent thread pool with a scoped
//! fork-join API, plus the handful of bulk primitives the selection
//! algorithms need (parallel for, map-reduce, exclusive scan, histograms).
//!
//! The design follows the fork-join model popularized by Rayon, scaled
//! down to exactly what this workspace requires so that the whole
//! workspace builds from first principles:
//!
//! * [`ThreadPool`] — persistent worker threads fed from a shared
//!   injector queue; a process-wide pool is available via
//!   [`ThreadPool::global`].
//! * [`ThreadPool::scope`] — run borrowed closures on the pool and wait
//!   for all of them; panics in tasks propagate to the caller.
//! * [`parallel_for`] / [`parallel_for_chunks`] — dynamic chunk
//!   scheduling over an index range.
//! * [`parallel_map_reduce`] — tree-free chunked reduction.
//! * [`scan::exclusive_scan`] / [`scan::parallel_exclusive_scan`] —
//!   prefix sums (the `reduce` step of the paper's two-pass counter
//!   scheme).
//! * [`histogram::parallel_histogram`] — per-worker local bins merged at
//!   the end (the CPU analogue of the paper's shared-memory bucket
//!   counters).
//!
//! Everything is implemented with `std` + `crossbeam` channels +
//! `parking_lot` locks; there is no work stealing — the workloads here
//! are regular, so dynamic chunk distribution from a shared atomic
//! counter achieves good balance with far less machinery.

pub mod histogram;
pub mod iter;
pub mod pool;
pub mod scan;
pub mod simd;
pub mod sync;

pub use histogram::parallel_histogram;
pub use iter::{
    parallel_for, parallel_for_chunks, parallel_for_chunks_aligned, parallel_map_collect,
    parallel_map_reduce, parallel_map_reduce_aligned,
};
pub use pool::{PoolScope, ThreadPool};
pub use scan::{exclusive_scan, inclusive_scan, parallel_exclusive_scan};
pub use simd::{force_level, simd_level, SimdLevel};
pub use sync::WaitGroup;

/// Default minimum work per chunk before the primitives bother going
/// parallel. Below this, thread coordination costs more than it saves.
pub const DEFAULT_MIN_CHUNK: usize = 4096;

/// Effective minimum chunk size: [`DEFAULT_MIN_CHUNK`] unless the
/// `HPC_PAR_MIN_CHUNK` environment variable overrides it (for tuning
/// the parallel/inline cutover without a rebuild). Read once; later
/// changes to the variable have no effect. Unparsable or zero values
/// fall back to the default.
pub fn min_chunk() -> usize {
    static MIN_CHUNK: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *MIN_CHUNK.get_or_init(|| {
        std::env::var("HPC_PAR_MIN_CHUNK")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(DEFAULT_MIN_CHUNK)
    })
}
