//! A persistent fork-join thread pool with a scoped task API.
//!
//! Workers are spawned once and fed from a shared MPMC channel. Borrowed
//! (non-`'static`) closures are supported through [`ThreadPool::scope`],
//! which guarantees — even on panic — that every spawned task has finished
//! before the scope returns, making the internal lifetime erasure sound.

use crate::sync::WaitGroup;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// The process-wide pool (see [`ThreadPool::global`] /
/// [`ThreadPool::init_global`]).
static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();

/// A fixed-size pool of worker threads.
///
/// The pool is cheap to share (`&ThreadPool`); a process-wide instance
/// sized to the machine is available through [`ThreadPool::global`].
///
/// # Nesting
///
/// Tasks running *on* the pool must not open a nested [`ThreadPool::scope`]
/// on the same pool: if every worker blocks waiting for a nested scope,
/// the pool deadlocks. The bulk primitives in this crate never nest.
pub struct ThreadPool {
    sender: Sender<Job>,
    workers: Vec<JoinHandle<()>>,
    num_threads: usize,
}

impl ThreadPool {
    /// Create a pool with `num_threads` workers (at least 1).
    pub fn new(num_threads: usize) -> Self {
        let num_threads = num_threads.max(1);
        let (sender, receiver): (Sender<Job>, Receiver<Job>) = unbounded();
        let workers = (0..num_threads)
            .map(|i| {
                let receiver = receiver.clone();
                std::thread::Builder::new()
                    .name(format!("hpc-par-worker-{i}"))
                    .spawn(move || {
                        // The channel disconnecting is the shutdown signal.
                        while let Ok(job) = receiver.recv() {
                            job();
                        }
                    })
                    .expect("failed to spawn pool worker")
            })
            .collect();
        Self {
            sender,
            workers,
            num_threads,
        }
    }

    /// The process-wide pool, sized to `available_parallelism` unless
    /// [`ThreadPool::init_global`] fixed a width first.
    pub fn global() -> &'static ThreadPool {
        GLOBAL.get_or_init(|| {
            let n = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4);
            ThreadPool::new(n)
        })
    }

    /// Size the process-wide pool to `num_threads` workers, before its
    /// first use. Returns `false` (leaving the existing pool untouched)
    /// when the global pool was already initialized — worker threads
    /// cannot be re-spawned once handed out. Binaries call this from
    /// their `--threads` flag handling ahead of any pool use.
    pub fn init_global(num_threads: usize) -> bool {
        let mut installed = false;
        GLOBAL.get_or_init(|| {
            installed = true;
            ThreadPool::new(num_threads)
        });
        installed
    }

    /// Number of worker threads.
    pub fn num_threads(&self) -> usize {
        self.num_threads
    }

    /// Run a set of borrowed tasks on the pool and wait for all of them.
    ///
    /// The closure receives a [`PoolScope`] on which tasks can be spawned;
    /// when `scope` returns, every spawned task has completed. If any task
    /// panicked, the first panic is re-raised on the caller after all
    /// tasks have finished (so no borrow outlives the call).
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: FnOnce(&PoolScope<'env, '_>) -> R,
    {
        let wg = WaitGroup::new();
        let panic_slot: Arc<Mutex<Option<Box<dyn Any + Send>>>> = Arc::new(Mutex::new(None));
        let scope = PoolScope {
            pool: self,
            wg: wg.clone(),
            panic_slot: Arc::clone(&panic_slot),
            _marker: std::marker::PhantomData,
        };
        // Run the scope body. Even if it panics we must wait for already
        // spawned tasks before unwinding, otherwise their borrows dangle.
        let body_result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        wg.wait();
        // Task panics take precedence only if the body succeeded; a body
        // panic is re-raised as-is.
        match body_result {
            Ok(value) => {
                if let Some(payload) = panic_slot.lock().take() {
                    resume_unwind(payload);
                }
                value
            }
            Err(payload) => resume_unwind(payload),
        }
    }

    fn submit(&self, job: Job) {
        self.sender.send(job).expect("thread pool has shut down");
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Dropping the sender disconnects the channel; workers drain
        // remaining jobs and exit.
        let (dead_sender, _) = unbounded();
        drop(std::mem::replace(&mut self.sender, dead_sender));
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Handle for spawning borrowed tasks inside [`ThreadPool::scope`].
pub struct PoolScope<'env, 'pool> {
    pool: &'pool ThreadPool,
    wg: WaitGroup,
    panic_slot: Arc<Mutex<Option<Box<dyn Any + Send>>>>,
    _marker: std::marker::PhantomData<&'env mut &'env ()>,
}

impl<'env> PoolScope<'env, '_> {
    /// Spawn a task that may borrow from the enclosing scope.
    ///
    /// Panics inside the task are captured and re-raised when the scope
    /// closes.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'env,
    {
        self.wg.add(1);
        let wg = self.wg.clone();
        let panic_slot = Arc::clone(&self.panic_slot);
        let job: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
            let result = catch_unwind(AssertUnwindSafe(f));
            if let Err(payload) = result {
                let mut slot = panic_slot.lock();
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
            wg.done();
        });
        // SAFETY: `ThreadPool::scope` does not return before `wg.wait()`
        // observes this task's completion (including on panic paths), so
        // the closure and everything it borrows outlive its execution.
        let job: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Box<dyn FnOnce() + Send>>(job)
        };
        self.pool.submit(job);
    }

    /// Number of workers in the underlying pool.
    pub fn num_threads(&self) -> usize {
        self.pool.num_threads()
    }
}

/// A `Send`able raw pointer wrapper for distributing disjoint writes
/// across pool tasks.
///
/// Used by the bulk primitives to let each task write to a distinct
/// region of one output buffer. All uses in this crate guarantee
/// disjointness structurally (each index is written by exactly one task).
pub(crate) struct SendPtr<T>(*mut T);

// Manual impls: the derives would add an unwanted `T: Copy/Clone` bound,
// but the wrapper only holds a pointer.
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

impl<T> SendPtr<T> {
    pub(crate) fn new(ptr: *mut T) -> Self {
        Self(ptr)
    }

    /// Access the raw pointer. Going through a method (rather than a
    /// public field) makes closures capture the whole `SendPtr` — with
    /// edition-2021 disjoint field capture, a direct `.0` access would
    /// capture the bare `*mut T`, which is not `Send`.
    pub(crate) fn get(self) -> *mut T {
        self.0
    }
}

// SAFETY: the wrapper is only used for structurally disjoint writes; see
// each use site.
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn pool_runs_spawned_tasks() {
        let pool = ThreadPool::new(4);
        let counter = AtomicUsize::new(0);
        pool.scope(|s| {
            for _ in 0..100 {
                s.spawn(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn scope_returns_body_value() {
        let pool = ThreadPool::new(2);
        let v = pool.scope(|_| 42);
        assert_eq!(v, 42);
    }

    #[test]
    fn tasks_can_borrow_stack_data() {
        let pool = ThreadPool::new(4);
        let data: Vec<usize> = (0..1000).collect();
        let sum = AtomicUsize::new(0);
        pool.scope(|s| {
            for chunk in data.chunks(100) {
                s.spawn(|| {
                    sum.fetch_add(chunk.iter().sum::<usize>(), Ordering::Relaxed);
                });
            }
        });
        assert_eq!(sum.load(Ordering::Relaxed), 1000 * 999 / 2);
    }

    #[test]
    fn task_panic_propagates_after_completion() {
        let pool = ThreadPool::new(2);
        let completed = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|| panic!("boom"));
                for _ in 0..10 {
                    s.spawn(|| {
                        completed.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }));
        assert!(result.is_err());
        // All non-panicking tasks still ran to completion.
        assert_eq!(completed.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn single_thread_pool_works() {
        let pool = ThreadPool::new(1);
        let counter = AtomicUsize::new(0);
        pool.scope(|s| {
            for _ in 0..10 {
                s.spawn(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn zero_thread_request_clamps_to_one() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.num_threads(), 1);
    }

    #[test]
    fn global_pool_is_singleton() {
        let a = ThreadPool::global() as *const _;
        let b = ThreadPool::global() as *const _;
        assert_eq!(a, b);
    }

    #[test]
    fn pool_drop_joins_workers() {
        let pool = ThreadPool::new(3);
        let counter = Arc::new(AtomicUsize::new(0));
        pool.scope(|s| {
            for _ in 0..5 {
                let c = Arc::clone(&counter);
                s.spawn(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        drop(pool);
        assert_eq!(counter.load(Ordering::Relaxed), 5);
    }
}
