//! Prefix-sum (scan) primitives.
//!
//! The paper's two-pass counter scheme (§IV-G) hinges on an *exclusive
//! scan* over per-block bucket counts: the scanned values become the write
//! offsets each block uses in its second pass. These helpers provide the
//! sequential and parallel versions used throughout the workspace.

use crate::pool::SendPtr;
use crate::ThreadPool as Pool;

/// In-place exclusive prefix sum; returns the total.
///
/// `[3, 1, 4]` becomes `[0, 3, 4]` and `8` is returned.
pub fn exclusive_scan(values: &mut [u64]) -> u64 {
    let mut running = 0u64;
    for v in values.iter_mut() {
        let cur = *v;
        *v = running;
        running += cur;
    }
    running
}

/// In-place inclusive prefix sum; returns the total (== last element).
///
/// `[3, 1, 4]` becomes `[3, 4, 8]`.
pub fn inclusive_scan(values: &mut [u64]) -> u64 {
    let mut running = 0u64;
    for v in values.iter_mut() {
        running += *v;
        *v = running;
    }
    running
}

/// Parallel in-place exclusive prefix sum; returns the total.
///
/// Classic three-phase algorithm: per-chunk local sums, sequential scan of
/// the (short) chunk-sum array, then per-chunk local scan with the chunk
/// offset added. Falls back to the sequential scan for short inputs.
pub fn parallel_exclusive_scan(pool: &Pool, values: &mut [u64]) -> u64 {
    const MIN_PAR: usize = 1 << 15;
    let n = values.len();
    if n < MIN_PAR || pool.num_threads() == 1 {
        return exclusive_scan(values);
    }
    let chunk = n.div_ceil(pool.num_threads() * 4).max(1024);
    let num_chunks = n.div_ceil(chunk);

    // Phase 1: per-chunk sums.
    let mut chunk_sums = vec![0u64; num_chunks];
    {
        let ptr = SendPtr::new(chunk_sums.as_mut_ptr());
        let values_ref: &[u64] = values;
        crate::iter::parallel_for_chunks(pool, num_chunks, 1, |range| {
            for c in range {
                let start = c * chunk;
                let end = (start + chunk).min(n);
                let sum: u64 = values_ref[start..end].iter().sum();
                // SAFETY: each chunk index written exactly once.
                unsafe { ptr.get().add(c).write(sum) };
            }
        });
    }

    // Phase 2: scan the chunk sums (short; sequential).
    let total = exclusive_scan(&mut chunk_sums);

    // Phase 3: local exclusive scan per chunk with chunk offset.
    {
        let ptr = SendPtr::new(values.as_mut_ptr());
        let chunk_sums_ref: &[u64] = &chunk_sums;
        crate::iter::parallel_for_chunks(pool, num_chunks, 1, |range| {
            for c in range {
                let start = c * chunk;
                let end = (start + chunk).min(n);
                let mut running = chunk_sums_ref[c];
                // SAFETY: chunks are disjoint; only this task touches
                // indices [start, end).
                for i in start..end {
                    unsafe {
                        let slot = ptr.get().add(i);
                        let cur = *slot;
                        slot.write(running);
                        running += cur;
                    }
                }
            }
        });
    }
    total
}

/// Find the last index `i` such that `offsets[i] <= rank`, assuming
/// `offsets` is non-decreasing (the output of an exclusive scan).
///
/// This is the paper's `lower_bound(offsets, rank)` step that picks the
/// bucket containing the target rank (Fig. 1, line 13).
pub fn bucket_for_rank(offsets: &[u64], rank: u64) -> usize {
    debug_assert!(!offsets.is_empty());
    // partition_point returns the first index where the predicate fails;
    // subtracting one yields the last bucket whose start is <= rank.
    let idx = offsets.partition_point(|&o| o <= rank);
    idx.saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::ThreadPool;

    #[test]
    fn exclusive_scan_basic() {
        let mut v = vec![3, 1, 4, 1, 5];
        let total = exclusive_scan(&mut v);
        assert_eq!(v, vec![0, 3, 4, 8, 9]);
        assert_eq!(total, 14);
    }

    #[test]
    fn exclusive_scan_empty() {
        let mut v: Vec<u64> = vec![];
        assert_eq!(exclusive_scan(&mut v), 0);
    }

    #[test]
    fn inclusive_scan_basic() {
        let mut v = vec![3, 1, 4];
        let total = inclusive_scan(&mut v);
        assert_eq!(v, vec![3, 4, 8]);
        assert_eq!(total, 8);
    }

    #[test]
    fn parallel_scan_matches_sequential() {
        let pool = ThreadPool::new(4);
        let n = 200_000;
        let original: Vec<u64> = (0..n).map(|i| (i as u64 * 2654435761) % 100).collect();
        let mut seq = original.clone();
        let mut par = original.clone();
        let t_seq = exclusive_scan(&mut seq);
        let t_par = parallel_exclusive_scan(&pool, &mut par);
        assert_eq!(t_seq, t_par);
        assert_eq!(seq, par);
    }

    #[test]
    fn parallel_scan_short_input() {
        let pool = ThreadPool::new(4);
        let mut v = vec![1, 2, 3];
        let total = parallel_exclusive_scan(&pool, &mut v);
        assert_eq!(v, vec![0, 1, 3]);
        assert_eq!(total, 6);
    }

    #[test]
    fn bucket_for_rank_selects_correct_bucket() {
        // counts [2, 3, 5] -> offsets [0, 2, 5]
        let offsets = vec![0u64, 2, 5];
        assert_eq!(bucket_for_rank(&offsets, 0), 0);
        assert_eq!(bucket_for_rank(&offsets, 1), 0);
        assert_eq!(bucket_for_rank(&offsets, 2), 1);
        assert_eq!(bucket_for_rank(&offsets, 4), 1);
        assert_eq!(bucket_for_rank(&offsets, 5), 2);
        assert_eq!(bucket_for_rank(&offsets, 9), 2);
    }

    #[test]
    fn bucket_for_rank_skips_empty_buckets() {
        // counts [0, 4, 0, 6] -> offsets [0, 0, 4, 4]
        let offsets = vec![0u64, 0, 4, 4];
        // rank 0 is in bucket 1 (bucket 0 is empty); ties resolve to the
        // last bucket with offset <= rank, which is the non-empty one.
        assert_eq!(bucket_for_rank(&offsets, 0), 1);
        assert_eq!(bucket_for_rank(&offsets, 3), 1);
        assert_eq!(bucket_for_rank(&offsets, 4), 3);
    }
}
