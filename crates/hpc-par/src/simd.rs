//! Lane-parallel CPU primitives for the selection hot path.
//!
//! The `hpc-par` backend is the workspace's only real-wall-clock path,
//! and its profile is dominated by three scalar per-element loops: the
//! search-tree descent of the count kernel, the oracle compare +
//! compress of the filter kernel, and the pivot compare of the
//! bipartition kernels. This module provides explicit-SIMD versions of
//! exactly those primitives — 8 lanes of `u32` / 4 lanes of `u64` per
//! step via AVX2 (`core::arch::x86_64`), with a portable unrolled-scalar
//! fallback — all operating on **order-preserving unsigned sort keys**
//! so the float/NaN total order is preserved bit-for-bit.
//!
//! ## Dispatch policy
//!
//! The active level is selected **once at startup** (first call to
//! [`simd_level`]) from the `SELECT_SIMD` environment variable:
//!
//! * `off`    — every kernel takes its original per-element path;
//! * `scalar` — the portable unrolled key-based fallback (no intrinsics);
//! * `avx2`   — the AVX2 path (silently demoted to `scalar` when the
//!   CPU lacks AVX2, so the knob is safe on any runner);
//! * `on` / `auto` / unset — best available: `avx2` when detected,
//!   otherwise `scalar`.
//!
//! Benches and bit-identity tests can override the startup choice at
//! runtime with [`force_level`]; because every level computes
//! bit-identical results, a concurrent reader racing a forced switch
//! still gets a correct answer — only its speed differs.
//!
//! ## Key-based descent
//!
//! All primitives compare *unsigned keys*, never raw elements: the
//! caller maps elements through a monotone `element order ⇔ unsigned
//! key order` transform (see `SelectElement::to_lt_key` in the core
//! crate) and the tree nodes through the same transform. Unsigned
//! comparison is implemented on AVX2 by XOR-ing both sides with the
//! sign bit and using the signed compare — the classic bias trick.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// How wide the widest 32-bit-lane path is. Parallel chunk boundaries
/// aligned to this keep every chunk's SIMD main loop identical no
/// matter how many threads split the work.
pub const MAX_LANES: usize = 8;

/// The dispatch level of the lane-parallel primitives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SimdLevel {
    /// Original per-element code paths; no key-based batching at all.
    Off = 0,
    /// Portable unrolled key-based descent (no intrinsics).
    Scalar = 1,
    /// AVX2: 8×u32 / 4×u64 lanes per step.
    Avx2 = 2,
}

impl SimdLevel {
    /// Stable lowercase name (CLI output, metrics, bench JSON).
    pub fn name(self) -> &'static str {
        match self {
            SimdLevel::Off => "off",
            SimdLevel::Scalar => "scalar",
            SimdLevel::Avx2 => "avx2",
        }
    }
}

impl std::fmt::Display for SimdLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Whether this CPU supports the AVX2 dispatch level.
pub fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// The level configured at startup from `SELECT_SIMD` (read once;
/// later changes to the variable have no effect).
pub fn configured_level() -> SimdLevel {
    static CONFIGURED: OnceLock<SimdLevel> = OnceLock::new();
    *CONFIGURED.get_or_init(|| {
        let choice = std::env::var("SELECT_SIMD").unwrap_or_default();
        match choice.trim().to_ascii_lowercase().as_str() {
            "off" => SimdLevel::Off,
            "scalar" => SimdLevel::Scalar,
            "avx2" => {
                if avx2_available() {
                    SimdLevel::Avx2
                } else {
                    SimdLevel::Scalar
                }
            }
            // "on", "auto", unset, or anything unparsable: best available.
            _ => {
                if avx2_available() {
                    SimdLevel::Avx2
                } else {
                    SimdLevel::Scalar
                }
            }
        }
    })
}

/// Runtime override used by interleaved benches and bit-identity tests:
/// `0xff` means "no override", otherwise the `SimdLevel` discriminant.
static FORCED: AtomicU8 = AtomicU8::new(0xff);

/// Override (or clear) the dispatch level at runtime. `Avx2` requests
/// on non-AVX2 hardware are demoted to `Scalar`.
pub fn force_level(level: Option<SimdLevel>) {
    let v = match level {
        None => 0xff,
        Some(SimdLevel::Avx2) if !avx2_available() => SimdLevel::Scalar as u8,
        Some(l) => l as u8,
    };
    FORCED.store(v, Ordering::Relaxed);
}

/// The effective dispatch level: a [`force_level`] override when one is
/// set, the startup [`configured_level`] otherwise.
#[inline]
pub fn simd_level() -> SimdLevel {
    match FORCED.load(Ordering::Relaxed) {
        0 => SimdLevel::Off,
        1 => SimdLevel::Scalar,
        2 => SimdLevel::Avx2,
        _ => configured_level(),
    }
}

// ---------------------------------------------------------------------
// Order-preserving key transforms for floats
// ---------------------------------------------------------------------
//
// The integer element types map to keys with a copy or a sign-bit XOR,
// which LLVM vectorizes on its own; only the float transforms (NaN
// normalization + sign-magnitude flip) carry branches worth lifting
// into explicit SIMD. The scalar definitions below are the reference
// semantics; the AVX2 bodies must (and do — pinned by tests) match
// them bit-for-bit.

/// `f32` sort key: IEEE total order with every NaN collapsed to the
/// maximum key. Must stay bit-identical to `SelectElement::to_sort_key`
/// for `f32` in the core crate.
#[inline]
pub fn sort_key_f32(v: f32) -> u32 {
    if v.is_nan() {
        return u32::MAX;
    }
    let bits = v.to_bits();
    if bits & 0x8000_0000 != 0 {
        !bits
    } else {
        bits ^ 0x8000_0000
    }
}

/// `f32` comparison key: [`sort_key_f32`] with `-0.0` collapsed onto
/// `0.0`, so `a < b` under the kernel comparison (`SelectElement::lt`)
/// iff `lt_key_f32(a) < lt_key_f32(b)` — with no exceptions at all.
#[inline]
pub fn lt_key_f32(v: f32) -> u32 {
    if v == 0.0 {
        0x8000_0000
    } else {
        sort_key_f32(v)
    }
}

/// `f64` sort key (see [`sort_key_f32`]).
#[inline]
pub fn sort_key_f64(v: f64) -> u64 {
    if v.is_nan() {
        return u64::MAX;
    }
    let bits = v.to_bits();
    if bits & 0x8000_0000_0000_0000 != 0 {
        !bits
    } else {
        bits ^ 0x8000_0000_0000_0000
    }
}

/// `f64` comparison key (see [`lt_key_f32`]).
#[inline]
pub fn lt_key_f64(v: f64) -> u64 {
    if v == 0.0 {
        0x8000_0000_0000_0000
    } else {
        sort_key_f64(v)
    }
}

/// `dst[i] = lt_key_f32(src[i])`, SIMD when the level allows.
pub fn lt_keys_f32(src: &[f32], dst: &mut [u32], level: SimdLevel) {
    debug_assert!(dst.len() >= src.len());
    #[cfg(target_arch = "x86_64")]
    if level == SimdLevel::Avx2 {
        unsafe { lt_keys_f32_avx2(src, dst) };
        return;
    }
    let _ = level;
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = lt_key_f32(s);
    }
}

/// `dst[i] = sort_key_f32(src[i])`, SIMD when the level allows.
pub fn sort_keys_f32(src: &[f32], dst: &mut [u32], level: SimdLevel) {
    debug_assert!(dst.len() >= src.len());
    #[cfg(target_arch = "x86_64")]
    if level == SimdLevel::Avx2 {
        unsafe { sort_keys_f32_avx2(src, dst) };
        return;
    }
    let _ = level;
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = sort_key_f32(s);
    }
}

/// `dst[i] = lt_key_f64(src[i])`, SIMD when the level allows.
pub fn lt_keys_f64(src: &[f64], dst: &mut [u64], level: SimdLevel) {
    debug_assert!(dst.len() >= src.len());
    #[cfg(target_arch = "x86_64")]
    if level == SimdLevel::Avx2 {
        unsafe { lt_keys_f64_avx2(src, dst) };
        return;
    }
    let _ = level;
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = lt_key_f64(s);
    }
}

/// `dst[i] = sort_key_f64(src[i])`, SIMD when the level allows.
pub fn sort_keys_f64(src: &[f64], dst: &mut [u64], level: SimdLevel) {
    debug_assert!(dst.len() >= src.len());
    #[cfg(target_arch = "x86_64")]
    if level == SimdLevel::Avx2 {
        unsafe { sort_keys_f64_avx2(src, dst) };
        return;
    }
    let _ = level;
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = sort_key_f64(s);
    }
}

// ---------------------------------------------------------------------
// Branchless search-tree descent
// ---------------------------------------------------------------------

/// Walk every key down an implicit (Eytzinger-layout) splitter tree of
/// `nodes.len() = b - 1` key-transformed nodes and store each key's
/// bucket index. All lanes descend exactly `height = log2(b)` levels
/// with the branch-free update `i = 2i + 2 - (key < node[i])`, so the
/// result is independent of lane width and identical to the scalar
/// reference `SearchTree::lookup`.
pub fn descend_u32(keys: &[u32], nodes: &[u32], height: u32, out: &mut [u32], level: SimdLevel) {
    debug_assert!(out.len() >= keys.len());
    debug_assert_eq!(nodes.len() + 1, 1usize << height);
    #[cfg(target_arch = "x86_64")]
    if level == SimdLevel::Avx2 {
        unsafe { descend_u32_avx2(keys, nodes, height, out) };
        return;
    }
    let _ = level;
    descend_u32_scalar(keys, nodes, height, out);
}

/// 64-bit-key variant of [`descend_u32`] (4 AVX2 lanes per step).
pub fn descend_u64(keys: &[u64], nodes: &[u64], height: u32, out: &mut [u32], level: SimdLevel) {
    debug_assert!(out.len() >= keys.len());
    debug_assert_eq!(nodes.len() + 1, 1usize << height);
    #[cfg(target_arch = "x86_64")]
    if level == SimdLevel::Avx2 {
        unsafe { descend_u64_avx2(keys, nodes, height, out) };
        return;
    }
    let _ = level;
    descend_u64_scalar(keys, nodes, height, out);
}

/// Portable fallback: four independent descents interleaved per
/// iteration so the serially-dependent level walks overlap in the
/// pipeline even without vector registers.
fn descend_u32_scalar(keys: &[u32], nodes: &[u32], height: u32, out: &mut [u32]) {
    let b1 = nodes.len();
    let n = keys.len();
    let mut i = 0;
    while i + 4 <= n {
        let (k0, k1, k2, k3) = (keys[i], keys[i + 1], keys[i + 2], keys[i + 3]);
        let (mut i0, mut i1, mut i2, mut i3) = (0usize, 0usize, 0usize, 0usize);
        for _ in 0..height {
            i0 = 2 * i0 + 2 - (k0 < nodes[i0]) as usize;
            i1 = 2 * i1 + 2 - (k1 < nodes[i1]) as usize;
            i2 = 2 * i2 + 2 - (k2 < nodes[i2]) as usize;
            i3 = 2 * i3 + 2 - (k3 < nodes[i3]) as usize;
        }
        out[i] = (i0 - b1) as u32;
        out[i + 1] = (i1 - b1) as u32;
        out[i + 2] = (i2 - b1) as u32;
        out[i + 3] = (i3 - b1) as u32;
        i += 4;
    }
    for j in i..n {
        let k = keys[j];
        let mut ix = 0usize;
        for _ in 0..height {
            ix = 2 * ix + 2 - (k < nodes[ix]) as usize;
        }
        out[j] = (ix - b1) as u32;
    }
}

fn descend_u64_scalar(keys: &[u64], nodes: &[u64], height: u32, out: &mut [u32]) {
    let b1 = nodes.len();
    let n = keys.len();
    let mut i = 0;
    while i + 4 <= n {
        let (k0, k1, k2, k3) = (keys[i], keys[i + 1], keys[i + 2], keys[i + 3]);
        let (mut i0, mut i1, mut i2, mut i3) = (0usize, 0usize, 0usize, 0usize);
        for _ in 0..height {
            i0 = 2 * i0 + 2 - (k0 < nodes[i0]) as usize;
            i1 = 2 * i1 + 2 - (k1 < nodes[i1]) as usize;
            i2 = 2 * i2 + 2 - (k2 < nodes[i2]) as usize;
            i3 = 2 * i3 + 2 - (k3 < nodes[i3]) as usize;
        }
        out[i] = (i0 - b1) as u32;
        out[i + 1] = (i1 - b1) as u32;
        out[i + 2] = (i2 - b1) as u32;
        out[i + 3] = (i3 - b1) as u32;
        i += 4;
    }
    for j in i..n {
        let k = keys[j];
        let mut ix = 0usize;
        for _ in 0..height {
            ix = 2 * ix + 2 - (k < nodes[ix]) as usize;
        }
        out[j] = (ix - b1) as u32;
    }
}

// ---------------------------------------------------------------------
// Compare-mask primitives (filter / bipartition)
// ---------------------------------------------------------------------

/// Bit `i` of the result is set iff `bytes[i] == target`.
/// `bytes.len()` must be at most 32 (one warp of one-byte oracles).
pub fn eq_mask_u8(bytes: &[u8], target: u8, level: SimdLevel) -> u32 {
    debug_assert!(bytes.len() <= 32);
    #[cfg(target_arch = "x86_64")]
    if level == SimdLevel::Avx2 && bytes.len() == 32 {
        return unsafe { eq_mask_u8_avx2(bytes, target) };
    }
    let _ = level;
    let mut m = 0u32;
    for (i, &b) in bytes.iter().enumerate() {
        m |= ((b == target) as u32) << i;
    }
    m
}

/// `(lt, eq)` bit masks of up to 32 keys against a pivot key: bit `i`
/// of `lt` is set iff `keys[i] < pivot`, of `eq` iff `keys[i] == pivot`.
pub fn pivot_masks_u32(keys: &[u32], pivot: u32, level: SimdLevel) -> (u32, u32) {
    debug_assert!(keys.len() <= 32);
    #[cfg(target_arch = "x86_64")]
    if level == SimdLevel::Avx2 {
        return unsafe { pivot_masks_u32_avx2(keys, pivot) };
    }
    let _ = level;
    let (mut lt, mut eq) = (0u32, 0u32);
    for (i, &k) in keys.iter().enumerate() {
        lt |= ((k < pivot) as u32) << i;
        eq |= ((k == pivot) as u32) << i;
    }
    (lt, eq)
}

/// 64-bit-key variant of [`pivot_masks_u32`].
pub fn pivot_masks_u64(keys: &[u64], pivot: u64, level: SimdLevel) -> (u32, u32) {
    debug_assert!(keys.len() <= 32);
    #[cfg(target_arch = "x86_64")]
    if level == SimdLevel::Avx2 {
        return unsafe { pivot_masks_u64_avx2(keys, pivot) };
    }
    let _ = level;
    let (mut lt, mut eq) = (0u32, 0u32);
    for (i, &k) in keys.iter().enumerate() {
        lt |= ((k < pivot) as u32) << i;
        eq |= ((k == pivot) as u32) << i;
    }
    (lt, eq)
}

// ---------------------------------------------------------------------
// Masked compress (stable left-pack)
// ---------------------------------------------------------------------

/// Byte-permutation table: entry `m` lists, in ascending order, the
/// positions of the set bits of the 8-bit mask `m` (unused tail slots
/// repeat the last position; they are never stored past the popcount).
static COMPRESS8: [[u8; 8]; 256] = build_compress8();

const fn build_compress8() -> [[u8; 8]; 256] {
    let mut table = [[0u8; 8]; 256];
    let mut m = 0usize;
    while m < 256 {
        let mut out = 0usize;
        let mut bit = 0usize;
        while bit < 8 {
            if m & (1 << bit) != 0 {
                table[m][out] = bit as u8;
                out += 1;
            }
            bit += 1;
        }
        // pad with the last valid lane so permuted garbage lanes read
        // in-bounds data
        let pad = if out > 0 { table[m][out - 1] } else { 0 };
        while out < 8 {
            table[m][out] = pad;
            out += 1;
        }
        m += 1;
    }
    table
}

/// Left-pack the elements of `src` whose mask bit is set into the front
/// of `dst`, preserving their relative order (stability). Returns the
/// number packed. `dst.len()` must be at least `src.len()` — the AVX2
/// path stores full vectors and advances by the popcount, so it may
/// scribble up to a vector past the packed prefix (never past
/// `src.len()` slots).
pub fn compress_u32(src: &[u32], mask: u32, dst: &mut [u32], level: SimdLevel) -> usize {
    debug_assert!(src.len() <= 32);
    debug_assert!(dst.len() >= src.len());
    #[cfg(target_arch = "x86_64")]
    if level == SimdLevel::Avx2 && src.len() == 32 {
        return unsafe { compress_u32_avx2(src, mask, dst) };
    }
    let _ = level;
    compress_by_bits_u32(src, mask, dst)
}

/// 64-bit element variant of [`compress_u32`] (nibble-mask groups).
pub fn compress_u64(src: &[u64], mask: u32, dst: &mut [u64], level: SimdLevel) -> usize {
    debug_assert!(src.len() <= 32);
    debug_assert!(dst.len() >= src.len());
    #[cfg(target_arch = "x86_64")]
    if level == SimdLevel::Avx2 && src.len() == 32 {
        return unsafe { compress_u64_avx2(src, mask, dst) };
    }
    let _ = level;
    compress_by_bits_u64(src, mask, dst)
}

fn compress_by_bits_u32(src: &[u32], mask: u32, dst: &mut [u32]) -> usize {
    let mut m = mask & mask_for_len(src.len());
    let mut out = 0;
    while m != 0 {
        let lane = m.trailing_zeros() as usize;
        dst[out] = src[lane];
        out += 1;
        m &= m - 1;
    }
    out
}

fn compress_by_bits_u64(src: &[u64], mask: u32, dst: &mut [u64]) -> usize {
    let mut m = mask & mask_for_len(src.len());
    let mut out = 0;
    while m != 0 {
        let lane = m.trailing_zeros() as usize;
        dst[out] = src[lane];
        out += 1;
        m &= m - 1;
    }
    out
}

/// All-ones mask covering `len` lanes (`len <= 32`).
#[inline]
pub fn mask_for_len(len: usize) -> u32 {
    if len >= 32 {
        u32::MAX
    } else {
        (1u32 << len) - 1
    }
}

// ---------------------------------------------------------------------
// AVX2 bodies
// ---------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::COMPRESS8;
    #[allow(clippy::wildcard_imports)]
    use std::arch::x86_64::*;

    /// # Safety
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn lt_keys_f32_avx2(src: &[f32], dst: &mut [u32]) {
        float_keys_f32(src, dst, true)
    }

    /// # Safety
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn sort_keys_f32_avx2(src: &[f32], dst: &mut [u32]) {
        float_keys_f32(src, dst, false)
    }

    #[target_feature(enable = "avx2")]
    unsafe fn float_keys_f32(src: &[f32], dst: &mut [u32], collapse_zero: bool) {
        let n = src.len();
        let top = _mm256_set1_epi32(i32::MIN);
        let all = _mm256_set1_epi32(-1);
        let mut i = 0;
        while i + 8 <= n {
            let v = _mm256_loadu_ps(src.as_ptr().add(i));
            let bits = _mm256_castps_si256(v);
            // sign-magnitude -> biased unsigned: positive ^= TOP, negative = !bits
            let sign = _mm256_srai_epi32::<31>(bits);
            let flip = _mm256_or_si256(sign, top);
            let mut key = _mm256_xor_si256(bits, flip);
            // every NaN collapses to the maximum key
            let nan = _mm256_castps_si256(_mm256_cmp_ps::<_CMP_UNORD_Q>(v, v));
            key = _mm256_blendv_epi8(key, all, nan);
            if collapse_zero {
                // -0.0 and 0.0 tie under the kernel comparison
                let zero = _mm256_castps_si256(_mm256_cmp_ps::<_CMP_EQ_OQ>(v, _mm256_setzero_ps()));
                key = _mm256_blendv_epi8(key, top, zero);
            }
            _mm256_storeu_si256(dst.as_mut_ptr().add(i) as *mut __m256i, key);
            i += 8;
        }
        for j in i..n {
            dst[j] = if collapse_zero {
                super::lt_key_f32(src[j])
            } else {
                super::sort_key_f32(src[j])
            };
        }
    }

    /// # Safety
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn lt_keys_f64_avx2(src: &[f64], dst: &mut [u64]) {
        float_keys_f64(src, dst, true)
    }

    /// # Safety
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn sort_keys_f64_avx2(src: &[f64], dst: &mut [u64]) {
        float_keys_f64(src, dst, false)
    }

    #[target_feature(enable = "avx2")]
    unsafe fn float_keys_f64(src: &[f64], dst: &mut [u64], collapse_zero: bool) {
        let n = src.len();
        let top = _mm256_set1_epi64x(i64::MIN);
        let all = _mm256_set1_epi64x(-1);
        let zeros = _mm256_setzero_si256();
        let mut i = 0;
        while i + 4 <= n {
            let v = _mm256_loadu_pd(src.as_ptr().add(i));
            let bits = _mm256_castpd_si256(v);
            // AVX2 has no 64-bit arithmetic shift; sign mask via signed cmp
            let sign = _mm256_cmpgt_epi64(zeros, bits);
            let flip = _mm256_or_si256(sign, top);
            let mut key = _mm256_xor_si256(bits, flip);
            let nan = _mm256_castpd_si256(_mm256_cmp_pd::<_CMP_UNORD_Q>(v, v));
            key = _mm256_blendv_epi8(key, all, nan);
            if collapse_zero {
                let zero = _mm256_castpd_si256(_mm256_cmp_pd::<_CMP_EQ_OQ>(v, _mm256_setzero_pd()));
                key = _mm256_blendv_epi8(key, top, zero);
            }
            _mm256_storeu_si256(dst.as_mut_ptr().add(i) as *mut __m256i, key);
            i += 4;
        }
        for j in i..n {
            dst[j] = if collapse_zero {
                super::lt_key_f64(src[j])
            } else {
                super::sort_key_f64(src[j])
            };
        }
    }

    /// One 8-lane descent step bundle: walks 4 independent vectors
    /// (one warp of 32 keys) so the serially-dependent gather chains
    /// overlap.
    ///
    /// # Safety
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn descend_u32_avx2(keys: &[u32], nodes: &[u32], height: u32, out: &mut [u32]) {
        let n = keys.len();
        let base = nodes.as_ptr() as *const i32;
        let top = _mm256_set1_epi32(i32::MIN);
        let two = _mm256_set1_epi32(2);
        let b1 = _mm256_set1_epi32(nodes.len() as i32);
        let mut i = 0;
        while i + 32 <= n {
            let k0 = _mm256_xor_si256(
                _mm256_loadu_si256(keys.as_ptr().add(i) as *const __m256i),
                top,
            );
            let k1 = _mm256_xor_si256(
                _mm256_loadu_si256(keys.as_ptr().add(i + 8) as *const __m256i),
                top,
            );
            let k2 = _mm256_xor_si256(
                _mm256_loadu_si256(keys.as_ptr().add(i + 16) as *const __m256i),
                top,
            );
            let k3 = _mm256_xor_si256(
                _mm256_loadu_si256(keys.as_ptr().add(i + 24) as *const __m256i),
                top,
            );
            let mut i0 = _mm256_setzero_si256();
            let mut i1 = _mm256_setzero_si256();
            let mut i2 = _mm256_setzero_si256();
            let mut i3 = _mm256_setzero_si256();
            for _ in 0..height {
                let n0 = _mm256_xor_si256(_mm256_i32gather_epi32::<4>(base, i0), top);
                let n1 = _mm256_xor_si256(_mm256_i32gather_epi32::<4>(base, i1), top);
                let n2 = _mm256_xor_si256(_mm256_i32gather_epi32::<4>(base, i2), top);
                let n3 = _mm256_xor_si256(_mm256_i32gather_epi32::<4>(base, i3), top);
                // i = 2i + 2 + (-1 if key < node): cmpgt(node, key) is
                // all-ones exactly where the descent goes left.
                i0 = step(i0, _mm256_cmpgt_epi32(n0, k0), two);
                i1 = step(i1, _mm256_cmpgt_epi32(n1, k1), two);
                i2 = step(i2, _mm256_cmpgt_epi32(n2, k2), two);
                i3 = step(i3, _mm256_cmpgt_epi32(n3, k3), two);
            }
            store_buckets(out.as_mut_ptr().add(i), i0, b1);
            store_buckets(out.as_mut_ptr().add(i + 8), i1, b1);
            store_buckets(out.as_mut_ptr().add(i + 16), i2, b1);
            store_buckets(out.as_mut_ptr().add(i + 24), i3, b1);
            i += 32;
        }
        while i + 8 <= n {
            let k = _mm256_xor_si256(
                _mm256_loadu_si256(keys.as_ptr().add(i) as *const __m256i),
                top,
            );
            let mut ix = _mm256_setzero_si256();
            for _ in 0..height {
                let nd = _mm256_xor_si256(_mm256_i32gather_epi32::<4>(base, ix), top);
                ix = step(ix, _mm256_cmpgt_epi32(nd, k), two);
            }
            store_buckets(out.as_mut_ptr().add(i), ix, b1);
            i += 8;
        }
        if i < n {
            super::descend_u32_scalar(&keys[i..], nodes, height, &mut out[i..]);
        }
    }

    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn step(idx: __m256i, left_mask: __m256i, two: __m256i) -> __m256i {
        _mm256_add_epi32(
            _mm256_add_epi32(_mm256_slli_epi32::<1>(idx), two),
            left_mask,
        )
    }

    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn store_buckets(dst: *mut u32, idx: __m256i, b1: __m256i) {
        _mm256_storeu_si256(dst as *mut __m256i, _mm256_sub_epi32(idx, b1));
    }

    /// # Safety
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn descend_u64_avx2(keys: &[u64], nodes: &[u64], height: u32, out: &mut [u32]) {
        let n = keys.len();
        let base = nodes.as_ptr() as *const i64;
        let top = _mm256_set1_epi64x(i64::MIN);
        let two = _mm256_set1_epi64x(2);
        let b1 = nodes.len() as u64;
        let mut i = 0;
        while i + 16 <= n {
            let k0 = _mm256_xor_si256(
                _mm256_loadu_si256(keys.as_ptr().add(i) as *const __m256i),
                top,
            );
            let k1 = _mm256_xor_si256(
                _mm256_loadu_si256(keys.as_ptr().add(i + 4) as *const __m256i),
                top,
            );
            let k2 = _mm256_xor_si256(
                _mm256_loadu_si256(keys.as_ptr().add(i + 8) as *const __m256i),
                top,
            );
            let k3 = _mm256_xor_si256(
                _mm256_loadu_si256(keys.as_ptr().add(i + 12) as *const __m256i),
                top,
            );
            let mut i0 = _mm256_setzero_si256();
            let mut i1 = _mm256_setzero_si256();
            let mut i2 = _mm256_setzero_si256();
            let mut i3 = _mm256_setzero_si256();
            for _ in 0..height {
                let n0 = _mm256_xor_si256(_mm256_i64gather_epi64::<8>(base, i0), top);
                let n1 = _mm256_xor_si256(_mm256_i64gather_epi64::<8>(base, i1), top);
                let n2 = _mm256_xor_si256(_mm256_i64gather_epi64::<8>(base, i2), top);
                let n3 = _mm256_xor_si256(_mm256_i64gather_epi64::<8>(base, i3), top);
                i0 = step64(i0, _mm256_cmpgt_epi64(n0, k0), two);
                i1 = step64(i1, _mm256_cmpgt_epi64(n1, k1), two);
                i2 = step64(i2, _mm256_cmpgt_epi64(n2, k2), two);
                i3 = step64(i3, _mm256_cmpgt_epi64(n3, k3), two);
            }
            store_buckets64(out.as_mut_ptr().add(i), i0, b1);
            store_buckets64(out.as_mut_ptr().add(i + 4), i1, b1);
            store_buckets64(out.as_mut_ptr().add(i + 8), i2, b1);
            store_buckets64(out.as_mut_ptr().add(i + 12), i3, b1);
            i += 16;
        }
        while i + 4 <= n {
            let k = _mm256_xor_si256(
                _mm256_loadu_si256(keys.as_ptr().add(i) as *const __m256i),
                top,
            );
            let mut ix = _mm256_setzero_si256();
            for _ in 0..height {
                let nd = _mm256_xor_si256(_mm256_i64gather_epi64::<8>(base, ix), top);
                ix = step64(ix, _mm256_cmpgt_epi64(nd, k), two);
            }
            store_buckets64(out.as_mut_ptr().add(i), ix, b1);
            i += 4;
        }
        if i < n {
            super::descend_u64_scalar(&keys[i..], nodes, height, &mut out[i..]);
        }
    }

    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn step64(idx: __m256i, left_mask: __m256i, two: __m256i) -> __m256i {
        _mm256_add_epi64(
            _mm256_add_epi64(_mm256_slli_epi64::<1>(idx), two),
            left_mask,
        )
    }

    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn store_buckets64(dst: *mut u32, idx: __m256i, b1: u64) {
        let mut lanes = [0u64; 4];
        _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, idx);
        for (j, &l) in lanes.iter().enumerate() {
            *dst.add(j) = (l - b1) as u32;
        }
    }

    /// # Safety
    /// Requires AVX2; `bytes.len() == 32`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn eq_mask_u8_avx2(bytes: &[u8], target: u8) -> u32 {
        let v = _mm256_loadu_si256(bytes.as_ptr() as *const __m256i);
        let t = _mm256_set1_epi8(target as i8);
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(v, t)) as u32
    }

    /// # Safety
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn pivot_masks_u32_avx2(keys: &[u32], pivot: u32) -> (u32, u32) {
        let n = keys.len();
        let top = _mm256_set1_epi32(i32::MIN);
        let p = _mm256_xor_si256(_mm256_set1_epi32(pivot as i32), top);
        let praw = _mm256_set1_epi32(pivot as i32);
        let (mut lt, mut eq) = (0u32, 0u32);
        let mut i = 0;
        while i + 8 <= n {
            let raw = _mm256_loadu_si256(keys.as_ptr().add(i) as *const __m256i);
            let k = _mm256_xor_si256(raw, top);
            let ltm = _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpgt_epi32(p, k))) as u32;
            let eqm = _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpeq_epi32(raw, praw))) as u32;
            lt |= ltm << i;
            eq |= eqm << i;
            i += 8;
        }
        for (j, &key) in keys.iter().enumerate().skip(i) {
            lt |= ((key < pivot) as u32) << j;
            eq |= ((key == pivot) as u32) << j;
        }
        (lt, eq)
    }

    /// # Safety
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn pivot_masks_u64_avx2(keys: &[u64], pivot: u64) -> (u32, u32) {
        let n = keys.len();
        let top = _mm256_set1_epi64x(i64::MIN);
        let p = _mm256_xor_si256(_mm256_set1_epi64x(pivot as i64), top);
        let praw = _mm256_set1_epi64x(pivot as i64);
        let (mut lt, mut eq) = (0u32, 0u32);
        let mut i = 0;
        while i + 4 <= n {
            let raw = _mm256_loadu_si256(keys.as_ptr().add(i) as *const __m256i);
            let k = _mm256_xor_si256(raw, top);
            let ltm = _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpgt_epi64(p, k))) as u32;
            let eqm = _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpeq_epi64(raw, praw))) as u32;
            lt |= ltm << i;
            eq |= eqm << i;
            i += 4;
        }
        for (j, &key) in keys.iter().enumerate().skip(i) {
            lt |= ((key < pivot) as u32) << j;
            eq |= ((key == pivot) as u32) << j;
        }
        (lt, eq)
    }

    /// # Safety
    /// Requires AVX2; `src.len() == 32`, `dst.len() >= 32`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn compress_u32_avx2(src: &[u32], mask: u32, dst: &mut [u32]) -> usize {
        let mut out = 0usize;
        let dp = dst.as_mut_ptr();
        for g in 0..4 {
            let m = ((mask >> (8 * g)) & 0xff) as usize;
            if m == 0 {
                continue;
            }
            let v = _mm256_loadu_si256(src.as_ptr().add(8 * g) as *const __m256i);
            let idx =
                _mm256_cvtepu8_epi32(_mm_loadl_epi64(COMPRESS8[m].as_ptr() as *const __m128i));
            let packed = _mm256_permutevar8x32_epi32(v, idx);
            // Full-vector store; only the first popcount lanes are
            // meaningful, and the caller guarantees >= src.len() slots.
            _mm256_storeu_si256(dp.add(out) as *mut __m256i, packed);
            out += (m as u32).count_ones() as usize;
        }
        out
    }

    /// # Safety
    /// Requires AVX2; `src.len() == 32`, `dst.len() >= 32`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn compress_u64_avx2(src: &[u64], mask: u32, dst: &mut [u64]) -> usize {
        let mut out = 0usize;
        let dp = dst.as_mut_ptr();
        for g in 0..8 {
            let m = ((mask >> (4 * g)) & 0xf) as usize;
            if m == 0 {
                continue;
            }
            let v = _mm256_loadu_si256(src.as_ptr().add(4 * g) as *const __m256i);
            // expand the nibble's byte-position table to 32-bit lane
            // pairs: u64 lane p occupies 32-bit lanes (2p, 2p+1)
            let t = &COMPRESS8[m];
            let idx = _mm256_setr_epi32(
                2 * t[0] as i32,
                2 * t[0] as i32 + 1,
                2 * t[1] as i32,
                2 * t[1] as i32 + 1,
                2 * t[2] as i32,
                2 * t[2] as i32 + 1,
                2 * t[3] as i32,
                2 * t[3] as i32 + 1,
            );
            let packed = _mm256_permutevar8x32_epi32(v, idx);
            _mm256_storeu_si256(dp.add(out) as *mut __m256i, packed);
            out += (m as u32).count_ones() as usize;
        }
        out
    }
}

#[cfg(target_arch = "x86_64")]
use avx2::{
    compress_u32_avx2, compress_u64_avx2, descend_u32_avx2, descend_u64_avx2, eq_mask_u8_avx2,
    lt_keys_f32_avx2, lt_keys_f64_avx2, pivot_masks_u32_avx2, pivot_masks_u64_avx2,
    sort_keys_f32_avx2, sort_keys_f64_avx2,
};

#[cfg(test)]
mod tests {
    use super::*;

    fn levels() -> Vec<SimdLevel> {
        let mut v = vec![SimdLevel::Scalar];
        if avx2_available() {
            v.push(SimdLevel::Avx2);
        }
        v
    }

    /// Simple deterministic xorshift for test data.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            self.0
        }
    }

    fn reference_descend_u32(keys: &[u32], nodes: &[u32], height: u32) -> Vec<u32> {
        keys.iter()
            .map(|&k| {
                let mut i = 0usize;
                for _ in 0..height {
                    i = 2 * i + if k < nodes[i] { 1 } else { 2 };
                }
                (i - nodes.len()) as u32
            })
            .collect()
    }

    #[test]
    fn env_knob_parses_known_values() {
        // configured_level() is process-wide; only sanity-check names.
        assert_eq!(SimdLevel::Off.name(), "off");
        assert_eq!(SimdLevel::Scalar.name(), "scalar");
        assert_eq!(SimdLevel::Avx2.name(), "avx2");
    }

    #[test]
    fn forced_level_round_trips() {
        force_level(Some(SimdLevel::Scalar));
        assert_eq!(simd_level(), SimdLevel::Scalar);
        force_level(Some(SimdLevel::Off));
        assert_eq!(simd_level(), SimdLevel::Off);
        force_level(None);
        assert_eq!(simd_level(), configured_level());
    }

    #[test]
    fn float_keys_match_scalar_reference() {
        let specials = [
            0.0f32,
            -0.0,
            1.5,
            -1.5,
            f32::MAX,
            f32::MIN,
            f32::NAN,
            -f32::NAN,
            f32::from_bits(0x7f80_0001), // payload NaN
            f32::from_bits(0xffc0_0001), // negative payload NaN
            f32::INFINITY,
            f32::NEG_INFINITY,
            f32::MIN_POSITIVE,
        ];
        let mut rng = Rng(7);
        let mut vals: Vec<f32> = specials.to_vec();
        for _ in 0..1000 {
            vals.push(f32::from_bits(rng.next() as u32));
        }
        for level in levels() {
            let mut lt = vec![0u32; vals.len()];
            let mut sk = vec![0u32; vals.len()];
            lt_keys_f32(&vals, &mut lt, level);
            sort_keys_f32(&vals, &mut sk, level);
            for (i, &v) in vals.iter().enumerate() {
                assert_eq!(lt[i], lt_key_f32(v), "lt key {v:?} at {level}");
                assert_eq!(sk[i], sort_key_f32(v), "sort key {v:?} at {level}");
            }
        }
        // f64 as well
        let mut vals64: Vec<f64> = vec![0.0, -0.0, f64::NAN, -f64::NAN, 1.5e300, -2.5];
        for _ in 0..1000 {
            vals64.push(f64::from_bits(rng.next()));
        }
        for level in levels() {
            let mut lt = vec![0u64; vals64.len()];
            let mut sk = vec![0u64; vals64.len()];
            lt_keys_f64(&vals64, &mut lt, level);
            sort_keys_f64(&vals64, &mut sk, level);
            for (i, &v) in vals64.iter().enumerate() {
                assert_eq!(lt[i], lt_key_f64(v), "lt key {v:?} at {level}");
                assert_eq!(sk[i], sort_key_f64(v), "sort key {v:?} at {level}");
            }
        }
    }

    #[test]
    fn descent_matches_reference_all_levels_and_lengths() {
        let mut rng = Rng(42);
        for height in 1..=8u32 {
            let b = 1usize << height;
            let mut nodes32: Vec<u32> = (0..b - 1).map(|_| rng.next() as u32).collect();
            nodes32.sort_unstable();
            // Eytzinger fill (in-order traversal)
            let mut eyt32 = vec![0u32; b - 1];
            fill_eyt(&mut eyt32, &nodes32, 0, &mut 0);
            for len in [0usize, 1, 3, 7, 8, 15, 31, 32, 33, 64, 100] {
                let keys: Vec<u32> = (0..len).map(|_| rng.next() as u32).collect();
                let expect = reference_descend_u32(&keys, &eyt32, height);
                for level in levels() {
                    let mut out = vec![0u32; len];
                    descend_u32(&keys, &eyt32, height, &mut out, level);
                    assert_eq!(out, expect, "u32 h={height} len={len} {level}");
                }
                // u64 keys with the widened node array
                let eyt64: Vec<u64> = eyt32.iter().map(|&x| x as u64).collect();
                let keys64: Vec<u64> = keys.iter().map(|&x| x as u64).collect();
                for level in levels() {
                    let mut out = vec![0u32; len];
                    descend_u64(&keys64, &eyt64, height, &mut out, level);
                    assert_eq!(out, expect, "u64 h={height} len={len} {level}");
                }
            }
        }
    }

    fn fill_eyt(nodes: &mut [u32], sorted: &[u32], node: usize, next: &mut usize) {
        if node >= nodes.len() {
            return;
        }
        fill_eyt(nodes, sorted, 2 * node + 1, next);
        nodes[node] = sorted[*next];
        *next += 1;
        fill_eyt(nodes, sorted, 2 * node + 2, next);
    }

    #[test]
    fn eq_mask_and_pivot_masks_match_scalar() {
        let mut rng = Rng(9);
        for len in [1usize, 7, 8, 15, 31, 32] {
            let bytes: Vec<u8> = (0..len).map(|_| (rng.next() % 4) as u8).collect();
            let keys32: Vec<u32> = (0..len).map(|_| (rng.next() % 8) as u32).collect();
            let keys64: Vec<u64> = keys32.iter().map(|&k| k as u64).collect();
            let expect_eq = eq_mask_u8(&bytes, 2, SimdLevel::Scalar);
            let expect_p32 = pivot_masks_u32(&keys32, 4, SimdLevel::Scalar);
            let expect_p64 = pivot_masks_u64(&keys64, 4, SimdLevel::Scalar);
            for level in levels() {
                assert_eq!(eq_mask_u8(&bytes, 2, level), expect_eq, "len={len} {level}");
                assert_eq!(pivot_masks_u32(&keys32, 4, level), expect_p32);
                assert_eq!(pivot_masks_u64(&keys64, 4, level), expect_p64);
            }
        }
    }

    #[test]
    fn compress_is_stable_and_exact() {
        let mut rng = Rng(11);
        for len in [1usize, 8, 17, 32] {
            let src32: Vec<u32> = (0..len).map(|_| rng.next() as u32).collect();
            let src64: Vec<u64> = (0..len).map(|_| rng.next()).collect();
            for _ in 0..50 {
                let mask = (rng.next() as u32) & mask_for_len(len);
                let mut expect32 = Vec::new();
                for (i, &v) in src32.iter().enumerate() {
                    if mask & (1 << i) != 0 {
                        expect32.push(v);
                    }
                }
                for level in levels() {
                    let mut dst = vec![0u32; len.max(32)];
                    let cnt = compress_u32(&src32, mask, &mut dst, level);
                    assert_eq!(cnt, expect32.len());
                    assert_eq!(&dst[..cnt], &expect32[..], "u32 len={len} {level}");
                    let mut dst64 = vec![0u64; len.max(32)];
                    let cnt64 = compress_u64(&src64, mask, &mut dst64, level);
                    assert_eq!(cnt64, mask.count_ones() as usize);
                    let expect64: Vec<u64> = (0..len)
                        .filter(|i| mask & (1 << i) != 0)
                        .map(|i| src64[i])
                        .collect();
                    assert_eq!(&dst64[..cnt64], &expect64[..], "u64 len={len} {level}");
                }
            }
        }
    }
}
