//! Lightweight synchronization helpers for the thread pool.

use parking_lot::{Condvar, Mutex};
use std::sync::Arc;

/// A counting latch: tasks are `add`ed before being submitted, call
/// [`WaitGroup::done`] when they finish, and the owner blocks in
/// [`WaitGroup::wait`] until the count returns to zero.
///
/// Unlike a `Barrier`, the number of participants does not need to be
/// known up front and the waiter is not itself a participant.
#[derive(Clone)]
pub struct WaitGroup {
    inner: Arc<Inner>,
}

struct Inner {
    count: Mutex<usize>,
    cv: Condvar,
}

impl WaitGroup {
    /// Create a wait group with an initial count of zero.
    pub fn new() -> Self {
        Self {
            inner: Arc::new(Inner {
                count: Mutex::new(0),
                cv: Condvar::new(),
            }),
        }
    }

    /// Register `n` additional outstanding tasks.
    pub fn add(&self, n: usize) {
        let mut count = self.inner.count.lock();
        *count += n;
    }

    /// Mark one task as finished, waking waiters if the count hits zero.
    pub fn done(&self) {
        let mut count = self.inner.count.lock();
        debug_assert!(*count > 0, "WaitGroup::done called more often than add");
        *count -= 1;
        if *count == 0 {
            self.inner.cv.notify_all();
        }
    }

    /// Block until the outstanding-task count reaches zero.
    pub fn wait(&self) {
        let mut count = self.inner.count.lock();
        while *count != 0 {
            self.inner.cv.wait(&mut count);
        }
    }

    /// Current outstanding count (racy; for diagnostics/tests only).
    pub fn pending(&self) -> usize {
        *self.inner.count.lock()
    }
}

impl Default for WaitGroup {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::thread;

    #[test]
    fn zero_count_wait_returns_immediately() {
        let wg = WaitGroup::new();
        wg.wait();
    }

    #[test]
    fn waits_for_all_participants() {
        let wg = WaitGroup::new();
        let counter = Arc::new(AtomicUsize::new(0));
        let n = 8;
        wg.add(n);
        let handles: Vec<_> = (0..n)
            .map(|_| {
                let wg = wg.clone();
                let counter = Arc::clone(&counter);
                thread::spawn(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                    wg.done();
                })
            })
            .collect();
        wg.wait();
        assert_eq!(counter.load(Ordering::SeqCst), n);
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn add_after_done_cycle_is_reusable() {
        let wg = WaitGroup::new();
        for _ in 0..3 {
            wg.add(1);
            let wg2 = wg.clone();
            thread::spawn(move || wg2.done());
            wg.wait();
            assert_eq!(wg.pending(), 0);
        }
    }
}
