//! Run the same selection on every simulated GPU generation and watch
//! the architecture-specific behaviour the paper is about: the best
//! communication strategy flips between Kepler and Volta.
//!
//! ```text
//! cargo run --release --example gpu_comparison
//! ```

use gpu_selection::gpu_sim::arch::all_architectures;
use gpu_selection::gpu_sim::Device;
use gpu_selection::hpc_par::ThreadPool;
use gpu_selection::prelude::*;
use gpu_selection::sampleselect::recursion::sample_select_on_device;

fn main() {
    let n = 1 << 22;
    let data: Vec<f32> = (0..n)
        .map(|i| (((i as u64).wrapping_mul(0x2545F4914F6CDD1D) >> 33) as f32).sin())
        .collect();
    let rank = n / 3;
    let pool = ThreadPool::new(4);

    println!("SampleSelect on {n} f32 elements, rank {rank}\n");
    println!(
        "{:<13} {:>9} {:>14} {:>14} {:>16}",
        "GPU", "scope", "shared-atomics", "global-atomics", "best strategy"
    );

    for arch in all_architectures() {
        let mut times = Vec::new();
        for scope in [AtomicScope::Shared, AtomicScope::Global] {
            // Compare the raw atomic scopes (no warp aggregation), as in
            // the paper's Fig. 8 left/middle panels.
            let cfg = SampleSelectConfig::default()
                .with_atomic_scope(scope)
                .with_warp_aggregation(false);
            let mut device = Device::new(arch.clone(), &pool);
            let result =
                sample_select_on_device(&mut device, &data, rank, &cfg).expect("selection failed");
            times.push(result.report.total_time);
        }
        let best = if times[0] < times[1] {
            "shared (-s)"
        } else {
            "global (-g)"
        };
        println!(
            "{:<13} {:>9} {:>14} {:>14} {:>16}",
            arch.name,
            format!("{:?}", arch.generation),
            format!("{}", times[0]),
            format!("{}", times[1]),
            best
        );
    }

    println!();
    println!("The strategy flip is the paper's Fig. 8 headline: lock-based shared");
    println!("atomics make -g the winner on Fermi/Kepler; native shared atomics");
    println!("(Maxwell+) make -s the winner on the V100 — by an order of magnitude.");
}
