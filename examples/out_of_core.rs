//! Out-of-core selection: the median of a dataset that never fits in
//! (simulated) device memory at once — including a flaky shard whose
//! first read fails, exercising the driver's per-chunk retry path.
//!
//! The data lives in chunks (think: Parquet row groups, log shards, a
//! host buffer bigger than VRAM). SampleSelect's histogram level is
//! distributive over chunks, so the driver streams the chunks twice —
//! once to count, once to extract one bucket — and only ever
//! materializes ~n/256 elements.
//!
//! ```text
//! cargo run --release --example out_of_core
//! ```

use std::sync::atomic::{AtomicBool, Ordering};

use gpu_selection::gpu_sim::arch::v100;
use gpu_selection::gpu_sim::Device;
use gpu_selection::hpc_par::ThreadPool;
use gpu_selection::prelude::*;
use gpu_selection::sampleselect::streaming::{streaming_select, ChunkError, ChunkSource};

/// A synthetic "shard store": chunks are generated on demand from a
/// seed, the way a real source would read them from disk. Shard 7's
/// first read fails with a transient error, the way a real source
/// sometimes does too.
struct ShardStore {
    shards: usize,
    shard_len: usize,
    flaky_shard_pending: AtomicBool,
}

impl ChunkSource<f32> for ShardStore {
    fn num_chunks(&self) -> usize {
        self.shards
    }

    fn load_chunk(&self, idx: usize) -> Result<Vec<f32>, ChunkError> {
        if idx == 7 && self.flaky_shard_pending.swap(false, Ordering::SeqCst) {
            return Err(ChunkError {
                chunk: idx,
                message: "simulated read timeout".to_string(),
                transient: true,
            });
        }
        // deterministic per-shard generation = re-loadable
        let mut state = 0x9E3779B97F4A7C15u64 ^ (idx as u64).wrapping_mul(0xD1342543DE82EF95);
        Ok((0..self.shard_len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                ((state >> 11) as f64 / (1u64 << 53) as f64) as f32
            })
            .collect())
    }

    fn total_len(&self) -> usize {
        self.shards * self.shard_len
    }
}

fn main() {
    let store = ShardStore {
        shards: 64,
        shard_len: 1 << 16,
        flaky_shard_pending: AtomicBool::new(true),
    };
    let n = store.total_len();
    let rank = n / 2;

    let pool = ThreadPool::new(4);
    let mut device = Device::new(v100(), &pool);
    let cfg = SampleSelectConfig::tuned_for(device.arch());

    let res = match streaming_select(&mut device, &store, rank, &cfg) {
        Ok(res) => res,
        Err(e) => {
            eprintln!("streaming select failed: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "median of {n} elements across {} shards: {}",
        store.shards, res.value
    );
    println!(
        "peak resident set: {} elements ({:.2}% of n) — the extracted bucket",
        res.peak_resident,
        res.peak_resident as f64 / n as f64 * 100.0
    );
    println!(
        "device work: {} kernel launches, {} simulated time",
        res.report.total_launches(),
        res.report.total_time
    );
    println!(
        "per-chunk passes: {} histogram + {} filter",
        res.report.kernel_launches("count_nowrite"),
        res.report.kernel_launches("stream_filter"),
    );
    println!(
        "chunk retries absorbed by the driver: {}",
        res.report.resilience.retries
    );
    for line in &res.report.resilience.log {
        println!("  {line}");
    }

    // Verify against an in-memory run over the concatenated shards.
    let mut all: Vec<f32> = Vec::with_capacity(n);
    for i in 0..store.shards {
        match store.load_chunk(i) {
            Ok(chunk) => all.extend(chunk),
            Err(e) => {
                eprintln!("verification load failed: {e}");
                std::process::exit(1);
            }
        }
    }
    let (_, kth, _) = all.select_nth_unstable_by(rank, |a, b| a.partial_cmp(b).unwrap());
    assert_eq!(res.value, *kth);
    println!("\nverified against in-memory nth_element");
}
