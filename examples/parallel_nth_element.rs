//! The CPU backend as a practical parallel `nth_element`: real threads,
//! real wall-clock — no simulation involved. This is the workspace's
//! genuinely usable selection library for host code.
//!
//! ```text
//! cargo run --release --example parallel_nth_element
//! ```

use gpu_selection::hpc_par::ThreadPool;
use gpu_selection::sampleselect::cpu::{cpu_approx_select, cpu_sample_select, CpuSelectConfig};
use std::time::Instant;

fn main() {
    let n = 8_000_000usize;
    // Latency telemetry: log-normal-ish samples in microseconds.
    let mut state = 0x9E3779B97F4A7C15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let latencies_us: Vec<f64> = (0..n)
        .map(|_| {
            let u1 = next().max(1e-12);
            let u2 = next();
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            (6.0 + 0.8 * z).exp() / 1000.0
        })
        .collect();

    let pool = ThreadPool::global();
    let cfg = CpuSelectConfig::default();

    println!(
        "computing latency percentiles over {n} samples ({} worker threads)\n",
        pool.num_threads()
    );

    for (label, q) in [
        ("p50", 0.50),
        ("p90", 0.90),
        ("p99", 0.99),
        ("p99.9", 0.999),
    ] {
        let rank = ((n as f64) * q) as usize - 1;

        let t0 = Instant::now();
        let (exact, stats) = cpu_sample_select(pool, &latencies_us, rank, &cfg).unwrap();
        let t_exact = t0.elapsed();

        let t0 = Instant::now();
        let (approx, achieved) = cpu_approx_select(pool, &latencies_us, rank, &cfg).unwrap();
        let t_approx = t0.elapsed();

        println!(
            "{label:>6}: exact {exact:>10.3} ms in {:>8.2?} ({} levels) | approx {approx:>10.3} ms in {:>8.2?} (rank off by {})",
            t_exact,
            stats.levels,
            t_approx,
            (achieved as i64 - rank as i64).abs(),
        );
    }

    // Cross-check the p50 against a full sort.
    let rank = n / 2 - 1;
    let t0 = Instant::now();
    let mut sorted = latencies_us.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let t_sort = t0.elapsed();
    let (p50, _) = cpu_sample_select(pool, &latencies_us, rank, &cfg).unwrap();
    assert_eq!(p50, sorted[rank]);
    println!("\nfull sort for comparison: {t_sort:>8.2?} — selection avoids almost all of it");
}
