//! Quickstart: exact and approximate selection in a few lines.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use gpu_selection::prelude::*;

fn main() {
    // Some data: 1M pseudo-random values.
    let n = 1 << 20;
    let data: Vec<f32> = (0..n)
        .map(|i| ((i as u64).wrapping_mul(0x9E3779B97F4A7C15) >> 40) as f32 / 1000.0)
        .collect();
    let k = n / 2; // the median

    // Exact selection with the default configuration (Tesla V100
    // simulation, 256 buckets, shared-memory atomics).
    let cfg = SampleSelectConfig::default();
    let exact = sample_select(&data, k, &cfg).expect("selection failed");
    println!("exact median                = {}", exact.value);
    println!(
        "  levels = {}, kernels launched = {}, simulated time = {} ({:.2e} elements/s)",
        exact.report.levels,
        exact.report.total_launches(),
        exact.report.total_time,
        exact.report.throughput(),
    );

    // Approximate selection: one counting pass, no data movement.
    // Returns a nearby splitter together with its *exact* rank.
    let approx = approx_select(&data, k, &cfg).expect("approx selection failed");
    println!("approximate median          = {}", approx.value);
    println!(
        "  rank {} requested, rank {} delivered ({} off, {:.4}% relative), {:.1}x faster",
        k,
        approx.achieved_rank,
        approx.rank_error,
        approx.relative_error * 100.0,
        exact.report.total_time.as_ns() / approx.report.total_time.as_ns(),
    );

    // The reference QuickSelect for comparison.
    let quick = quick_select(&data, k, &cfg).expect("quickselect failed");
    println!("quickselect median          = {}", quick.value);
    println!(
        "  levels = {} (vs {} for SampleSelect), simulated time = {}",
        quick.report.levels, exact.report.levels, quick.report.total_time,
    );

    // Top-k: the 10 largest values, unordered, plus the threshold.
    let top = top_k_largest(&data, 10, &cfg).expect("top-k failed");
    let mut top10 = top.elements.clone();
    top10.sort_by(|a, b| b.partial_cmp(a).unwrap());
    println!("top-10 threshold            = {}", top.threshold);
    println!("top-10 values               = {top10:?}");

    // Everything agrees with a plain sort:
    let mut sorted = data.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    assert_eq!(exact.value, sorted[k]);
    assert_eq!(quick.value, sorted[k]);
    assert_eq!(top.threshold, sorted[n - 10]);
    println!("\nall results verified against std sort");
}
