//! The paper's future-work extensions, implemented: multi-rank
//! selection ("multiple sequence selection") and a complete sorting
//! algorithm built from the SampleSelect kernels (§VI).
//!
//! ```text
//! cargo run --release --example sorting_and_quantiles
//! ```

use gpu_selection::gpu_sim::arch::v100;
use gpu_selection::gpu_sim::Device;
use gpu_selection::hpc_par::ThreadPool;
use gpu_selection::prelude::*;
use gpu_selection::sampleselect::multiselect::multi_select_on_device;
use gpu_selection::sampleselect::recursion::sample_select_on_device;
use gpu_selection::sampleselect::samplesort::sample_sort_on_device;

fn main() {
    let n = 1 << 21;
    let data: Vec<f32> = (0..n)
        .map(|i| {
            let x = (i as u64).wrapping_mul(0x5DEECE66D).wrapping_add(11);
            ((x >> 16) & 0xFFFF) as f32 / 655.36 // 0..100 "scores"
        })
        .collect();
    let pool = ThreadPool::new(4);
    let mut device = Device::new(v100(), &pool);
    let cfg = SampleSelectConfig::tuned_for(device.arch());

    // --- Multi-rank selection: all deciles in one shot. -------------
    let ranks: Vec<usize> = (1..10).map(|i| i * n / 10).collect();
    let deciles =
        multi_select_on_device(&mut device, &data, &ranks, &cfg).expect("multiselect failed");
    println!(
        "all 9 deciles in one batched run ({} kernel launches, {}):",
        deciles.report.total_launches(),
        deciles.report.total_time
    );
    for (i, v) in deciles.values.iter().enumerate() {
        print!("  p{}0={v:.2}", i + 1);
    }
    println!();

    // Cost comparison: nine separate selections.
    device.reset();
    let mut separate_launches = 0;
    let mut separate_time = gpu_selection::gpu_sim::SimTime::ZERO;
    for &r in &ranks {
        let res = sample_select_on_device(&mut device, &data, r, &cfg).unwrap();
        separate_launches += res.report.total_launches();
        separate_time += res.report.total_time;
    }
    println!(
        "vs nine separate selections: {separate_launches} launches, {separate_time} \
         ({:.1}x slower than the batch)",
        separate_time.as_ns() / deciles.report.total_time.as_ns()
    );

    // --- Full sort via recursive sample partitioning. ----------------
    device.reset();
    let sorted = sample_sort_on_device(&mut device, &data, &cfg).expect("samplesort failed");
    println!(
        "\nsamplesort of {n} elements: {} levels, {} launches, {}",
        sorted.report.levels,
        sorted.report.total_launches(),
        sorted.report.total_time
    );
    assert!(sorted.sorted.windows(2).all(|w| w[0] <= w[1]));

    // Verify everything against std.
    let mut expected = data.clone();
    expected.sort_by(|a, b| a.partial_cmp(b).unwrap());
    assert_eq!(sorted.sorted.len(), expected.len());
    assert!(sorted
        .sorted
        .iter()
        .zip(expected.iter())
        .all(|(a, b)| a == b));
    for (i, &r) in ranks.iter().enumerate() {
        assert_eq!(deciles.values[i], expected[r]);
    }
    println!("sort and deciles verified against std sort");
}
