//! Approximate threshold selection for threshold-ILU factorization —
//! the use case that motivated the paper's approximate variant (§I:
//! "determining thresholds in approximative algorithms"; the authors'
//! ParILUT preconditioner needs exactly this primitive).
//!
//! Scenario: an incomplete-factorization preconditioner must keep only
//! the `nnz_target` largest-magnitude entries of a sparse factor and
//! drop the rest. The drop threshold is the `(nnz - nnz_target)`-th
//! smallest magnitude — but the factorization loop runs this selection
//! every sweep, so *speed matters more than exactness*: a threshold
//! that keeps nnz_target ± 0.1% entries is perfectly fine.
//!
//! ```text
//! cargo run --release --example threshold_ilut
//! ```

use gpu_selection::gpu_sim::arch::v100;
use gpu_selection::gpu_sim::Device;
use gpu_selection::hpc_par::ThreadPool;
use gpu_selection::prelude::*;
use gpu_selection::sampleselect::approx_select_on_device;
use gpu_selection::sampleselect::recursion::sample_select_on_device;

fn main() {
    // Synthesize the magnitude profile of an ILU factor of a 2D Poisson
    // problem: many near-zero fill-in entries, a diagonal band of O(1)
    // entries, exponential decay in between.
    let nnz = 3_000_000usize;
    let mut state = 0x853C49E6748FEA9Bu64;
    let mut uniform = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let magnitudes: Vec<f64> = (0..nnz)
        .map(|_| {
            let u = uniform();
            // log-uniform magnitudes over 12 orders of magnitude
            10f64.powf(-12.0 * u)
        })
        .collect();

    // Keep the 10% largest-magnitude entries.
    let nnz_target = nnz / 10;
    let rank = nnz - nnz_target; // threshold rank among ascending magnitudes

    let pool = ThreadPool::new(4);
    let mut device = Device::new(v100(), &pool);
    // Maximal bucket count: the paper's advice for approximate selection
    // ("it seems advisable to always use the maximal bucket count").
    let cfg = SampleSelectConfig::tuned_for(device.arch()).with_buckets(1024);

    let approx = approx_select_on_device(&mut device, &magnitudes, rank, &cfg)
        .expect("threshold selection failed");
    let kept = nnz as u64 - approx.achieved_rank;
    println!("ILUT drop-threshold selection over {nnz} factor entries");
    println!("  target: keep {nnz_target} entries (drop below rank {rank})");
    println!("  approximate threshold: {:.3e}", approx.value);
    println!(
        "  entries kept: {kept} (off by {} = {:.4}% of nnz)",
        (kept as i64 - nnz_target as i64).abs(),
        approx.relative_error * 100.0
    );
    println!("  simulated time: {}", approx.report.total_time);

    // Compare with the exact threshold.
    device.reset();
    let exact = sample_select_on_device(
        &mut device,
        &magnitudes,
        rank,
        &cfg.clone().with_buckets(256),
    )
    .expect("exact selection failed");
    println!("\n  exact threshold:       {:.3e}", exact.value);
    println!("  exact simulated time:  {}", exact.report.total_time);
    println!(
        "  approximate saves {:.0}% of the runtime per factorization sweep",
        (1.0 - approx.report.total_time.as_ns() / exact.report.total_time.as_ns()) * 100.0
    );

    // Sanity: the approximate threshold keeps a nearly-correct count.
    let kept_check = magnitudes.iter().filter(|&&m| m >= approx.value).count() as u64;
    assert_eq!(kept_check, kept);
    assert!(
        approx.relative_error < 0.01,
        "rank error must stay below 1%"
    );
    println!("\nverified: kept-entry count matches the reported rank exactly");
}
