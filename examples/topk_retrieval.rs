//! Top-k selection for information retrieval — one of the paper's
//! motivating applications (§I: "top-k selection in information
//! retrieval").
//!
//! Scenario: a search engine scored 4M candidate documents against a
//! query; we want the 100 best *documents* (not just the score
//! threshold). The fused top-k filter of §IV-I extracts them in ~one
//! pass, and the [`Pair`] element type carries each document id through
//! the kernels alongside its score.
//!
//! ```text
//! cargo run --release --example topk_retrieval
//! ```

use gpu_selection::gpu_sim::arch::v100;
use gpu_selection::gpu_sim::Device;
use gpu_selection::hpc_par::ThreadPool;
use gpu_selection::prelude::*;
use gpu_selection::sampleselect::kv::Pair;
use gpu_selection::sampleselect::topk::top_k_largest_on_device;

fn main() {
    // Synthesize BM25-ish scores: a long tail of mediocre matches and a
    // few excellent ones, each tagged with its document id.
    let n = 1 << 22;
    let mut state = 0x243F6A8885A308D3u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let corpus: Vec<Pair<f32, u32>> = (0..n)
        .map(|doc_id| {
            let u = next();
            let score = (-(1.0 - u).ln() * 2.5) as f32; // exponential-ish
            Pair::new(score, doc_id as u32)
        })
        .collect();

    let k = 100;
    let pool = ThreadPool::new(4);
    let mut device = Device::new(v100(), &pool);
    let cfg = SampleSelectConfig::tuned_for(device.arch());

    // One fused top-k run returns the winning (score, doc_id) pairs.
    let topk = top_k_largest_on_device(&mut device, &corpus, k, &cfg).expect("top-k failed");

    println!(
        "selected top-{k} of {n} scored documents in {} simulated time ({} kernel launches)",
        topk.report.total_time,
        topk.report.total_launches()
    );
    println!("score threshold: {:.4}\n", topk.threshold.key);

    let mut winners = topk.elements.clone();
    winners.sort_by(|a, b| b.key.partial_cmp(&a.key).unwrap());
    println!("rank  doc_id    score");
    for (i, hit) in winners.iter().take(10).enumerate() {
        println!("{:>4}  {:>7}  {:.4}", i + 1, hit.value, hit.key);
    }
    println!("...   ({} results total)", winners.len());

    // Validate against a full sort.
    let mut sorted: Vec<f32> = corpus.iter().map(|p| p.key).collect();
    sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
    assert_eq!(topk.threshold.key, sorted[k - 1]);
    assert_eq!(winners.len(), k);
    for hit in &winners {
        assert_eq!(corpus[hit.value as usize].key, hit.key, "payload resolves");
        assert!(hit.key >= topk.threshold.key);
    }
    println!("\nverified against full sort: threshold, cardinality, and payloads match");
}
