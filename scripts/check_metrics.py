#!/usr/bin/env python3
"""Validate observability artifacts produced by `selectcli`.

Usage:
    python3 scripts/check_metrics.py METRICS.json [TRACE.json] [SCHEMA]

* METRICS.json — written by `selectcli --metrics`; must parse as JSON,
  carry the `select-metrics-v1` schema tag, and expose exactly the
  metric names pinned in `bench/metrics_schema.txt` (default SCHEMA).
  Any drift — a renamed, added, or removed metric — fails the check so
  dashboards never break silently.
* TRACE.json  — optional; written by `selectcli --trace`. Must parse as
  JSON, every event must carry the Chrome trace-event required fields,
  and at least one Perfetto counter event (`"ph": "C"`) must be present
  (the session always samples bucket occupancy).

Exit status: 0 on success, 1 on any validation failure.
"""

import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def fail(msg: str) -> None:
    print(f"FAIL  {msg}")
    sys.exit(1)


def load_schema(path: Path) -> list[str]:
    names = []
    for line in path.read_text().splitlines():
        line = line.strip()
        if line and not line.startswith("#"):
            names.append(line)
    return names


def check_metrics(metrics_path: Path, schema_path: Path) -> None:
    try:
        doc = json.loads(metrics_path.read_text())
    except json.JSONDecodeError as e:
        fail(f"{metrics_path}: not valid JSON: {e}")
    if doc.get("schema") != "select-metrics-v1":
        fail(f"{metrics_path}: schema tag {doc.get('schema')!r} != 'select-metrics-v1'")

    exported = (
        list(doc.get("counters", {}))
        + list(doc.get("gauges", {}))
        + list(doc.get("histograms", {}))
    )
    pinned = load_schema(schema_path)
    if exported != pinned:
        missing = [n for n in pinned if n not in exported]
        extra = [n for n in exported if n not in pinned]
        detail = []
        if missing:
            detail.append(f"missing {missing}")
        if extra:
            detail.append(f"unpinned {extra}")
        if not detail:
            detail.append("order changed")
        fail(
            f"{metrics_path}: metric names drifted from {schema_path.name}: "
            + "; ".join(detail)
        )

    for name, v in doc["counters"].items():
        if not isinstance(v, int) or v < 0:
            fail(f"{metrics_path}: counter {name} = {v!r} is not a non-negative int")
    for name, h in doc["histograms"].items():
        if len(h["buckets"]) != len(h["bounds"]) + 1:
            fail(f"{metrics_path}: histogram {name} bucket/bound arity mismatch")
        if sum(h["buckets"]) != h["count"]:
            fail(f"{metrics_path}: histogram {name} bucket sum != count")
    print(f"OK    {metrics_path}: {len(pinned)} metrics match {schema_path.name}")


def check_trace(trace_path: Path) -> None:
    try:
        events = json.loads(trace_path.read_text())
    except json.JSONDecodeError as e:
        fail(f"{trace_path}: not valid JSON: {e}")
    if not isinstance(events, list) or not events:
        fail(f"{trace_path}: trace must be a non-empty JSON array")

    counters = 0
    for e in events:
        for field in ("name", "ph", "ts", "pid"):
            if field not in e:
                fail(f"{trace_path}: event missing {field!r}: {e}")
        if e["ph"] == "X":
            if "dur" not in e or "args" not in e:
                fail(f"{trace_path}: complete event missing dur/args: {e['name']}")
        elif e["ph"] == "C":
            counters += 1
            if "value" not in e.get("args", {}):
                fail(f"{trace_path}: counter event without args.value: {e['name']}")
        else:
            fail(f"{trace_path}: unexpected phase {e['ph']!r}")
    if counters == 0:
        fail(f"{trace_path}: no Perfetto counter events ('ph':'C') present")
    print(f"OK    {trace_path}: {len(events)} events, {counters} counter samples")


def main() -> None:
    if len(sys.argv) < 2:
        print(__doc__)
        sys.exit(2)
    metrics = Path(sys.argv[1])
    trace = Path(sys.argv[2]) if len(sys.argv) > 2 else None
    schema = Path(sys.argv[3]) if len(sys.argv) > 3 else REPO / "bench" / "metrics_schema.txt"
    check_metrics(metrics, schema)
    if trace is not None:
        check_trace(trace)
    print("check_metrics: OK")


if __name__ == "__main__":
    main()
