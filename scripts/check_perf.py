#!/usr/bin/env python3
"""Compare a perfsmoke run against the committed hot-path baseline.

Usage:
    python3 scripts/check_perf.py [CURRENT] [BASELINE]
    python3 scripts/check_perf.py --planner [CURRENT]
    python3 scripts/check_perf.py --simd [CURRENT]
    python3 scripts/check_perf.py --approx-topk [CURRENT]

CURRENT defaults to ./BENCH_hotpath.json (written by the `perfsmoke`
bench binary) and BASELINE to bench/baselines/hotpath.json.

With ``--planner``, CURRENT defaults to ./BENCH_planner.json (written
by the `plannersweep` bench binary) and the check gates the adaptive
planner instead: in every grid cell, `--algo auto` must finish within
15% of the best *fixed* backend's simulated time. The sweep is
deterministic, so any excess regret is a planner (cost model) bug, not
noise.

With ``--approx-topk``, CURRENT defaults to ./BENCH_approx_topk.json
(written by the `recallsweep` bench binary). Two hard gates, both
deterministic (seeded data, simulated time): every cell's measured and
model-expected recall must meet the cell's target, and in every
large-k cell the approximate kernel must beat the exact fused top-k's
simulated time. Small-k cells that fail to beat exact only WARN — the
approximation is not expected to pay for its partition pass there.

With ``--simd``, CURRENT defaults to ./BENCH_simd.json (written by the
`simdsweep` bench binary). The deterministic properties hard-fail:
every leg must be bit-identical across dispatch levels, and the full
pipeline must produce the same answer *and* the same simulated time at
every level (SIMD is a wall-clock optimization only). Wall-clock
speedups are advisory — the count and filter legs are expected to
reach 4x over the unvectorized code shape, but shortfalls only WARN
since wall time is noisy on shared runners.

Gating policy
-------------
The simulator is deterministic, so three of the recorded metrics are
bit-stable for a fixed seed / thread count / rep count:

* ``sim_ns``       — simulated GPU time,
* ``bytes_moved``  — global-memory traffic of every kernel,
* ``allocs``       — heap allocations while the query ran.

A >15% regression in any of those FAILS the check (exit 1): more
simulated time means the kernel schedule got worse, more bytes means a
kernel re-reads data it should not, and more allocations means the
zero-allocation hot path is eroding.

Wall-clock time is noisy on shared CI runners (we have measured >40%
run-to-run swings for identical binaries), so ``wall_mean_s``
regressions only WARN. The deterministic metrics are the contract;
wall time is the courtesy readout.

Improvements beyond 15% also WARN, as a nudge to refresh the baseline
so the ratchet keeps holding.
"""

import json
import sys

THRESHOLD = 0.15
HARD_METRICS = ("sim_ns", "bytes_moved", "allocs")
SOFT_METRICS = ("wall_mean_s",)

SHAPES = {
    "fig8": ("fresh", "pooled"),
    "fig9": ("fresh", "pooled"),
    "streaming": ("prefetch_off", "prefetch_on"),
}


def load(path):
    with open(path) as fh:
        return json.load(fh)


def check_planner(argv):
    current_path = argv[2] if len(argv) > 2 else "BENCH_planner.json"
    current = load(current_path)

    failures = []
    if current.get("schema") != "plannersweep-v1":
        failures.append(f"unexpected schema {current.get('schema')!r}")

    cells = current.get("cells", [])
    if not cells:
        failures.append("no cells in sweep output")
    for cell in cells:
        tag = f"{cell.get('dist')}/{cell.get('type')}"
        auto = cell.get("auto_us")
        best = cell.get("best_us")
        if auto is None or best is None or best <= 0:
            failures.append(f"{tag}: missing auto_us/best_us")
            continue
        ratio = auto / best
        line = (
            f"{tag}: chose {cell.get('chosen')}, auto {auto:.1f}us vs "
            f"best fixed {best:.1f}us ({(ratio - 1) * 100:+.1f}%)"
        )
        if ratio > 1 + THRESHOLD:
            failures.append(line)
        else:
            print(f"OK    {line}")

    for f in failures:
        print(f"FAIL  {f}")
    if failures:
        print(f"\ncheck_perf --planner: {len(failures)} cell(s) over budget in {current_path}")
        return 1
    print(f"check_perf --planner: OK, {len(cells)} cell(s) within {THRESHOLD:.0%} of best fixed backend")
    return 0


def check_approx_topk(argv):
    current_path = argv[2] if len(argv) > 2 else "BENCH_approx_topk.json"
    current = load(current_path)

    failures = []
    warnings = []
    if current.get("schema") != "recallsweep-v1":
        failures.append(f"unexpected schema {current.get('schema')!r}")

    cells = current.get("cells", [])
    if not cells:
        failures.append("no cells in sweep output")
    for cell in cells:
        tag = f"{cell.get('dist')}/{cell.get('k_label')}/target={cell.get('target')}"
        target = cell.get("target")
        expected = cell.get("expected_recall")
        measured = cell.get("measured_recall")
        approx = cell.get("approx_us")
        exact = cell.get("exact_us")
        if None in (target, expected, measured, approx, exact) or approx <= 0:
            failures.append(f"{tag}: missing or degenerate fields")
            continue
        if expected < target:
            failures.append(
                f"{tag}: planner promised recall {expected:.4f} below target"
            )
        if measured < target:
            failures.append(
                f"{tag}: measured recall {measured:.4f} below target"
            )
        speedup = exact / approx
        line = (
            f"{tag}: measured {measured:.4f} (expected {expected:.4f}), "
            f"approx {approx:.1f}us vs exact {exact:.1f}us ({speedup:.2f}x)"
        )
        if speedup < 1.0 and cell.get("k_label") == "large-k":
            failures.append(f"{line} — approximation lost to exact at large k")
        elif speedup < 1.0:
            warnings.append(f"{line} [small-k: warn only]")
        else:
            print(f"OK    {line}")

    for w in warnings:
        print(f"WARN  {w}")
    for f in failures:
        print(f"FAIL  {f}")
    if failures:
        print(
            f"\ncheck_perf --approx-topk: {len(failures)} failure(s) in {current_path}"
        )
        return 1
    print(
        f"check_perf --approx-topk: OK, {len(cells)} cell(s) met recall targets "
        f"({len(warnings)} warning(s))"
    )
    return 0


# Legs the SIMD sweep must show this wall speedup on (warn-only).
SIMD_TARGET_SPEEDUP = 4.0
SIMD_TARGET_LEGS = ("count", "filter")
SIMD_ALL_LEGS = ("count", "filter", "bipartition", "digitcount")


def check_simd(argv):
    current_path = argv[2] if len(argv) > 2 else "BENCH_simd.json"
    current = load(current_path)

    failures = []
    warnings = []
    if current.get("schema") != "simdsweep-v1":
        failures.append(f"unexpected schema {current.get('schema')!r}")

    legs = current.get("legs", {})
    for name in SIMD_ALL_LEGS:
        leg = legs.get(name)
        if leg is None:
            failures.append(f"legs.{name}: missing from sweep output")
            continue
        if leg.get("identical") is not True:
            failures.append(f"legs.{name}: dispatch levels are not bit-identical")
        speedup = leg.get("speedup")
        if speedup is None:
            failures.append(f"legs.{name}: missing speedup")
            continue
        line = f"legs.{name}: {current.get('widest')} vs off wall speedup {speedup:.2f}x"
        if name in SIMD_TARGET_LEGS and speedup < SIMD_TARGET_SPEEDUP:
            warnings.append(
                f"{line} < {SIMD_TARGET_SPEEDUP:.0f}x target [wall-clock: warn only]"
            )
        else:
            print(f"OK    {line}")

    pipe = current.get("pipeline")
    if pipe is None:
        failures.append("pipeline: missing from sweep output")
    else:
        if pipe.get("identical") is not True:
            failures.append("pipeline: off vs simd answer/sim-time mismatch")
        elif pipe.get("sim_ns_off") != pipe.get("sim_ns_simd"):
            failures.append(
                f"pipeline: sim_ns drifted under SIMD "
                f"({pipe.get('sim_ns_off')} -> {pipe.get('sim_ns_simd')})"
            )
        else:
            print(f"OK    pipeline: bit-identical, sim_ns {pipe.get('sim_ns_off')}")

    for w in warnings:
        print(f"WARN  {w}")
    for f in failures:
        print(f"FAIL  {f}")
    if failures:
        print(f"\ncheck_perf --simd: {len(failures)} failure(s) in {current_path}")
        return 1
    print(f"check_perf --simd: OK ({len(warnings)} warning(s))")
    return 0


def main(argv):
    if len(argv) > 1 and argv[1] == "--planner":
        return check_planner(argv)
    if len(argv) > 1 and argv[1] == "--simd":
        return check_simd(argv)
    if len(argv) > 1 and argv[1] == "--approx-topk":
        return check_approx_topk(argv)
    current_path = argv[1] if len(argv) > 1 else "BENCH_hotpath.json"
    baseline_path = argv[2] if len(argv) > 2 else "bench/baselines/hotpath.json"
    current = load(current_path)
    baseline = load(baseline_path)

    failures = []
    warnings = []

    if current.get("schema") != baseline.get("schema"):
        failures.append(
            f"schema mismatch: current {current.get('schema')!r} "
            f"vs baseline {baseline.get('schema')!r}"
        )

    for shape, legs in SHAPES.items():
        cur_shape = current.get(shape)
        base_shape = baseline.get(shape)
        if cur_shape is None or base_shape is None:
            failures.append(f"{shape}: missing from current or baseline")
            continue
        if cur_shape.get("n") != base_shape.get("n"):
            failures.append(
                f"{shape}: incomparable problem sizes "
                f"(current n={cur_shape.get('n')}, baseline n={base_shape.get('n')}; "
                f"run perfsmoke with the baseline's mode)"
            )
            continue
        for leg in legs:
            cur_leg = cur_shape.get(leg, {})
            base_leg = base_shape.get(leg, {})
            for metric in HARD_METRICS + SOFT_METRICS:
                cur = cur_leg.get(metric)
                base = base_leg.get(metric)
                if cur is None or base is None:
                    failures.append(f"{shape}.{leg}.{metric}: missing value")
                    continue
                if base == 0:
                    continue
                ratio = cur / base
                tag = f"{shape}.{leg}.{metric}"
                line = f"{tag}: {base} -> {cur} ({(ratio - 1) * 100:+.1f}%)"
                if ratio > 1 + THRESHOLD:
                    if metric in HARD_METRICS:
                        failures.append(line)
                    else:
                        warnings.append(f"{line} [wall-clock: warn only]")
                elif ratio < 1 - THRESHOLD:
                    warnings.append(f"{line} [improvement: consider refreshing baseline]")

    for w in warnings:
        print(f"WARN  {w}")
    for f in failures:
        print(f"FAIL  {f}")
    if failures:
        print(f"\ncheck_perf: {len(failures)} regression(s) vs {baseline_path}")
        return 1
    print(f"check_perf: OK vs {baseline_path} ({len(warnings)} warning(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
