#!/usr/bin/env python3
"""Plot the paper's figures from the harness CSV output.

Usage:
    cargo run --release -p select-bench --bin fig8  -- --csv > fig8.csv
    cargo run --release -p select-bench --bin fig10 -- --csv > fig10.csv
    python3 scripts/plot_figures.py fig8 fig8.csv  fig8.png
    python3 scripts/plot_figures.py fig10 fig10.csv fig10.png

Requires matplotlib only for rendering; `--parse-only` validates the CSV
without it (used by the repository's self-checks).
"""

import csv
import sys
from collections import defaultdict


def read_rows(path):
    with open(path, newline="") as f:
        # the fig8 CSV contains two tables separated by a blank line;
        # read only the first contiguous table
        rows = []
        reader = csv.reader(f)
        header = next(reader)
        for row in reader:
            if not row or len(row) != len(header):
                break
            rows.append(dict(zip(header, row)))
    return header, rows


def series_fig8(rows):
    """Group fig8 throughput rows into (gpu, type, variant) -> [(n, tp)]."""
    series = defaultdict(list)
    for r in rows:
        key = (r["gpu"], r["type"], r["variant"])
        series[key].append((int(r["n"]), float(r["throughput(el/s)"])))
    for pts in series.values():
        pts.sort()
    return series


def series_fig10(rows):
    """fig10 rows -> [(variant, buckets, throughput, err)]."""
    out = []
    for r in rows:
        out.append(
            (
                r["variant"],
                int(r["buckets"]),
                float(r["throughput(el/s)"]),
                float(r["rel-error-mean(%)"]),
            )
        )
    return out


def plot_fig8(series, out_path):
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    gpus = sorted({k[0] for k in series})
    types = sorted({k[1] for k in series})
    fig, axes = plt.subplots(
        len(gpus), len(types), figsize=(6 * len(types), 4 * len(gpus)), squeeze=False
    )
    for gi, gpu in enumerate(gpus):
        for ti, typ in enumerate(types):
            ax = axes[gi][ti]
            for (g, t, variant), pts in sorted(series.items()):
                if g != gpu or t != typ:
                    continue
                xs = [p[0] for p in pts]
                ys = [p[1] for p in pts]
                ax.plot(xs, ys, marker="o", label=variant)
            ax.set_xscale("log", base=2)
            ax.set_title(f"{gpu} ({typ})")
            ax.set_xlabel("number of elements")
            ax.set_ylabel("throughput (elements/s)")
            ax.legend()
            ax.grid(True, alpha=0.3)
    fig.suptitle("Figure 8: selection throughput")
    fig.tight_layout()
    fig.savefig(out_path, dpi=120)
    print(f"wrote {out_path}")


def plot_fig10(points, out_path):
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    fig, ax = plt.subplots(figsize=(6, 4))
    for variant, buckets, tp, err in points:
        marker = "o" if variant == "exact" else "^"
        color = "tab:blue" if variant == "exact" else "tab:green"
        ax.scatter(err, tp, marker=marker, color=color, s=60)
        ax.annotate(str(buckets), (err, tp), textcoords="offset points", xytext=(6, 4))
    ax.set_xlabel("relative approximation error (%)")
    ax.set_ylabel("throughput (elements/s)")
    ax.set_title("Figure 10: error-throughput trade-off")
    ax.grid(True, alpha=0.3)
    fig.tight_layout()
    fig.savefig(out_path, dpi=120)
    print(f"wrote {out_path}")


def main():
    args = [a for a in sys.argv[1:] if a != "--parse-only"]
    parse_only = "--parse-only" in sys.argv
    if len(args) < 2:
        print(__doc__)
        sys.exit(2)
    which, csv_path = args[0], args[1]
    out_path = args[2] if len(args) > 2 else f"{which}.png"
    _, rows = read_rows(csv_path)
    if which == "fig8":
        series = series_fig8(rows)
        print(f"parsed {len(rows)} rows, {len(series)} series")
        if not parse_only:
            plot_fig8(series, out_path)
    elif which == "fig10":
        points = series_fig10(rows)
        print(f"parsed {len(points)} points")
        if not parse_only:
            plot_fig10(points, out_path)
    else:
        print(f"unknown figure {which}; known: fig8 fig10")
        sys.exit(2)


if __name__ == "__main__":
    main()
