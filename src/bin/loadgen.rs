//! `loadgen` — open-loop load generator and overload bench for the
//! `selectd` server core.
//!
//! ```text
//! cargo run --release --bin loadgen -- \
//!     [--rates 100,400,1600] [--duration-ms 1000] [--workers 3] \
//!     [--n 50000] [--datasets 3] [--deadline-ms 50] [--seed 7] \
//!     [--queue-cap 64] [--quota-burst F] [--quota-refill F] \
//!     [--fault-worker W [--fault-rate R]] [--out BENCH_selectd.json]
//! ```
//!
//! For each offered rate the bench boots a fresh in-process
//! [`SelectServer`], drives it with **open-loop Poisson arrivals**
//! (exponential inter-arrival times from a seeded SplitMix64 — arrivals
//! do not wait for responses, so overload actually overloads), from a
//! mix of tenants: an exact-selection tenant with a deadline, an
//! approximate tenant, a top-k tenant, a recall-targeted approximate
//! top-k tenant, and a windowed quantile-stream tenant. It then
//! reports, per rate:
//!
//! * latency percentiles p50 / p99 / p999 over admitted queries
//!   (queue wait + service, server-measured),
//! * goodput: honest answers per second, split into exact-quality and
//!   tagged-degraded,
//! * shed load: quota and queue-full rejections (explicit backpressure),
//! * **silently-wrong exact answers — required to be zero**: every
//!   `Exact` response is verified bit-for-bit against a CPU reference
//!   on the regenerated dataset.
//!
//! Results go to `BENCH_selectd.json` (schema `selectd-loadgen-v1`).
//! Exit code 1 if any exact answer was wrong, else 0.

use std::collections::HashMap;
use std::process::exit;
use std::time::{Duration, Instant};

use gpu_selection::gpu_sim::FaultPlan;
use gpu_selection::sampleselect::element::reference_select;
use gpu_selection::sampleselect::rng::SplitMix64;
use gpu_selection::sampleselect::server::dataset::{self, DatasetSpec};
use gpu_selection::sampleselect::{
    QueryKind, QueryRequest, QueryStatus, SelectError, SelectServer, ServerConfig,
};

const HELP: &str = "loadgen [--rates R1,R2,..] [--duration-ms MS] [--workers N] [--n N] \
[--datasets K] [--deadline-ms MS] [--seed S] [--queue-cap N] [--quota-burst F] \
[--quota-refill F] [--fault-worker W [--fault-rate R]] [--out FILE]";

struct Args {
    rates: Vec<f64>,
    duration_ms: u64,
    workers: usize,
    n: u64,
    datasets: u64,
    deadline_ms: u32,
    seed: u64,
    queue_cap: usize,
    quota_burst: f64,
    quota_refill: f64,
    fault_worker: Option<usize>,
    fault_rate: f64,
    out: String,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            rates: vec![100.0, 400.0, 1600.0],
            duration_ms: 1000,
            workers: 3,
            n: 50_000,
            datasets: 3,
            deadline_ms: 50,
            seed: 7,
            queue_cap: 64,
            quota_burst: 1e9,
            quota_refill: 0.0,
            fault_worker: None,
            fault_rate: 1.0,
            out: "BENCH_selectd.json".to_string(),
        }
    }
}

fn parse_args() -> Args {
    let mut out = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value\n{HELP}");
                exit(2);
            })
        };
        match flag.as_str() {
            "--rates" => {
                out.rates = val("--rates")
                    .split(',')
                    .map(|s| s.trim().parse().expect("--rates"))
                    .collect()
            }
            "--duration-ms" => {
                out.duration_ms = val("--duration-ms").parse().expect("--duration-ms")
            }
            "--workers" => out.workers = val("--workers").parse().expect("--workers"),
            "--n" => out.n = val("--n").parse().expect("--n"),
            "--datasets" => out.datasets = val("--datasets").parse().expect("--datasets"),
            "--deadline-ms" => {
                out.deadline_ms = val("--deadline-ms").parse().expect("--deadline-ms")
            }
            "--seed" => out.seed = val("--seed").parse().expect("--seed"),
            "--queue-cap" => out.queue_cap = val("--queue-cap").parse().expect("--queue-cap"),
            "--quota-burst" => {
                out.quota_burst = val("--quota-burst").parse().expect("--quota-burst")
            }
            "--quota-refill" => {
                out.quota_refill = val("--quota-refill").parse().expect("--quota-refill")
            }
            "--fault-worker" => {
                out.fault_worker = Some(val("--fault-worker").parse().expect("--fault-worker"))
            }
            "--fault-rate" => out.fault_rate = val("--fault-rate").parse().expect("--fault-rate"),
            "--out" => out.out = val("--out"),
            "--help" | "-h" => {
                eprintln!("{HELP}");
                exit(0);
            }
            other => {
                eprintln!("unknown flag {other}\n{HELP}");
                exit(2);
            }
        }
    }
    out
}

/// One offered query, pre-generated so the arrival loop does nothing
/// but sleep and submit.
struct Offered {
    req: QueryRequest,
    /// Arrival time offset from the run start, in seconds.
    at_s: f64,
}

fn plan_offered(args: &Args, rate: f64) -> Vec<Offered> {
    let mut rng = SplitMix64::new(args.seed ^ (rate.to_bits()));
    let duration_s = args.duration_ms as f64 / 1e3;
    let mut t = 0.0f64;
    let mut offered = Vec::new();
    while {
        // Exponential inter-arrival: open-loop Poisson process.
        let u = rng.next_f64().max(1e-12);
        t += -u.ln() / rate;
        t < duration_s
    } {
        let spec = DatasetSpec::uniform(args.n as usize, 1 + rng.next_u64() % args.datasets);
        // Ranks from a small per-dataset palette so exact verification
        // stays cheap and batching has something to merge.
        let rank = (1 + rng.next_below(16) as u64) * (args.n / 17);
        let mix = rng.next_below(14);
        let (tenant, kind, deadline_ms) = if mix < 5 {
            (
                "tenant-exact",
                QueryKind::Exact { rank },
                Some(args.deadline_ms),
            )
        } else if mix < 8 {
            ("tenant-approx", QueryKind::Approx { rank }, None)
        } else if mix < 10 {
            (
                "tenant-topk",
                QueryKind::TopK {
                    k: 1 + rng.next_below(256) as u64,
                },
                None,
            )
        } else if mix < 12 {
            (
                "tenant-approx-topk",
                QueryKind::ApproxTopK {
                    k: 1 + rng.next_below(256) as u64,
                    recall_bits: 0.9f32.to_bits(),
                },
                None,
            )
        } else {
            (
                "tenant-qstream",
                QueryKind::QuantileStream {
                    window_len: (args.n / 4).max(1),
                    slide: (args.n / 4).max(1),
                    chunk_len: 1 << 14,
                },
                None,
            )
        };
        offered.push(Offered {
            req: QueryRequest {
                tenant: tenant.to_string(),
                kind,
                dataset: spec,
                deadline_ms,
                seed: rng.next_u64(),
            },
            at_s: t,
        });
    }
    offered
}

#[derive(Default)]
struct RateOutcome {
    offered: u64,
    admitted: u64,
    rejected_quota: u64,
    rejected_queue: u64,
    exact_ok: u64,
    exact_wrong: u64,
    degraded: u64,
    approx_tagged: u64,
    topk_ok: u64,
    topk_wrong: u64,
    approx_topk_ok: u64,
    approx_topk_wrong: u64,
    qstream_ok: u64,
    qstream_wrong: u64,
    failed: u64,
    latencies_ms: Vec<f64>,
    breaker_open: u64,
    batched: u64,
}

/// Linear-interpolation percentile (the C = 1 variant): `p` in [0, 1]
/// over an ascending-sorted slice. Nearest-rank with `.round()` would
/// collapse p99 and p999 onto the max for any sample smaller than ~200
/// entries — exactly the small per-rate samples short loadgen runs
/// produce — so the tail percentiles it reported were not tail
/// estimates at all.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let h = (sorted.len() as f64 - 1.0) * p;
    let lo = h.floor() as usize;
    let hi = (lo + 1).min(sorted.len() - 1);
    let frac = h - lo as f64;
    sorted[lo] + frac * (sorted[hi] - sorted[lo])
}

fn run_rate(args: &Args, rate: f64) -> RateOutcome {
    let mut cfg = ServerConfig {
        workers: args.workers,
        queue_capacity: args.queue_cap,
        max_dataset_elems: args.n.max(1 << 20),
        ..ServerConfig::default()
    };
    cfg.quota.burst = args.quota_burst;
    cfg.quota.refill_per_sec = args.quota_refill;
    // Quantile-stream queries spool restart checkpoints to disk; give
    // the server a scratch directory so they are admitted.
    let spool = std::env::temp_dir().join(format!("loadgen-spool-{}", std::process::id()));
    std::fs::create_dir_all(&spool).expect("create spool dir");
    cfg.spool_dir = Some(spool);
    if let Some(w) = args.fault_worker {
        cfg = cfg.with_fault_plan(
            w,
            FaultPlan::new(args.seed).launch_failures(args.fault_rate),
        );
    }
    let server = SelectServer::start(cfg);

    let offered = plan_offered(args, rate);
    let mut outcome = RateOutcome {
        offered: offered.len() as u64,
        ..RateOutcome::default()
    };

    // Open loop: submit at each planned arrival time regardless of how
    // far behind the server is; harvest responses afterwards.
    let start = Instant::now();
    let mut inflight = Vec::new();
    for o in offered {
        let target = Duration::from_secs_f64(o.at_s);
        let now = start.elapsed();
        if target > now {
            std::thread::sleep(target - now);
        }
        match server.submit(o.req.clone()) {
            Ok(ticket) => inflight.push((o.req, ticket)),
            Err(SelectError::Overloaded { reason, .. }) => match reason {
                "quota" => outcome.rejected_quota += 1,
                _ => outcome.rejected_queue += 1,
            },
            Err(e) => panic!("loadgen generated an invalid query: {e}"),
        }
    }
    outcome.admitted = inflight.len() as u64;

    // Bit-exact verification references, one per (dataset, rank).
    let mut refs: HashMap<(DatasetSpec, u64), f32> = HashMap::new();
    let mut datasets: HashMap<DatasetSpec, Vec<f32>> = HashMap::new();
    let mut reference = |spec: DatasetSpec, rank: u64| -> f32 {
        *refs.entry((spec, rank)).or_insert_with(|| {
            let data = datasets
                .entry(spec)
                .or_insert_with(|| dataset::instantiate(&spec));
            reference_select(data, rank as usize).expect("rank in range")
        })
    };

    for (req, ticket) in inflight {
        let resp = ticket.wait();
        outcome.latencies_ms.push(resp.wait_ms + resp.service_ms);
        match resp.status {
            QueryStatus::Exact { value } => {
                let want = match req.kind {
                    QueryKind::Exact { rank } => reference(req.dataset, rank),
                    QueryKind::Stream { rank, .. } => reference(req.dataset, rank),
                    _ => value,
                };
                if value.to_bits() == want.to_bits() {
                    outcome.exact_ok += 1;
                } else {
                    outcome.exact_wrong += 1;
                }
            }
            QueryStatus::Approximate {
                value,
                achieved_rank,
                deadline_degraded,
                ..
            } => {
                // An approximate answer is honest iff its achieved rank
                // is truthful — verify against the reference.
                let want = reference(req.dataset, achieved_rank);
                if value.to_bits() == want.to_bits() {
                    if deadline_degraded {
                        outcome.degraded += 1;
                    } else {
                        outcome.approx_tagged += 1;
                    }
                } else {
                    outcome.exact_wrong += 1;
                }
            }
            QueryStatus::TopK { threshold, k } => {
                let want = reference(req.dataset, req.dataset.n - k);
                if threshold.to_bits() == want.to_bits() {
                    outcome.topk_ok += 1;
                } else {
                    outcome.topk_wrong += 1;
                }
            }
            QueryStatus::ApproxTopK {
                threshold,
                k,
                expected_recall,
            } => {
                // The candidate union is a subset of the input, so the
                // approximate threshold can never exceed the exact
                // top-k threshold, and the advertised recall must be a
                // probability.
                let want = reference(req.dataset, req.dataset.n - k);
                if threshold <= want && expected_recall > 0.0 && expected_recall <= 1.0 {
                    outcome.approx_topk_ok += 1;
                } else {
                    outcome.approx_topk_wrong += 1;
                }
            }
            QueryStatus::QuantileStream { windows, values } => {
                // A completed finite pass closes at least one window and
                // reports the default probe set in non-decreasing order.
                let ordered = values.windows(2).all(|p| p[0] <= p[1]);
                if windows >= 1 && values.len() == 4 && ordered {
                    outcome.qstream_ok += 1;
                } else {
                    outcome.qstream_wrong += 1;
                }
            }
            QueryStatus::Quantiles { .. }
            | QueryStatus::Checkpointed { .. }
            | QueryStatus::Failed { .. } => {
                outcome.failed += 1;
            }
        }
    }

    let snap = server.drain();
    let counter = |name: &str| {
        snap.metrics
            .counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    };
    outcome.breaker_open = counter("select_breaker_open_total");
    outcome.batched = counter("select_batched_total");
    outcome
        .latencies_ms
        .sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    outcome
}

fn main() {
    let args = parse_args();
    let duration_s = args.duration_ms as f64 / 1e3;
    println!(
        "loadgen: rates {:?} qps, {} ms each, {} workers, n={}, {} datasets{}",
        args.rates,
        args.duration_ms,
        args.workers,
        args.n,
        args.datasets,
        if args.fault_worker.is_some() {
            " [fault injection on]"
        } else {
            ""
        }
    );
    println!(
        "\n{:>8} {:>8} {:>8} {:>8} {:>9} {:>9} {:>9} {:>10} {:>9} {:>7}",
        "rate",
        "offered",
        "admit",
        "shed",
        "p50-ms",
        "p99-ms",
        "p999-ms",
        "goodput/s",
        "degraded",
        "wrong"
    );

    let mut curves = Vec::new();
    let mut any_wrong = false;
    for &rate in &args.rates {
        let o = run_rate(&args, rate);
        let p50 = percentile(&o.latencies_ms, 0.50);
        let p99 = percentile(&o.latencies_ms, 0.99);
        let p999 = percentile(&o.latencies_ms, 0.999);
        let good = o.exact_ok + o.approx_tagged + o.topk_ok + o.approx_topk_ok + o.qstream_ok;
        let goodput = good as f64 / duration_s;
        let shed = o.rejected_quota + o.rejected_queue;
        any_wrong |=
            o.exact_wrong > 0 || o.topk_wrong > 0 || o.approx_topk_wrong > 0 || o.qstream_wrong > 0;
        println!(
            "{:>8.0} {:>8} {:>8} {:>8} {:>9.2} {:>9.2} {:>9.2} {:>10.1} {:>9} {:>7}",
            rate,
            o.offered,
            o.admitted,
            shed,
            p50,
            p99,
            p999,
            goodput,
            o.degraded,
            o.exact_wrong + o.topk_wrong + o.approx_topk_wrong + o.qstream_wrong
        );
        curves.push(format!(
            "    {{\"rate_qps\": {rate}, \"offered\": {}, \"admitted\": {}, \
             \"rejected_quota\": {}, \"rejected_queue_full\": {}, \
             \"p50_ms\": {p50:.4}, \"p99_ms\": {p99:.4}, \"p999_ms\": {p999:.4}, \
             \"goodput_qps\": {goodput:.2}, \"exact_ok\": {}, \"exact_wrong\": {}, \
             \"deadline_degraded\": {}, \"approx_tagged\": {}, \"topk_ok\": {}, \
             \"topk_wrong\": {}, \"approx_topk_ok\": {}, \"approx_topk_wrong\": {}, \
             \"qstream_ok\": {}, \"qstream_wrong\": {}, \
             \"failed\": {}, \"breaker_open\": {}, \"batched\": {}}}",
            o.offered,
            o.admitted,
            o.rejected_quota,
            o.rejected_queue,
            o.exact_ok,
            o.exact_wrong,
            o.degraded,
            o.approx_tagged,
            o.topk_ok,
            o.topk_wrong,
            o.approx_topk_ok,
            o.approx_topk_wrong,
            o.qstream_ok,
            o.qstream_wrong,
            o.failed,
            o.breaker_open,
            o.batched
        ));
    }

    let json = format!(
        "{{\n  \"schema\": \"selectd-loadgen-v1\",\n  \"config\": {{\"duration_ms\": {}, \
         \"workers\": {}, \"n\": {}, \"datasets\": {}, \"deadline_ms\": {}, \"seed\": {}, \
         \"queue_cap\": {}, \"quota_burst\": {}, \"quota_refill\": {}, \
         \"fault_injection\": {}}},\n  \"curves\": [\n{}\n  ]\n}}\n",
        args.duration_ms,
        args.workers,
        args.n,
        args.datasets,
        args.deadline_ms,
        args.seed,
        args.queue_cap,
        args.quota_burst,
        args.quota_refill,
        args.fault_worker.is_some(),
        curves.join(",\n")
    );
    std::fs::write(&args.out, &json).expect("write bench json");
    println!("\nwrote {}", args.out);

    if any_wrong {
        eprintln!("FAIL: silently-wrong exact/topk answers detected under load");
        exit(1);
    }
    println!(
        "no silently-wrong exact answers; overload shed via rejections + deadline degradation"
    );
}

#[cfg(test)]
mod tests {
    use super::percentile;

    #[test]
    fn percentile_interpolates_instead_of_collapsing_to_max() {
        // Ten samples: nearest-rank with .round() returns sorted[9] for
        // both p99 and p999 (the regression this pins); interpolation
        // must land strictly between the last two order statistics.
        let sorted: Vec<f64> = (1..=10).map(f64::from).collect();
        assert_eq!(percentile(&sorted, 0.0), 1.0);
        assert_eq!(percentile(&sorted, 1.0), 10.0);
        // h = 9 * 0.5 = 4.5 -> midway between the 5th and 6th samples.
        assert_eq!(percentile(&sorted, 0.50), 5.5);
        // h = 9 * 0.99 = 8.91 -> 9.91, NOT the max.
        assert!((percentile(&sorted, 0.99) - 9.91).abs() < 1e-12);
        // h = 9 * 0.999 = 8.991 -> 9.991, still below the max.
        assert!((percentile(&sorted, 0.999) - 9.991).abs() < 1e-12);
        assert!(percentile(&sorted, 0.99) < 10.0);
        assert!(percentile(&sorted, 0.999) < 10.0);
        // and p999 must stay above p99 (tail ordering preserved).
        assert!(percentile(&sorted, 0.999) > percentile(&sorted, 0.99));
    }

    #[test]
    fn percentile_degenerate_inputs() {
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[7.25], 0.999), 7.25);
        let two = [1.0, 3.0];
        assert_eq!(percentile(&two, 0.5), 2.0);
        assert_eq!(percentile(&two, 0.25), 1.5);
    }
}
