//! `selectcli` — run any selection algorithm of the workspace on a
//! generated workload from the command line.
//!
//! ```text
//! cargo run --release --bin selectcli -- \
//!     [--algo auto|sample|quick|bucket|radix|approx|topk|approx-topk|quantiles|quantile-stream|sort|stream|resilient|shard|cpu] \
//!     [--n 4194304] [--rank N | --k N] \
//!     [--dist uniform|d16|d1024|clustered|cascade|sorted|normal|exp] \
//!     [--arch v100|k20xm|c2070] [--buckets 256] [--seed 42] [--breakdown] \
//!     [--trace out.json] [--metrics out.json|out.prom] [--span-log out.txt] \
//!     [--inject-faults SEED [--fault-rate R]] [--inject-bitflips SEED [--bitflip-rate R]] \
//!     [--verify off|spot|paranoid] [--time-budget MS] [--checkpoint FILE [--resume]] \
//!     [--shards K] [--kill-shard SHARD@LEVEL] [--hedge] \
//!     [--sanitize [--sanitize-json out.json]] [--threads N]
//! ```
//!
//! `--algo auto` asks the cost-model planner to pick the backend per
//! query: it probes the data (duplicate ratio, dead radix digits),
//! prices SampleSelect, QuickSelect and RadixSelect on the target
//! architecture, prints the decision, and runs the winner through the
//! resilient driver — so `--time-budget` degradation and fault
//! injection behave exactly as with `--algo resilient` (a degraded
//! planner run still exits `4`). `--algo radix` forces the production
//! RadixSelect backend directly.
//!
//! `--algo shard` partitions the workload across `--shards` simulated
//! devices; `--kill-shard 1@2` kills shard 1 at recursion level 2 (the
//! driver recovers it by replay), and `--hedge` arms cost-model
//! straggler hedging. `--inject-faults`/`--inject-bitflips` apply their
//! fault plan to shard 0.
//!
//! `--algo approx-topk` runs the bucketed approximate top-k workload:
//! `--k` winners at `--recall` target recall (planned via the binomial
//! model, measured against the exact answer). `--algo quantile-stream`
//! runs the streaming quantile telemetry engine: p50/p90/p99/p999 over
//! `--window LEN` windows sliding every `--slide S` elements, with
//! `--checkpoint FILE [--resume]` for restart-safe passes.
//!
//! `--connect HOST:PORT` turns the CLI into a `selectd` client: the
//! query (`--algo sample|resilient` ⇒ exact, `approx`, `topk`,
//! `approx-topk`, `quantiles`, `quantile-stream`, `stream`) is sent
//! over the wire protocol instead of running locally; `--drain`
//! gracefully shuts the server down and prints its final metrics
//! snapshot.
//!
//! Exit codes (scripts rely on these):
//!
//! * `0` — exact answer produced and verified.
//! * `1` — the query failed (driver error, connection error).
//! * `2` — usage error.
//! * `3` — SIMT sanitizer findings (with `--sanitize`).
//! * `4` — **tagged approximate/degraded answer**: the result is honest
//!   but not exact (`--algo approx`, a time-budget or deadline
//!   degradation, a quorum-degraded shard run).
//! * `5` — **overload rejection**: a `selectd` server refused admission
//!   (quota, full queue, or draining) — retry later, do not treat as a
//!   data error.

use gpu_selection::baselines::bucket_select_on_device;
use gpu_selection::datagen::{Distribution, RankChoice, WorkloadSpec};
use gpu_selection::gpu_sim::arch::{by_name, v100};
use gpu_selection::gpu_sim::Device;
use gpu_selection::gpu_sim::{FaultPlan, SanitizerConfig, SimTime};
use gpu_selection::hpc_par::ThreadPool;
use gpu_selection::sampleselect::cpu::{cpu_sample_select, CpuSelectConfig};
use gpu_selection::sampleselect::element::reference_select;
use gpu_selection::sampleselect::multiselect::quantiles;
use gpu_selection::sampleselect::samplesort::sample_sort_on_device;
use gpu_selection::sampleselect::streaming::{
    streaming_select, streaming_select_with_checkpoint, SliceChunks,
};
use gpu_selection::sampleselect::topk::top_k_largest_on_device;
use gpu_selection::sampleselect::{
    approx_select_on_device, approx_top_k_on_device, measure_recall, plan_for_recall,
    plan_rank_query, quick_select_on_device, radix_select_on_device, resilient_select_on_device,
    resilient_select_planned, run_quantile_stream, sample_select_on_device, sharded_select,
    KillSpec, ObsSession, Outcome, QuantileStreamConfig, ResilienceConfig, SampleSelectConfig,
    SelectReport, ShardConfig, ShardFaults, VerifyPolicy, WindowSpec, DEFAULT_PROBS,
};
use std::process::exit;

#[derive(Debug)]
struct Args {
    algo: String,
    n: usize,
    rank: Option<usize>,
    k: Option<usize>,
    dist: String,
    arch: String,
    buckets: usize,
    seed: u64,
    breakdown: bool,
    trace: Option<String>,
    inject_faults: Option<u64>,
    fault_rate: f64,
    time_budget_ms: Option<f64>,
    inject_bitflips: Option<u64>,
    bitflip_rate: f64,
    verify: VerifyPolicy,
    checkpoint: Option<String>,
    resume: bool,
    sanitize: bool,
    sanitize_json: Option<String>,
    threads: Option<usize>,
    metrics: Option<String>,
    span_log: Option<String>,
    shards: usize,
    kill_shard: Option<KillSpec>,
    hedge: bool,
    connect: Option<String>,
    tenant: String,
    deadline_ms: Option<u32>,
    drain: bool,
    recall: f64,
    window: usize,
    slide: Option<usize>,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            algo: "sample".into(),
            n: 1 << 22,
            rank: None,
            k: None,
            dist: "uniform".into(),
            arch: "v100".into(),
            buckets: 256,
            seed: 42,
            breakdown: false,
            trace: None,
            inject_faults: None,
            fault_rate: 0.05,
            time_budget_ms: None,
            inject_bitflips: None,
            bitflip_rate: 0.02,
            verify: VerifyPolicy::Off,
            checkpoint: None,
            resume: false,
            sanitize: false,
            sanitize_json: None,
            threads: None,
            metrics: None,
            span_log: None,
            shards: 2,
            kill_shard: None,
            hedge: false,
            connect: None,
            tenant: "cli".into(),
            deadline_ms: None,
            drain: false,
            recall: 0.95,
            window: 1 << 16,
            slide: None,
        }
    }
}

fn parse_args() -> Args {
    let mut out = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value\n{HELP}");
                exit(2);
            })
        };
        match flag.as_str() {
            "--algo" => out.algo = val("--algo"),
            "--n" => out.n = val("--n").parse().expect("--n"),
            "--rank" => out.rank = Some(val("--rank").parse().expect("--rank")),
            "--k" => out.k = Some(val("--k").parse().expect("--k")),
            "--dist" => out.dist = val("--dist"),
            "--arch" => out.arch = val("--arch"),
            "--buckets" => out.buckets = val("--buckets").parse().expect("--buckets"),
            "--seed" => out.seed = val("--seed").parse().expect("--seed"),
            "--breakdown" => out.breakdown = true,
            "--trace" => out.trace = Some(val("--trace")),
            "--inject-faults" => {
                out.inject_faults = Some(val("--inject-faults").parse().expect("--inject-faults"))
            }
            "--fault-rate" => out.fault_rate = val("--fault-rate").parse().expect("--fault-rate"),
            "--time-budget" => {
                out.time_budget_ms = Some(val("--time-budget").parse().expect("--time-budget"))
            }
            "--inject-bitflips" => {
                out.inject_bitflips =
                    Some(val("--inject-bitflips").parse().expect("--inject-bitflips"))
            }
            "--bitflip-rate" => {
                out.bitflip_rate = val("--bitflip-rate").parse().expect("--bitflip-rate")
            }
            "--verify" => {
                out.verify = val("--verify").parse().unwrap_or_else(|e| {
                    eprintln!("{e}");
                    exit(2);
                })
            }
            "--checkpoint" => out.checkpoint = Some(val("--checkpoint")),
            "--resume" => out.resume = true,
            "--shards" => out.shards = val("--shards").parse().expect("--shards"),
            "--kill-shard" => {
                out.kill_shard = Some(val("--kill-shard").parse().unwrap_or_else(|e| {
                    eprintln!("--kill-shard: {e}\n{HELP}");
                    exit(2);
                }))
            }
            "--hedge" => out.hedge = true,
            "--recall" => out.recall = val("--recall").parse().expect("--recall"),
            "--window" => out.window = val("--window").parse().expect("--window"),
            "--slide" => out.slide = Some(val("--slide").parse().expect("--slide")),
            "--connect" => out.connect = Some(val("--connect")),
            "--tenant" => out.tenant = val("--tenant"),
            "--deadline" => out.deadline_ms = Some(val("--deadline").parse().expect("--deadline")),
            "--drain" => out.drain = true,
            "--threads" => out.threads = Some(val("--threads").parse().expect("--threads")),
            "--metrics" => out.metrics = Some(val("--metrics")),
            "--span-log" => out.span_log = Some(val("--span-log")),
            "--sanitize" => out.sanitize = true,
            "--sanitize-json" => {
                out.sanitize = true;
                out.sanitize_json = Some(val("--sanitize-json"));
            }
            "--help" | "-h" => {
                eprintln!("{}", HELP);
                exit(0);
            }
            other => {
                eprintln!("unknown flag {other}\n{HELP}");
                exit(2);
            }
        }
    }
    out
}

const HELP: &str =
    "selectcli --algo auto|sample|quick|bucket|radix|approx|topk|approx-topk|quantiles|quantile-stream|sort|stream|resilient|shard|cpu \
--n N --rank R|--k K --dist uniform|d16|d1024|clustered|cascade|sorted|normal|exp \
--arch v100|k20xm|c2070 --buckets B --seed S [--breakdown] [--trace out.json] \
[--metrics out.json|out.prom] [--span-log out.txt] \
[--inject-faults SEED [--fault-rate R]] [--inject-bitflips SEED [--bitflip-rate R]] \
[--verify off|spot|paranoid] [--time-budget MS] [--checkpoint FILE [--resume]] \
[--recall R] [--window LEN [--slide S]] \
[--shards K] [--kill-shard SHARD@LEVEL] [--hedge] \
[--sanitize [--sanitize-json out.json]] [--threads N] \
[--connect HOST:PORT [--tenant NAME] [--deadline MS] [--drain]]\n\
exit codes: 0 exact answer; 1 failure; 2 usage error; 3 sanitizer findings; \
4 tagged approximate/degraded answer (incl. planner-degraded --algo auto runs); \
5 overload rejection (server backpressure)";

fn distribution(name: &str) -> Distribution {
    match name {
        "uniform" => Distribution::Uniform,
        "d16" => Distribution::UniformDistinct { distinct: 16 },
        "d1024" => Distribution::UniformDistinct { distinct: 1024 },
        "clustered" => Distribution::ClusteredOutliers,
        "cascade" => Distribution::GeometricCascade,
        "sorted" => Distribution::SortedAscending,
        "normal" => Distribution::Normal {
            mean: 0.0,
            std_dev: 1.0,
        },
        "exp" => Distribution::Exponential { lambda: 1.0 },
        other => {
            eprintln!("unknown distribution {other}\n{HELP}");
            exit(2);
        }
    }
}

fn print_report(report: &SelectReport, breakdown: bool) {
    println!(
        "levels: {}, launches: {}, early-termination: {}",
        report.levels,
        report.total_launches(),
        report.terminated_early
    );
    println!(
        "simulated time: {} ({:.3e} elements/s; launch overhead {})",
        report.total_time,
        report.throughput(),
        report.launch_overhead
    );
    let r = &report.resilience;
    // is_clean() now covers faults/corruptions/resumed; certified alone
    // does not make a run unclean but is still worth printing.
    if !r.is_clean() || r.certified > 0 {
        println!(
            "resilience: {} retries, {} fallbacks, {} degradations, {} faults observed, \
             {} corruptions detected, {} certified, {} resumed",
            r.retries,
            r.fallbacks,
            r.degradations,
            r.faults_observed,
            r.corruptions_detected,
            r.certified,
            r.resumed
        );
        for line in &r.log {
            println!("  {line}");
        }
    }
    if breakdown {
        println!("\nkernel          launches  total-time      ns/element");
        for k in &report.kernels {
            println!(
                "{:<15} {:>8}  {:>14}  {:.5}",
                k.name,
                k.launches,
                format!("{}", k.total_time),
                k.total_time.as_ns() / report.n as f64
            );
        }
    }
}

/// Exit code for honest-but-not-exact answers (tagged approximate,
/// deadline/time-budget degradation, quorum degradation, checkpointed).
const EXIT_APPROX: i32 = 4;
/// Exit code for explicit server backpressure (`SelectError::Overloaded`).
const EXIT_OVERLOADED: i32 = 5;

/// `--connect` client mode: ship the query to a `selectd` server over
/// the wire protocol instead of running it locally. Never returns.
fn run_client(args: &Args) -> ! {
    use gpu_selection::sampleselect::server::dataset::{DatasetSpec, DistCode};
    use gpu_selection::sampleselect::server::wire;
    use gpu_selection::sampleselect::{QueryKind, QueryRequest, QueryStatus};

    let addr = args.connect.as_deref().expect("connect mode");
    let mut stream = std::net::TcpStream::connect(addr).unwrap_or_else(|e| {
        eprintln!("cannot connect to {addr}: {e}");
        exit(1);
    });

    let request = if args.drain {
        wire::Request::Drain
    } else {
        let dist = DistCode::from_name(&args.dist).unwrap_or_else(|| {
            eprintln!("unknown distribution {} for --connect\n{HELP}", args.dist);
            exit(2);
        });
        let rank = args.rank.unwrap_or(args.n / 2) as u64;
        let kind = match args.algo.as_str() {
            // Every locally-exact algorithm maps to the server's exact
            // query; the server picks its own backend.
            "auto" | "sample" | "quick" | "bucket" | "radix" | "sort" | "resilient" | "cpu" => {
                QueryKind::Exact { rank }
            }
            "approx" => QueryKind::Approx { rank },
            "topk" => QueryKind::TopK {
                k: args.k.unwrap_or(100) as u64,
            },
            "approx-topk" => QueryKind::ApproxTopK {
                k: args.k.unwrap_or(100) as u64,
                recall_bits: (args.recall as f32).to_bits(),
            },
            "quantiles" => QueryKind::Quantiles {
                q: args.k.unwrap_or(10) as u64,
            },
            "quantile-stream" => QueryKind::QuantileStream {
                window_len: args.window as u64,
                slide: args.slide.unwrap_or(args.window) as u64,
                chunk_len: 1 << 16,
            },
            "stream" => QueryKind::Stream {
                rank,
                chunk_len: 1 << 16,
            },
            other => {
                eprintln!("unknown algorithm {other}\n{HELP}");
                exit(2);
            }
        };
        wire::Request::Query(QueryRequest {
            tenant: args.tenant.clone(),
            kind,
            dataset: DatasetSpec {
                dist,
                n: args.n as u64,
                seed: args.seed,
            },
            deadline_ms: args.deadline_ms,
            seed: args.seed,
        })
    };

    let payload = wire::encode_request(&request).unwrap_or_else(|e| {
        eprintln!("{e}");
        exit(1);
    });
    if let Err(e) = wire::write_frame(&mut stream, &payload) {
        eprintln!("send failed: {e}");
        exit(1);
    }
    let frame = match wire::read_frame(&mut stream) {
        Ok(Some(f)) => f,
        Ok(None) => {
            eprintln!("server closed the connection");
            exit(1);
        }
        Err(e) => {
            eprintln!("receive failed: {e}");
            exit(1);
        }
    };
    let response = wire::decode_response(&frame).unwrap_or_else(|e| {
        eprintln!("{e}");
        exit(1);
    });
    match response {
        wire::Response::Done { status, batched } => {
            let tag = if batched { " [batched]" } else { "" };
            match status {
                QueryStatus::Exact { value } => {
                    println!("value = {value} (exact){tag}");
                    exit(0);
                }
                QueryStatus::TopK { threshold, k } => {
                    println!("top-{k} threshold = {threshold}{tag}");
                    exit(0);
                }
                QueryStatus::Quantiles { values } => {
                    print!("quantiles:");
                    for v in &values {
                        print!(" {v:.4}");
                    }
                    println!("{tag}");
                    exit(0);
                }
                QueryStatus::ApproxTopK {
                    threshold,
                    k,
                    expected_recall,
                } => {
                    println!(
                        "approx top-{k} threshold = {threshold} (expected recall \
                         {expected_recall:.4}){tag}"
                    );
                    exit(EXIT_APPROX);
                }
                QueryStatus::QuantileStream { windows, values } => {
                    print!("quantile stream: {windows} window(s) closed; latest");
                    for (p, v) in DEFAULT_PROBS.iter().zip(&values) {
                        print!(" p{p}={v:.4}");
                    }
                    println!("{tag}");
                    exit(0);
                }
                QueryStatus::Approximate {
                    value,
                    achieved_rank,
                    rank_error,
                    deadline_degraded,
                } => {
                    println!(
                        "value = {value} (approximate{}: rank {achieved_rank} delivered, \
                         error {rank_error}){tag}",
                        if deadline_degraded {
                            ", deadline-degraded"
                        } else {
                            ""
                        }
                    );
                    exit(EXIT_APPROX);
                }
                QueryStatus::Checkpointed { resume_token } => {
                    println!("checkpointed at {resume_token}; resubmit the query to resume");
                    exit(EXIT_APPROX);
                }
                QueryStatus::Failed { message } => {
                    eprintln!("query failed: {message}");
                    exit(1);
                }
            }
        }
        wire::Response::Rejected { reason } => {
            eprintln!("rejected: {reason}");
            exit(EXIT_OVERLOADED);
        }
        wire::Response::Drained { json } | wire::Response::Stats { json } => {
            println!("{json}");
            exit(0);
        }
        wire::Response::Pong => {
            println!("pong");
            exit(0);
        }
    }
}

fn main() {
    let args = parse_args();
    if args.connect.is_some() {
        run_client(&args);
    }
    let arch = by_name(&args.arch).unwrap_or_else(v100);
    if let Some(n) = args.threads {
        if !ThreadPool::init_global(n) {
            eprintln!(
                "--threads {n} ignored: global pool already initialized with {} workers",
                ThreadPool::global().num_threads()
            );
        }
    }
    let pool = ThreadPool::global();
    let spec = WorkloadSpec {
        n: args.n,
        distribution: distribution(&args.dist),
        rank: match args.rank {
            Some(r) => RankChoice::Fixed(r),
            None => RankChoice::Median,
        },
        seed: args.seed,
    };
    let w = spec.instantiate::<f32>(0);
    let rank = w.rank;

    let mut cfg = SampleSelectConfig::tuned_for(&arch)
        .with_buckets(args.buckets)
        .with_seed(args.seed)
        .with_verify(args.verify);
    cfg.wide_oracles = args.buckets > 256;

    println!(
        "algo={} n={} dist={} arch={} buckets={} rank={rank}\n",
        args.algo, args.n, args.dist, arch.name, args.buckets
    );

    // Start an observability session whenever any export was requested;
    // the trace export also benefits (counter tracks ride along).
    let obs_session = if args.metrics.is_some() || args.span_log.is_some() || args.trace.is_some() {
        Some(ObsSession::start())
    } else {
        None
    };

    // Set when the answer is honest but not exact (approximate variant,
    // time-budget degradation, quorum degradation): main exits with
    // EXIT_APPROX so scripts can tell tagged answers from exact ones.
    let mut degraded = false;

    let mut device = Device::new(arch.clone(), pool);
    if args.sanitize {
        device.set_sanitizer(SanitizerConfig::full());
        println!(
            "SIMT sanitizer armed: shared-memory races, barrier divergence, uninitialized \
             reads, out-of-bounds and mixed atomic/plain accesses are reported per kernel\n"
        );
    }
    if args.inject_faults.is_some() || args.inject_bitflips.is_some() {
        let plan_seed = args
            .inject_faults
            .or(args.inject_bitflips)
            .expect("one of the fault seeds is set");
        let mut plan = FaultPlan::new(plan_seed);
        if let Some(fault_seed) = args.inject_faults {
            plan = plan
                .launch_failures(args.fault_rate)
                .max_launch_failures(8)
                .latency_spikes(args.fault_rate / 2.0, 4.0);
            println!(
                "fault injection: seed={fault_seed} launch-failure-rate={} (use --algo resilient \
                 to recover)",
                args.fault_rate
            );
        }
        if args.inject_bitflips.is_some() {
            plan = plan.bitflips(args.bitflip_rate);
            println!(
                "bit-flip injection: seed={plan_seed} rate={} per buffer exposure (use \
                 --verify spot|paranoid to detect)",
                args.bitflip_rate
            );
        }
        device.set_fault_plan(plan);
        println!();
    }
    match args.algo.as_str() {
        "auto" => {
            let decision = plan_rank_query(&arch, &w.data, rank, &cfg);
            println!(
                "planner: chose {}{} (probe: {:.0}% distinct, {} dead digit(s))",
                decision.backend,
                if decision.overridden {
                    " [live-signal override]"
                } else {
                    ""
                },
                decision.profile.distinct_ratio * 100.0,
                decision.profile.dead_digits
            );
            println!("planner: host simd dispatch = {}", decision.host_simd);
            for (backend, t) in &decision.estimates {
                println!("  model {backend:<20} {t}");
            }
            let mut rcfg = ResilienceConfig::default();
            if let Some(ms) = args.time_budget_ms {
                rcfg = rcfg.with_time_budget(SimTime::from_ms(ms));
            }
            let r =
                resilient_select_planned(&mut device, &w.data, rank, &cfg, &rcfg, decision.backend)
                    .unwrap_or_else(|e| {
                        eprintln!("selection failed: {e}");
                        exit(1);
                    });
            match r.outcome {
                Outcome::Exact(value) => {
                    println!("value = {value} (exact, backend {})", r.backend.name());
                    assert_eq!(value, reference_select(&w.data, rank).unwrap());
                }
                Outcome::Approximate {
                    value,
                    achieved_rank,
                    rank_error,
                } => {
                    degraded = true;
                    println!(
                        "value = {value} (planner-degraded under time budget: rank \
                         {achieved_rank} delivered, {rank} requested, error {rank_error})"
                    );
                }
            }
            print_report(&r.report, args.breakdown);
        }
        "sample" => {
            let r = sample_select_on_device(&mut device, &w.data, rank, &cfg).unwrap();
            println!("value = {}", r.value);
            print_report(&r.report, args.breakdown);
            assert_eq!(r.value, reference_select(&w.data, rank).unwrap());
            println!("\nverified against std reference");
        }
        "quick" => {
            let r = quick_select_on_device(&mut device, &w.data, rank, &cfg).unwrap();
            println!("value = {}", r.value);
            print_report(&r.report, args.breakdown);
        }
        "bucket" => {
            let r = bucket_select_on_device(&mut device, &w.data, rank, &cfg).unwrap();
            println!("value = {}", r.value);
            print_report(&r.report, args.breakdown);
        }
        "radix" => {
            let r = radix_select_on_device(&mut device, &w.data, rank, &cfg).unwrap();
            println!("value = {}", r.value);
            print_report(&r.report, args.breakdown);
        }
        "approx" => {
            let r = approx_select_on_device(&mut device, &w.data, rank, &cfg).unwrap();
            degraded = true;
            println!(
                "value = {} (rank {} delivered, {} requested, {:.4}% relative error)",
                r.value,
                r.achieved_rank,
                rank,
                r.relative_error * 100.0
            );
            print_report(&r.report, args.breakdown);
        }
        "topk" => {
            let k = args.k.unwrap_or(100);
            let r = top_k_largest_on_device(&mut device, &w.data, k, &cfg).unwrap();
            println!("top-{k} threshold = {}", r.threshold);
            print_report(&r.report, args.breakdown);
        }
        "quantiles" => {
            let q = args.k.unwrap_or(10);
            let r = quantiles(&w.data, q, &cfg).unwrap();
            print!("{q}-quantiles:");
            for v in &r.values {
                print!(" {v:.4}");
            }
            println!();
            print_report(&r.report, args.breakdown);
        }
        "approx-topk" => {
            let k = args.k.unwrap_or(100);
            let (acfg, planned) = plan_for_recall(args.n, k, args.recall);
            println!(
                "plan: {} bucket(s), oversample {:.3}, expected recall {:.4} (target {:.4})",
                acfg.buckets, acfg.oversample, planned, args.recall
            );
            let mut r = approx_top_k_on_device(&mut device, &w.data, k, &acfg, &cfg)
                .unwrap_or_else(|e| {
                    eprintln!("approximate top-k failed: {e}");
                    exit(1);
                });
            let measured = measure_recall(&w.data, &mut r);
            if measured < 1.0 {
                degraded = true;
            }
            println!(
                "approx top-{k} threshold = {} (expected recall {:.4}, measured {:.4})",
                r.threshold, r.expected_recall, measured
            );
            print_report(&r.report, args.breakdown);
        }
        "quantile-stream" => {
            let slide = args.slide.unwrap_or(args.window);
            let qcfg = QuantileStreamConfig {
                probs: DEFAULT_PROBS.to_vec(),
                window: WindowSpec::sliding(args.window, slide),
                select: cfg.clone(),
            };
            let source = SliceChunks::new(&w.data, 1 << 16);
            let ckpt = args.checkpoint.as_ref().map(std::path::PathBuf::from);
            let run =
                run_quantile_stream(&mut device, &source, &qcfg, ckpt.as_deref(), args.resume)
                    .unwrap_or_else(|e| {
                        eprintln!("quantile stream failed: {e}");
                        if args.checkpoint.is_some() {
                            eprintln!("(progress checkpointed; rerun with --resume to continue)");
                        }
                        exit(1);
                    });
            println!(
                "quantile stream: {} window(s) closed this pass ({} lifetime), {} elements seen{}",
                run.windows.len(),
                run.engine.windows_emitted(),
                run.engine.elements_seen(),
                if run.resumed { " [resumed]" } else { "" }
            );
            if let Some(wq) = run.engine.last() {
                print!(
                    "latest window #{} (end offset {}):",
                    wq.index, wq.end_offset
                );
                for (p, v) in DEFAULT_PROBS.iter().zip(&wq.values) {
                    print!(" p{p}={v:.4}");
                }
                println!();
            }
            for line in &run.events.log {
                println!("  {line}");
            }
        }
        "sort" => {
            let r = sample_sort_on_device(&mut device, &w.data, &cfg).unwrap();
            assert!(r.sorted.windows(2).all(|p| p[0] <= p[1]));
            println!(
                "sorted {} elements (min {}, max {})",
                r.sorted.len(),
                r.sorted[0],
                r.sorted[r.sorted.len() - 1]
            );
            print_report(&r.report, args.breakdown);
        }
        "resilient" => {
            let mut rcfg = ResilienceConfig::default();
            if let Some(ms) = args.time_budget_ms {
                rcfg = rcfg.with_time_budget(SimTime::from_ms(ms));
            }
            let r = resilient_select_on_device(&mut device, &w.data, rank, &cfg, &rcfg)
                .unwrap_or_else(|e| {
                    eprintln!("selection failed: {e}");
                    exit(1);
                });
            match r.outcome {
                Outcome::Exact(value) => {
                    println!("value = {value} (exact, backend {})", r.backend.name());
                    assert_eq!(value, reference_select(&w.data, rank).unwrap());
                }
                Outcome::Approximate {
                    value,
                    achieved_rank,
                    rank_error,
                } => {
                    degraded = true;
                    println!(
                        "value = {value} (approximate under time budget: rank {achieved_rank} \
                         delivered, {rank} requested, error {rank_error})"
                    );
                }
            }
            print_report(&r.report, args.breakdown);
        }
        "stream" => {
            let source = SliceChunks::new(&w.data, 1 << 18);
            let result = match &args.checkpoint {
                Some(path) => streaming_select_with_checkpoint(
                    &mut device,
                    &source,
                    rank,
                    &cfg,
                    std::path::Path::new(path),
                    args.resume,
                ),
                None => streaming_select(&mut device, &source, rank, &cfg),
            };
            let r = result.unwrap_or_else(|e| {
                eprintln!("streaming selection failed: {e}");
                if args.checkpoint.is_some() {
                    eprintln!("(progress checkpointed; rerun with --resume to continue)");
                }
                exit(1);
            });
            println!(
                "value = {} (peak resident {} elements = {:.2}% of n)",
                r.value,
                r.peak_resident,
                r.peak_resident as f64 / args.n as f64 * 100.0
            );
            print_report(&r.report, args.breakdown);
        }
        "shard" => {
            let scfg = ShardConfig::default()
                .with_shards(args.shards)
                .with_hedge(args.hedge);
            let mut faults = ShardFaults::default();
            if let Some(spec) = args.kill_shard {
                println!(
                    "shard kill injection: shard {} dies at recursion level {}",
                    spec.shard, spec.level
                );
                faults = faults.kill_shard(spec.shard, spec.level);
            }
            if args.inject_faults.is_some() || args.inject_bitflips.is_some() {
                // The per-shard devices are built by the driver, so the
                // plan latched on `device` above never fires; rebuild the
                // same plan and pin it to shard 0.
                let plan_seed = args
                    .inject_faults
                    .or(args.inject_bitflips)
                    .expect("one of the fault seeds is set");
                let mut plan = FaultPlan::new(plan_seed);
                if args.inject_faults.is_some() {
                    plan = plan
                        .launch_failures(args.fault_rate)
                        .max_launch_failures(8)
                        .latency_spikes(args.fault_rate / 2.0, 4.0);
                }
                if args.inject_bitflips.is_some() {
                    plan = plan.bitflips(args.bitflip_rate);
                }
                println!("(fault plan applied to shard 0)");
                faults = faults.with_plan(0, plan);
            }
            let r = sharded_select(&arch, pool, &w.data, rank, &cfg, &scfg, &faults)
                .unwrap_or_else(|e| {
                    eprintln!("sharded selection failed: {e}");
                    exit(1);
                });
            match r.outcome {
                Outcome::Exact(value) => {
                    println!("value = {value} (exact, {} shards)", r.report.shards);
                    assert_eq!(value, reference_select(&w.data, rank).unwrap());
                }
                Outcome::Approximate {
                    value,
                    achieved_rank,
                    rank_error,
                } => {
                    degraded = true;
                    println!(
                        "value = {value} (approximate after quorum degradation: rank \
                         {achieved_rank} over survivors, {rank} requested, bounded error \
                         {rank_error})"
                    );
                }
            }
            let rep = &r.report;
            println!(
                "levels: {}, simulated time: {} (link {} / {} bytes)",
                rep.levels, rep.sim_time, rep.link_time, rep.link_bytes
            );
            println!(
                "shards: {} launched, {} stragglers hedged, {} recovered, {} quorum \
                 degradations ({} candidates lost)",
                rep.shards,
                rep.stragglers_hedged,
                rep.shards_recovered,
                rep.quorum_degradations,
                rep.lost_elements
            );
            let ev = &rep.events;
            if !ev.is_clean() || ev.certified > 0 {
                println!(
                    "resilience: {} retries, {} faults observed, {} corruptions detected, \
                     {} certified, {} resumed",
                    ev.retries,
                    ev.faults_observed,
                    ev.corruptions_detected,
                    ev.certified,
                    ev.resumed
                );
                for line in &ev.log {
                    println!("  {line}");
                }
            }
        }
        "cpu" => {
            let t0 = std::time::Instant::now();
            let (value, stats) =
                cpu_sample_select(pool, &w.data, rank, &CpuSelectConfig::default()).unwrap();
            let dt = t0.elapsed();
            println!(
                "value = {value} (wall-clock {dt:?}, {} levels, scanned {} elements)",
                stats.levels, stats.elements_scanned
            );
        }
        other => {
            eprintln!("unknown algorithm {other}\n{HELP}");
            exit(2);
        }
    }

    if args.sanitize {
        let findings = device.sanitizer_findings();
        if findings.is_empty() {
            println!(
                "\nsanitizer: clean — no findings across {} launches",
                device.records().len()
            );
        } else {
            println!("\nsanitizer: FINDINGS");
            for (kernel, report) in &findings {
                println!(
                    "  {kernel}: {} finding(s){}",
                    report.findings.len(),
                    if report.truncated > 0 {
                        format!(" (+{} truncated)", report.truncated)
                    } else {
                        String::new()
                    }
                );
                for f in report.findings.iter().take(5) {
                    println!("    {f}");
                }
            }
        }
        if let Some(path) = &args.sanitize_json {
            std::fs::write(path, device.sanitizer_json()).expect("failed to write sanitizer json");
            println!("sanitizer report written to {path}");
        }
        if !findings.is_empty() {
            exit(3);
        }
    }

    if device.has_fault() {
        eprintln!(
            "\nwarning: an injected fault was latched but never consumed — this \
             algorithm does not poll for faults, so its outputs would be garbage \
             on real hardware; rerun with --algo resilient"
        );
    }

    let obs_report = obs_session.map(ObsSession::finish);

    if let Some(path) = &args.metrics {
        let report = obs_report.as_ref().expect("session started for --metrics");
        let body = if path.ends_with(".prom") {
            report.snapshot.to_prometheus()
        } else {
            report.snapshot.to_json()
        };
        std::fs::write(path, body).expect("failed to write metrics");
        println!("\nmetrics written to {path}");
    }

    if let Some(path) = &args.span_log {
        let report = obs_report.as_ref().expect("session started for --span-log");
        std::fs::write(path, report.span_log()).expect("failed to write span log");
        println!("span log written to {path}");
    }

    if let Some(path) = &args.trace {
        let tracks: &[_] = obs_report
            .as_ref()
            .map(|r| r.tracks.as_slice())
            .unwrap_or(&[]);
        let json = gpu_selection::gpu_sim::chrome_trace_with_counters(&device, tracks);
        std::fs::write(path, json).expect("failed to write trace");
        println!("\nchrome trace written to {path} (open in chrome://tracing or ui.perfetto.dev)");
    }

    if degraded {
        exit(EXIT_APPROX);
    }
}
