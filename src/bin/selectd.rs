//! `selectd` — the selection service daemon.
//!
//! Boots a [`SelectServer`] (warm pooled devices, bounded admission,
//! per-tenant quotas, deadline degradation, circuit breaking, batching)
//! and speaks the length-prefixed wire protocol of
//! [`sampleselect::server::wire`] over TCP.
//!
//! ```text
//! cargo run --release --bin selectd -- \
//!     [--addr 127.0.0.1:7411] [--workers 2] [--worker-threads 1] \
//!     [--queue-cap 64] [--quota-burst 32] [--quota-refill 256] \
//!     [--batch-max 8] [--breaker-threshold 3] [--breaker-probe 8] \
//!     [--fault-worker W --fault-rate R --fault-seed S] \
//!     [--spool DIR] [--max-n N]
//! ```
//!
//! One connection handles one request at a time (pipelining across
//! queries is the server's job, not the socket's); open several
//! connections for concurrent in-flight queries. A `Drain` request
//! gracefully shuts the whole daemon down and answers with the final
//! metrics snapshot.
//!
//! `--fault-worker` arms a fault plan on that worker's primary device —
//! the supported way to watch the circuit breaker quarantine a flaky
//! device in a live system (used by the `selectd-smoke` CI job).

use std::net::{TcpListener, TcpStream};
use std::process::exit;
use std::sync::Arc;

use gpu_selection::gpu_sim::FaultPlan;
use gpu_selection::sampleselect::server::wire;
use gpu_selection::sampleselect::{BreakerConfig, SelectServer, ServerConfig};

const HELP: &str = "selectd [--addr HOST:PORT] [--workers N] [--worker-threads N] \
[--queue-cap N] [--quota-burst F] [--quota-refill F] [--batch-max N] \
[--breaker-threshold N] [--breaker-probe N] \
[--fault-worker W [--fault-rate R] [--fault-seed S]] [--spool DIR] [--max-n N]";

struct Args {
    addr: String,
    cfg: ServerConfig,
}

fn parse_args() -> Args {
    let mut addr = "127.0.0.1:7411".to_string();
    let mut cfg = ServerConfig::default();
    let mut fault_worker: Option<usize> = None;
    let mut fault_rate = 1.0f64;
    let mut fault_seed = 7u64;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value\n{HELP}");
                exit(2);
            })
        };
        match flag.as_str() {
            "--addr" => addr = val("--addr"),
            "--workers" => cfg.workers = val("--workers").parse().expect("--workers"),
            "--worker-threads" => {
                cfg.worker_threads = val("--worker-threads").parse().expect("--worker-threads")
            }
            "--queue-cap" => cfg.queue_capacity = val("--queue-cap").parse().expect("--queue-cap"),
            "--quota-burst" => {
                cfg.quota.burst = val("--quota-burst").parse().expect("--quota-burst")
            }
            "--quota-refill" => {
                cfg.quota.refill_per_sec = val("--quota-refill").parse().expect("--quota-refill")
            }
            "--batch-max" => cfg.batch_max = val("--batch-max").parse().expect("--batch-max"),
            "--breaker-threshold" => {
                cfg.breaker = BreakerConfig {
                    failure_threshold: val("--breaker-threshold")
                        .parse()
                        .expect("--breaker-threshold"),
                    ..cfg.breaker
                }
            }
            "--breaker-probe" => {
                cfg.breaker = BreakerConfig {
                    probe_after: val("--breaker-probe").parse().expect("--breaker-probe"),
                    ..cfg.breaker
                }
            }
            "--fault-worker" => {
                fault_worker = Some(val("--fault-worker").parse().expect("--fault-worker"))
            }
            "--fault-rate" => fault_rate = val("--fault-rate").parse().expect("--fault-rate"),
            "--fault-seed" => fault_seed = val("--fault-seed").parse().expect("--fault-seed"),
            "--spool" => cfg.spool_dir = Some(val("--spool").into()),
            "--max-n" => cfg.max_dataset_elems = val("--max-n").parse().expect("--max-n"),
            "--help" | "-h" => {
                eprintln!("{HELP}");
                exit(0);
            }
            other => {
                eprintln!("unknown flag {other}\n{HELP}");
                exit(2);
            }
        }
    }
    if let Some(w) = fault_worker {
        cfg = cfg.with_fault_plan(w, FaultPlan::new(fault_seed).launch_failures(fault_rate));
        eprintln!(
            "fault injection armed on worker {w} (rate {fault_rate}, seed {fault_seed}) — \
             expect the circuit breaker to quarantine it"
        );
    }
    Args { addr, cfg }
}

fn handle_connection(mut stream: TcpStream, server: Arc<SelectServer>) {
    loop {
        let payload = match wire::read_frame(&mut stream) {
            Ok(Some(p)) => p,
            Ok(None) => return, // peer closed cleanly
            Err(e) => {
                eprintln!("connection error: {e}");
                return;
            }
        };
        let request = match wire::decode_request(&payload) {
            Ok(r) => r,
            Err(e) => {
                // Protocol errors are unrecoverable mid-stream: answer
                // once, then drop the connection.
                let resp = wire::Response::Rejected {
                    reason: e.to_string(),
                };
                if let Ok(bytes) = wire::encode_response(&resp) {
                    let _ = wire::write_frame(&mut stream, &bytes);
                }
                return;
            }
        };
        let response = match request {
            wire::Request::Ping => wire::Response::Pong,
            wire::Request::Stats => wire::Response::Stats {
                json: server.snapshot().to_json(),
            },
            wire::Request::Query(q) => match server.query(q) {
                Ok(r) => wire::Response::Done {
                    status: r.status,
                    batched: r.batched,
                },
                Err(e) => wire::Response::Rejected {
                    reason: e.to_string(),
                },
            },
            wire::Request::Drain => {
                let snapshot = server.drain();
                let resp = wire::Response::Drained {
                    json: snapshot.to_json(),
                };
                if let Ok(bytes) = wire::encode_response(&resp) {
                    let _ = wire::write_frame(&mut stream, &bytes);
                }
                eprintln!(
                    "selectd drained: {} queries served",
                    snapshot.queries_served
                );
                exit(0);
            }
        };
        match wire::encode_response(&response) {
            Ok(bytes) => {
                if wire::write_frame(&mut stream, &bytes).is_err() {
                    return;
                }
            }
            Err(e) => {
                eprintln!("encode error: {e}");
                return;
            }
        }
    }
}

fn main() {
    let args = parse_args();
    let listener = TcpListener::bind(&args.addr).unwrap_or_else(|e| {
        eprintln!("cannot bind {}: {e}", args.addr);
        exit(1);
    });
    let local = listener.local_addr().expect("bound socket has an address");
    let server = Arc::new(SelectServer::start(args.cfg));
    // CI and scripts parse this line for the actual port (`--addr
    // host:0` binds an ephemeral one).
    println!("selectd listening on {local}");

    for conn in listener.incoming() {
        match conn {
            Ok(stream) => {
                let server = Arc::clone(&server);
                std::thread::spawn(move || handle_connection(stream, server));
            }
            Err(e) => eprintln!("accept failed: {e}"),
        }
    }
}
