//! # gpu-selection
//!
//! A reproduction of *"Approximate and Exact Selection on GPUs"*
//! (Tobias Ribizel, Hartwig Anzt, 2019) as a pure-Rust workspace.
//!
//! The paper's contribution — the **SampleSelect** algorithm, its
//! **approximate** single-level variant, and a heavily engineered
//! **QuickSelect** reference — is implemented in [`sampleselect`], executed
//! either on a warp-accurate SIMT simulator with a per-architecture cost
//! model ([`gpu_sim`]) or on a real multithreaded CPU backend
//! ([`hpc_par`]).
//!
//! This façade crate re-exports every member crate so that examples and
//! downstream users can depend on a single package:
//!
//! ```
//! use gpu_selection::prelude::*;
//!
//! let data: Vec<f32> = (0..10_000).map(|i| (i as f32 * 0.7319).sin()).collect();
//! let k = 1234;
//! let cfg = SampleSelectConfig::default();
//! let result = sample_select(&data, k, &cfg).unwrap();
//!
//! let mut sorted = data.clone();
//! sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
//! assert_eq!(result.value, sorted[k]);
//! ```

pub use gpu_sim;
pub use hpc_par;
pub use sampleselect;
pub use select_baselines as baselines;
pub use select_datagen as datagen;

/// Convenience re-exports of the most frequently used items.
pub mod prelude {
    pub use gpu_sim::arch::{GpuArchitecture, GpuGeneration};
    pub use gpu_sim::cost::SimTime;
    pub use gpu_sim::device::Device;
    pub use gpu_sim::fault::{FaultKind, FaultPlan, LaunchError};
    pub use sampleselect::approx::{approx_select, ApproxResult};
    pub use sampleselect::cpu::cpu_sample_select;
    pub use sampleselect::element::SelectElement;
    pub use sampleselect::params::{AtomicScope, SampleSelectConfig};
    pub use sampleselect::quickselect::quick_select;
    pub use sampleselect::resilient::{
        resilient_select, Backend, Outcome, ResilienceConfig, ResilientResult, RetryPolicy,
    };
    pub use sampleselect::shard::{
        sharded_select, sharded_select_clean, KillSpec, ShardConfig, ShardFaults, ShardTopology,
    };
    pub use sampleselect::topk::top_k_largest;
    pub use sampleselect::{sample_select, SelectError, SelectResult};
    pub use select_datagen::{Distribution, Workload, WorkloadSpec};
}
