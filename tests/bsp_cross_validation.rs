//! Cross-validation of the two SIMT interpretations: the thread-level
//! BSP executor (`gpu_sim::BlockExec`, the slow reference) against the
//! vectorized kernels (`sampleselect::count`, the fast path). Both must
//! produce bit-identical functional results *and* identical atomic
//! collision accounting.

use gpu_selection::gpu_sim::arch::v100;
use gpu_selection::gpu_sim::warp::WARP_SIZE;
use gpu_selection::gpu_sim::{BlockExec, Device, LaunchOrigin};
use gpu_selection::hpc_par::ThreadPool;
use gpu_selection::sampleselect::count::count_kernel;
use gpu_selection::sampleselect::searchtree::SearchTree;
use gpu_selection::sampleselect::{AtomicScope, SampleSelectConfig};

/// The Fig. 4 count kernel written thread-style on the BSP executor:
/// every thread classifies one element via the search tree, then each
/// warp issues one shared-memory atomic instruction.
fn count_thread_style(data: &[f32], tree: &SearchTree<f32>) -> (Vec<u32>, BlockExec) {
    let threads = data.len().next_multiple_of(WARP_SIZE);
    let b = tree.num_buckets();
    let mut block = BlockExec::new(threads, b);
    for warp_start in (0..data.len()).step_by(WARP_SIZE) {
        let wlen = WARP_SIZE.min(data.len() - warp_start);
        let targets: Vec<u32> = (0..wlen)
            .map(|lane| tree.lookup(data[warp_start + lane]))
            .collect();
        block.warp_shared_atomic_add(0, &targets);
    }
    let counts = block.shared()[..b].to_vec();
    (counts, block)
}

#[test]
fn bsp_and_vectorized_count_agree_functionally() {
    let tree = SearchTree::build(&[10.0f32, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0]);
    let data: Vec<f32> = (0..992).map(|i| ((i * 37) % 80) as f32).collect();

    let (bsp_counts, _) = count_thread_style(&data, &tree);

    let pool = ThreadPool::new(1);
    let mut device = Device::new(v100(), &pool);
    // one block, no aggregation, shared scope — the setting the BSP
    // kernel models
    let cfg = SampleSelectConfig::default()
        .with_buckets(8)
        .with_atomic_scope(AtomicScope::Shared)
        .with_warp_aggregation(false);
    let result = count_kernel(&mut device, &data, &tree, &cfg, true, LaunchOrigin::Host);

    let vec_counts: Vec<u32> = result.counts.iter().map(|&c| c as u32).collect();
    assert_eq!(bsp_counts, vec_counts);
}

#[test]
fn bsp_and_vectorized_collision_accounting_agree() {
    // Duplicate-heavy data maximizes collisions; both paths must charge
    // the exact same warp-op and replay counts.
    let tree = SearchTree::build(&[1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
    let data: Vec<f32> = (0..640).map(|i| ((i / 71) % 3) as f32 * 2.5).collect();

    let (_, block) = count_thread_style(&data, &tree);

    let pool = ThreadPool::new(1);
    let mut device = Device::new(v100(), &pool);
    let cfg = SampleSelectConfig::default()
        .with_buckets(8)
        .with_atomic_scope(AtomicScope::Shared)
        .with_warp_aggregation(false);
    count_kernel(&mut device, &data, &tree, &cfg, true, LaunchOrigin::Host);
    let vec_cost = device.records()[0].cost;

    assert_eq!(
        block.cost.shared_atomic_warp_ops,
        vec_cost.shared_atomic_warp_ops
    );
    assert_eq!(
        block.cost.shared_atomic_replays,
        vec_cost.shared_atomic_replays
    );
}

#[test]
fn bsp_ballot_matches_fig6_aggregation_mask() {
    // The Fig. 6 warp-aggregation loop run through the BSP ballot
    // primitive equals the match_any reference.
    use gpu_selection::gpu_sim::warp::{active_mask, match_any};
    let values: Vec<u32> = (0..32).map(|i| (i * 7) % 8).collect();
    let mut block = BlockExec::new(32, 0);

    let mut masks = vec![active_mask(32); 32];
    for bit in 0..3 {
        let preds: Vec<bool> = values.iter().map(|v| v & (1 << bit) != 0).collect();
        let step = block.warp_ballot(&preds);
        for (lane, mask) in masks.iter_mut().enumerate() {
            if preds[lane] {
                *mask &= step;
            } else {
                *mask &= !step;
            }
        }
    }
    assert_eq!(masks, match_any(&values));
    assert_eq!(block.cost.warp_intrinsics, 3, "tree_height ballots charged");
}
