//! Concurrent use of pooled devices — the buffer-pool guarantees the
//! `selectd` server leans on. Each server worker owns a warm pooled
//! device and sessions interleave arbitrarily, so the pool must (a)
//! never hand two live leases the same allocation, (b) keep poisoned
//! regions quarantined regardless of how queries interleave across
//! sessions, and (c) report stats that sum coherently across sessions.

use std::sync::{Arc, Barrier};

use gpu_selection::gpu_sim::arch::v100;
use gpu_selection::gpu_sim::{BufferPool, Device, FaultPlan};
use gpu_selection::hpc_par::ThreadPool;
use gpu_selection::sampleselect::element::reference_select;
use gpu_selection::sampleselect::recursion::sample_select_with_workspace;
use gpu_selection::sampleselect::server::dataset::{self, DatasetSpec};
use gpu_selection::sampleselect::server::QuotaConfig;
use gpu_selection::sampleselect::{
    QueryKind, QueryRequest, QueryStatus, SampleSelectConfig, SelectServer, SelectWorkspace,
    ServerConfig,
};

fn small_cfg() -> SampleSelectConfig {
    SampleSelectConfig::default()
        .with_buckets(8)
        .with_oversampling(2)
        .with_base_case(16)
}

/// Two live leases from one pool must never alias, and recycling must
/// not leak one lease's bytes into a concurrently held one.
#[test]
fn live_leases_never_alias() {
    let mut pool = BufferPool::new();
    let mut a: Vec<u64> = pool.acquire(1024, "counts");
    let mut b: Vec<u64> = pool.acquire(1024, "counts");
    assert_ne!(
        a.as_ptr(),
        b.as_ptr(),
        "two live leases for the same tag share an allocation"
    );
    a.resize(1024, 0);
    b.resize(1024, 0);
    a.fill(0xAAAA_AAAA_AAAA_AAAA);
    b.fill(0xBBBB_BBBB_BBBB_BBBB);
    assert!(a.iter().all(|&x| x == 0xAAAA_AAAA_AAAA_AAAA));

    // Recycle one; a re-acquire may reuse its allocation, but must not
    // disturb the still-live lease.
    pool.recycle("counts", b);
    let c: Vec<u64> = pool.acquire(1024, "counts");
    assert_ne!(a.as_ptr(), c.as_ptr());
    assert!(a.iter().all(|&x| x == 0xAAAA_AAAA_AAAA_AAAA));
}

/// Interleave queries across two pooled sessions in lockstep, with one
/// session under guaranteed corruption injection. The poisoned region
/// must stay quarantined on the faulted device, and the clean device's
/// results must be unaffected by the interleaving.
#[test]
fn poisoned_region_quarantine_holds_under_interleaved_sessions() {
    let data: Vec<i32> = (0..4096)
        .map(|i| (i * 2654435761u64 as i64 % 4096) as i32)
        .collect();
    let expect = reference_select(&data, 2048).unwrap();
    let barrier = Arc::new(Barrier::new(2));

    let run = |inject: bool, barrier: Arc<Barrier>, data: Vec<i32>| {
        std::thread::spawn(move || {
            let cfg = small_cfg();
            let pool = ThreadPool::new(1);
            let mut device = Device::new(v100(), &pool);
            device.enable_buffer_pool();
            let mut ws: SelectWorkspace<i32> = SelectWorkspace::new();
            if inject {
                // Access 1 is the level-0 counts buffer: guaranteed to
                // corrupt (and so poison) a pool-recycled region.
                device.set_fault_plan(FaultPlan::new(3).corrupt_accesses_at(&[1]));
            }
            barrier.wait();
            let first = sample_select_with_workspace(&mut device, &data, 2048, &cfg, &mut ws);
            if inject {
                device.clear_fault_plan();
            } else {
                first.as_ref().expect("clean session must not fail");
            }
            device.clear_fault_plan();
            device.reset();
            barrier.wait();
            // Second round on both sessions, again in lockstep.
            let second =
                sample_select_with_workspace(&mut device, &data, 2048, &cfg, &mut ws).unwrap();
            let stats = device.buffer_pool_stats().expect("pool armed");
            (second.value, stats)
        })
    };

    let faulted = run(true, Arc::clone(&barrier), data.clone());
    let clean = run(false, Arc::clone(&barrier), data.clone());
    let (faulted_value, faulted_stats) = faulted.join().unwrap();
    let (clean_value, clean_stats) = clean.join().unwrap();

    assert_eq!(faulted_value, expect, "post-quarantine query must be exact");
    assert_eq!(clean_value, expect);
    assert!(
        faulted_stats.poisoned_dropped > 0,
        "corrupted buffer must have been quarantined: {faulted_stats:?}"
    );
    assert_eq!(
        clean_stats.poisoned_dropped, 0,
        "quarantine must not leak across sessions: {clean_stats:?}"
    );
}

/// Pool stats must stay coherent per session and sum across a server's
/// worker sessions: every acquire is a hit or a miss, and recycled
/// plus poisoned-dropped never exceeds acquires.
#[test]
fn pool_stats_sum_coherently_across_concurrent_sessions() {
    let sessions = 3;
    let queries_per_session = 5;
    let data: Vec<i32> = (0..8192).map(|i| i * 37 % 4096).collect();
    let expect = reference_select(&data, 4000).unwrap();
    let barrier = Arc::new(Barrier::new(sessions));

    let handles: Vec<_> = (0..sessions)
        .map(|_| {
            let barrier = Arc::clone(&barrier);
            let data = data.clone();
            std::thread::spawn(move || {
                let cfg = small_cfg();
                let pool = ThreadPool::new(1);
                let mut device = Device::new(v100(), &pool);
                device.enable_buffer_pool();
                let mut ws: SelectWorkspace<i32> = SelectWorkspace::new();
                barrier.wait();
                for _ in 0..queries_per_session {
                    let r = sample_select_with_workspace(&mut device, &data, 4000, &cfg, &mut ws)
                        .unwrap();
                    assert_eq!(r.value, expect);
                    device.reset();
                }
                device.buffer_pool_stats().expect("pool armed")
            })
        })
        .collect();

    let stats: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let mut total_acquires = 0;
    for s in &stats {
        assert_eq!(s.acquires, s.hits + s.misses, "acquire taxonomy: {s:?}");
        assert!(
            s.recycled + s.poisoned_dropped <= s.acquires,
            "returns exceed leases: {s:?}"
        );
        assert!(s.hits > 0, "warm reuse must kick in across queries: {s:?}");
        total_acquires += s.acquires;
    }
    // Identical query streams on identical devices: per-session stats
    // must agree, and the fleet total is exactly sessions × one run.
    for s in &stats[1..] {
        assert_eq!(s, &stats[0], "sessions diverged");
    }
    assert_eq!(total_acquires, stats[0].acquires * sessions as u64);
}

/// End-to-end: a multi-worker server hammered by parallel submitters
/// keeps every answer exact — pooled buffers never cross queries in a
/// way that changes results — and per-tenant accounting adds up.
#[test]
fn server_under_parallel_submitters_stays_exact() {
    let server = Arc::new(SelectServer::start(
        ServerConfig::default()
            .with_workers(3)
            .with_queue_capacity(256)
            .with_quota(QuotaConfig::default().with_burst(1e9)),
    ));
    let submitters = 4;
    let per_submitter = 6;
    let spec = DatasetSpec::uniform(10_000, 42);
    let data = dataset::instantiate(&spec);

    let handles: Vec<_> = (0..submitters)
        .map(|s| {
            let server = Arc::clone(&server);
            let data = data.clone();
            std::thread::spawn(move || {
                for i in 0..per_submitter {
                    let rank = (1 + s * per_submitter + i) as u64 * 300;
                    let resp = server
                        .query(QueryRequest {
                            tenant: format!("sub-{s}"),
                            kind: QueryKind::Exact { rank },
                            dataset: spec,
                            deadline_ms: None,
                            seed: (s * 1000 + i) as u64,
                        })
                        .expect("admitted");
                    match resp.status {
                        QueryStatus::Exact { value } => assert_eq!(
                            value.to_bits(),
                            reference_select(&data, rank as usize).unwrap().to_bits()
                        ),
                        other => panic!("expected exact, got {other:?}"),
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let snap = server.drain();
    assert_eq!(snap.queries_served, (submitters * per_submitter) as u64);
    let total_admitted: u64 = snap.tenants.iter().map(|(_, c)| c.admitted).sum();
    let total_exact: u64 = snap.tenants.iter().map(|(_, c)| c.exact).sum();
    assert_eq!(total_admitted, (submitters * per_submitter) as u64);
    assert_eq!(
        total_exact, total_admitted,
        "every admitted query answered exactly"
    );
}
