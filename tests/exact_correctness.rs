//! Cross-crate correctness: every selection algorithm on every
//! distribution, element type, and rank position must agree with the
//! reference (`select_nth_unstable`, the Rust analogue of the paper's
//! `std::nth_element` validation, §V-A).

use gpu_selection::baselines::{bucket_select_on_device, radix_select_on_device};
use gpu_selection::datagen::{Distribution, RankChoice, WorkloadSpec};
use gpu_selection::gpu_sim::arch::{c2070, k20xm, v100};
use gpu_selection::gpu_sim::Device;
use gpu_selection::hpc_par::ThreadPool;
use gpu_selection::sampleselect::cpu::{cpu_sample_select, CpuSelectConfig};
use gpu_selection::sampleselect::element::reference_select;
use gpu_selection::sampleselect::{
    quick_select_on_device, sample_select_on_device, SampleSelectConfig,
};

const N: usize = 50_000;

fn distributions() -> Vec<Distribution> {
    vec![
        Distribution::Uniform,
        Distribution::UniformDistinct { distinct: 1 },
        Distribution::UniformDistinct { distinct: 16 },
        Distribution::UniformDistinct { distinct: 1024 },
        Distribution::Normal {
            mean: 0.0,
            std_dev: 3.0,
        },
        Distribution::Exponential { lambda: 0.5 },
        Distribution::SortedAscending,
        Distribution::SortedDescending,
        Distribution::ClusteredOutliers,
        Distribution::GeometricCascade,
    ]
}

fn ranks(n: usize) -> Vec<usize> {
    vec![0, 1, n / 4, n / 2, n - 2, n - 1]
}

#[test]
fn sampleselect_matches_reference_everywhere() {
    let pool = ThreadPool::new(2);
    let cfg = SampleSelectConfig::default();
    for dist in distributions() {
        let spec = WorkloadSpec {
            n: N,
            distribution: dist,
            rank: RankChoice::Median,
            seed: 11,
        };
        let w = spec.instantiate::<f32>(0);
        for rank in ranks(N) {
            let mut device = Device::new(v100(), &pool);
            let got = sample_select_on_device(&mut device, &w.data, rank, &cfg)
                .unwrap()
                .value;
            let expected = reference_select(&w.data, rank).unwrap();
            assert_eq!(
                got.to_bits(),
                expected.to_bits(),
                "{} rank {rank}",
                dist.label()
            );
        }
    }
}

#[test]
fn quickselect_matches_reference_everywhere() {
    let pool = ThreadPool::new(2);
    let cfg = SampleSelectConfig::default();
    for dist in distributions() {
        let spec = WorkloadSpec {
            n: N,
            distribution: dist,
            rank: RankChoice::Median,
            seed: 12,
        };
        let w = spec.instantiate::<f32>(0);
        for rank in [0, N / 2, N - 1] {
            let mut device = Device::new(v100(), &pool);
            let got = quick_select_on_device(&mut device, &w.data, rank, &cfg)
                .unwrap()
                .value;
            assert_eq!(
                got.to_bits(),
                reference_select(&w.data, rank).unwrap().to_bits(),
                "{} rank {rank}",
                dist.label()
            );
        }
    }
}

#[test]
fn baselines_match_reference_everywhere() {
    let pool = ThreadPool::new(2);
    let cfg = SampleSelectConfig::default();
    for dist in distributions() {
        let spec = WorkloadSpec {
            n: N,
            distribution: dist,
            rank: RankChoice::Median,
            seed: 13,
        };
        let w = spec.instantiate::<f32>(0);
        let rank = N / 3;
        let expected = reference_select(&w.data, rank).unwrap();
        let mut device = Device::new(v100(), &pool);
        let bucket = bucket_select_on_device(&mut device, &w.data, rank, &cfg)
            .unwrap()
            .value;
        assert_eq!(
            bucket.to_bits(),
            expected.to_bits(),
            "bucketselect {}",
            dist.label()
        );
        let radix = radix_select_on_device(&mut device, &w.data, rank, &cfg)
            .unwrap()
            .value;
        assert_eq!(
            radix.to_bits(),
            expected.to_bits(),
            "radixselect {}",
            dist.label()
        );
    }
}

#[test]
fn cpu_backend_matches_reference_everywhere() {
    let pool = ThreadPool::new(4);
    let cfg = CpuSelectConfig::default();
    for dist in distributions() {
        let spec = WorkloadSpec {
            n: N * 4, // CPU backend is fast; exercise a larger input
            distribution: dist,
            rank: RankChoice::Median,
            seed: 14,
        };
        let w = spec.instantiate::<f32>(0);
        let rank = w.data.len() / 2;
        let (got, _) = cpu_sample_select(&pool, &w.data, rank, &cfg).unwrap();
        assert_eq!(
            got.to_bits(),
            reference_select(&w.data, rank).unwrap().to_bits(),
            "{}",
            dist.label()
        );
    }
}

#[test]
fn all_element_types_select_correctly() {
    let pool = ThreadPool::new(2);
    let cfg = SampleSelectConfig::default();

    macro_rules! check {
        ($t:ty, $gen:expr) => {{
            let data: Vec<$t> = (0..N).map($gen).collect();
            let rank = N / 2;
            let mut device = Device::new(v100(), &pool);
            let got = sample_select_on_device(&mut device, &data, rank, &cfg)
                .unwrap()
                .value;
            assert_eq!(got, reference_select(&data, rank).unwrap(), stringify!($t));
        }};
    }

    check!(f32, |i| ((i * 2654435761) % 100_000) as f32 * 0.01 - 500.0);
    check!(f64, |i| ((i * 2654435761) % 100_000) as f64 * 1e-3);
    check!(u32, |i| (i as u32).wrapping_mul(2654435761));
    check!(u64, |i| (i as u64).wrapping_mul(0x9E3779B97F4A7C15));
    check!(i32, |i| (i as u32).wrapping_mul(2654435761) as i32);
    check!(i64, |i| (i as u64).wrapping_mul(0x9E3779B97F4A7C15) as i64);
}

#[test]
fn identical_results_across_architectures() {
    // The functional layer is architecture-independent: only simulated
    // time differs.
    let pool = ThreadPool::new(2);
    let w = WorkloadSpec::uniform(N, 15).instantiate::<f32>(0);
    let mut values = Vec::new();
    for arch in [c2070(), k20xm(), v100()] {
        let cfg = SampleSelectConfig::tuned_for(&arch);
        let mut device = Device::new(arch, &pool);
        values.push(
            sample_select_on_device(&mut device, &w.data, w.rank, &cfg)
                .unwrap()
                .value,
        );
    }
    assert!(values.windows(2).all(|v| v[0] == v[1]));
    assert_eq!(values[0], reference_select(&w.data, w.rank).unwrap());
}

#[test]
fn every_rank_of_a_small_input_is_correct() {
    // Exhaustive rank sweep on a smaller input: catches off-by-one
    // boundary errors between buckets and the base case.
    let pool = ThreadPool::new(2);
    let cfg = SampleSelectConfig::default()
        .with_buckets(16)
        .with_base_case(64)
        .with_oversampling(2);
    let w = WorkloadSpec::with_distinct(3000, 100, 16).instantiate::<f32>(0);
    let mut sorted = w.data.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    for (rank, &expected) in sorted.iter().enumerate() {
        let mut device = Device::new(v100(), &pool);
        let got = sample_select_on_device(&mut device, &w.data, rank, &cfg)
            .unwrap()
            .value;
        assert_eq!(got, expected, "rank {rank}");
    }
}
