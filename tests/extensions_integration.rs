//! Cross-crate integration tests for the future-work extensions:
//! streaming selection over datagen distributions, multiselect and
//! samplesort consistency, bottom-k/top-k duality, and trace export of
//! real runs.

use gpu_selection::datagen::{Distribution, RankChoice, WorkloadSpec};
use gpu_selection::gpu_sim::arch::{k20xm, v100};
use gpu_selection::gpu_sim::{trace_events, Device};
use gpu_selection::hpc_par::ThreadPool;
use gpu_selection::sampleselect::element::reference_select;
use gpu_selection::sampleselect::multiselect::multi_select_on_device;
use gpu_selection::sampleselect::samplesort::sample_sort_on_device;
use gpu_selection::sampleselect::streaming::{streaming_select, SliceChunks};
use gpu_selection::sampleselect::topk::{bottom_k_smallest_on_device, top_k_largest_on_device};
use gpu_selection::sampleselect::SampleSelectConfig;

const N: usize = 100_000;

fn workloads() -> Vec<WorkloadSpec> {
    [
        Distribution::Uniform,
        Distribution::UniformDistinct { distinct: 16 },
        Distribution::ClusteredOutliers,
        Distribution::SortedDescending,
    ]
    .into_iter()
    .map(|distribution| WorkloadSpec {
        n: N,
        distribution,
        rank: RankChoice::Median,
        seed: 77,
    })
    .collect()
}

#[test]
fn streaming_matches_in_memory_on_every_distribution() {
    let pool = ThreadPool::new(2);
    let cfg = SampleSelectConfig::default();
    for spec in workloads() {
        let w = spec.instantiate::<f32>(0);
        let mut device = Device::new(v100(), &pool);
        let source = SliceChunks::new(&w.data, 1 << 14);
        let res = streaming_select(&mut device, &source, w.rank, &cfg).unwrap();
        assert_eq!(
            res.value.to_bits(),
            reference_select(&w.data, w.rank).unwrap().to_bits(),
            "{}",
            w.label
        );
    }
}

#[test]
fn multiselect_is_consistent_with_samplesort() {
    // The two extensions must agree: multiselect's values at ranks R
    // equal the samplesorted array at positions R.
    let pool = ThreadPool::new(2);
    let cfg = SampleSelectConfig::default();
    let w = WorkloadSpec::uniform(N, 78).instantiate::<f32>(0);
    let ranks: Vec<usize> = (0..10).map(|i| i * N / 10).collect();

    let mut device = Device::new(v100(), &pool);
    let multi = multi_select_on_device(&mut device, &w.data, &ranks, &cfg).unwrap();
    device.reset();
    let sorted = sample_sort_on_device(&mut device, &w.data, &cfg).unwrap();
    for (i, &rank) in ranks.iter().enumerate() {
        assert_eq!(multi.values[i].to_bits(), sorted.sorted[rank].to_bits());
    }
}

#[test]
fn bottom_k_and_top_k_tile_the_input() {
    let pool = ThreadPool::new(2);
    let cfg = SampleSelectConfig::default();
    let w = WorkloadSpec::uniform(N, 79).instantiate::<f32>(0);
    let k = N / 4;
    let mut device = Device::new(v100(), &pool);
    let bottom = bottom_k_smallest_on_device(&mut device, &w.data, k, &cfg).unwrap();
    let top = top_k_largest_on_device(&mut device, &w.data, N - k, &cfg).unwrap();
    // bottom-k ∪ top-(n-k) = the whole input (as multisets)
    let mut combined: Vec<u32> = bottom
        .elements
        .iter()
        .chain(top.elements.iter())
        .map(|x| x.to_bits())
        .collect();
    let mut expected: Vec<u32> = w.data.iter().map(|x| x.to_bits()).collect();
    combined.sort_unstable();
    expected.sort_unstable();
    assert_eq!(combined, expected);
    // thresholds are adjacent ranks
    let mut sorted = w.data.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    assert_eq!(bottom.threshold, sorted[k - 1]);
    assert_eq!(top.threshold, sorted[k]);
}

#[test]
fn trace_export_covers_a_full_run_in_order() {
    let pool = ThreadPool::new(2);
    let cfg = SampleSelectConfig::default();
    let w = WorkloadSpec::uniform(N, 80).instantiate::<f32>(0);
    let mut device = Device::new(v100(), &pool);
    gpu_selection::sampleselect::sample_select_on_device(&mut device, &w.data, w.rank, &cfg)
        .unwrap();
    let events = trace_events(&device);
    assert_eq!(events.len(), device.records().len() * 2);
    // strictly ordered timeline
    let mut last_end = 0.0f64;
    for ev in &events {
        assert!(ev.ts >= last_end - 1e-9, "overlap at {}", ev.name);
        last_end = ev.ts + ev.dur;
    }
    // the JSON serializes
    let json = gpu_selection::gpu_sim::chrome_trace(&device);
    assert!(json.len() > 100);
}

#[test]
fn streaming_matches_across_architectures() {
    let pool = ThreadPool::new(2);
    let w = WorkloadSpec::with_distinct(N, 1024, 81).instantiate::<f32>(0);
    let mut results = Vec::new();
    for arch in [k20xm(), v100()] {
        let cfg = SampleSelectConfig::tuned_for(&arch);
        let mut device = Device::new(arch, &pool);
        let source = SliceChunks::new(&w.data, 1 << 13);
        results.push(
            streaming_select(&mut device, &source, w.rank, &cfg)
                .unwrap()
                .value,
        );
    }
    assert_eq!(results[0], results[1]);
    assert_eq!(results[0], reference_select(&w.data, w.rank).unwrap());
}
