//! Failure-injection tests: every driver must reject malformed input
//! with the right error, never panic, and never return garbage — and
//! under *injected device/I/O faults*, the resilient driver must keep
//! returning the exact answer (or a tagged approximation) with a
//! deterministic record of what it took.

use gpu_selection::baselines::{bucket_select, radix_select};
use gpu_selection::gpu_sim::arch::v100;
use gpu_selection::gpu_sim::{Device, FaultPlan, SimTime};
use gpu_selection::hpc_par::ThreadPool;
use gpu_selection::sampleselect::cpu::{cpu_sample_select, CpuSelectConfig};
use gpu_selection::sampleselect::element::reference_select;
use gpu_selection::sampleselect::streaming::{streaming_select, ChunkError, ChunkSource};
use gpu_selection::sampleselect::topk::kth_largest;
use gpu_selection::sampleselect::{
    approx_select, quick_select, resilient_select_on_device, resilient_streaming_select,
    sample_select, top_k_largest, Backend, ConfigError, Outcome, ResilienceConfig,
    SampleSelectConfig, SelectError,
};
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

fn cfg() -> SampleSelectConfig {
    SampleSelectConfig::default()
}

#[test]
fn empty_input_rejected_by_every_driver() {
    let empty: Vec<f32> = vec![];
    assert_eq!(
        sample_select(&empty, 0, &cfg()).unwrap_err(),
        SelectError::EmptyInput
    );
    assert_eq!(
        quick_select(&empty, 0, &cfg()).unwrap_err(),
        SelectError::EmptyInput
    );
    assert_eq!(
        approx_select(&empty, 0, &cfg()).unwrap_err(),
        SelectError::EmptyInput
    );
    assert_eq!(
        bucket_select(&empty, 0, &cfg()).unwrap_err(),
        SelectError::EmptyInput
    );
    assert_eq!(
        radix_select(&empty, 0, &cfg()).unwrap_err(),
        SelectError::EmptyInput
    );
    let pool = ThreadPool::new(1);
    assert_eq!(
        cpu_sample_select(&pool, &empty, 0, &CpuSelectConfig::default()).unwrap_err(),
        SelectError::EmptyInput
    );
}

#[test]
fn out_of_range_rank_rejected_by_every_driver() {
    let data = vec![1.0f32, 2.0, 3.0];
    for rank in [3usize, 100] {
        assert!(matches!(
            sample_select(&data, rank, &cfg()).unwrap_err(),
            SelectError::RankOutOfRange { .. }
        ));
        assert!(matches!(
            quick_select(&data, rank, &cfg()).unwrap_err(),
            SelectError::RankOutOfRange { .. }
        ));
        assert!(matches!(
            approx_select(&data, rank, &cfg()).unwrap_err(),
            SelectError::RankOutOfRange { .. }
        ));
        assert!(matches!(
            bucket_select(&data, rank, &cfg()).unwrap_err(),
            SelectError::RankOutOfRange { .. }
        ));
        assert!(matches!(
            radix_select(&data, rank, &cfg()).unwrap_err(),
            SelectError::RankOutOfRange { .. }
        ));
    }
}

#[test]
fn nan_rejected_when_validation_enabled() {
    let mut config = cfg();
    config.check_input = true;
    let data = vec![1.0f32, 2.0, f32::NAN, 4.0];
    assert_eq!(
        sample_select(&data, 0, &config).unwrap_err(),
        SelectError::NanInput { index: 2 }
    );
    assert_eq!(
        quick_select(&data, 0, &config).unwrap_err(),
        SelectError::NanInput { index: 2 }
    );
    // validation off: no panic (result quality is unspecified for NaN
    // inputs, but execution must stay safe)
    let mut permissive = cfg();
    permissive.check_input = false;
    let _ = sample_select(&data, 0, &permissive);
}

#[test]
fn invalid_configs_rejected_with_specific_errors() {
    let data = vec![1.0f32; 100];
    let bad_buckets = cfg().with_buckets(48);
    assert_eq!(
        sample_select(&data, 0, &bad_buckets).unwrap_err(),
        SelectError::InvalidConfig(ConfigError::InvalidBucketCount(48))
    );
    let too_many = cfg().with_buckets(512);
    assert_eq!(
        sample_select(&data, 0, &too_many).unwrap_err(),
        SelectError::InvalidConfig(ConfigError::TooManyBucketsForOracles(512))
    );
    let bad_threads = cfg().with_threads(100);
    assert_eq!(
        sample_select(&data, 0, &bad_threads).unwrap_err(),
        SelectError::InvalidConfig(ConfigError::InvalidThreadsPerBlock(100))
    );
    let bad_unroll = cfg().with_items_per_thread(0);
    assert!(matches!(
        sample_select(&data, 0, &bad_unroll).unwrap_err(),
        SelectError::InvalidConfig(ConfigError::InvalidItemsPerThread(0))
    ));
    let bad_oversampling = cfg().with_oversampling(0);
    assert!(matches!(
        sample_select(&data, 0, &bad_oversampling).unwrap_err(),
        SelectError::InvalidConfig(ConfigError::InvalidOversampling(0))
    ));
}

#[test]
fn topk_boundary_ks() {
    let data = vec![3.0f32, 1.0, 2.0];
    assert!(matches!(
        top_k_largest(&data, 0, &cfg()).unwrap_err(),
        SelectError::RankOutOfRange { .. }
    ));
    assert!(matches!(
        top_k_largest(&data, 4, &cfg()).unwrap_err(),
        SelectError::RankOutOfRange { .. }
    ));
    assert!(matches!(
        kth_largest(&data, 0, &cfg()).unwrap_err(),
        SelectError::RankOutOfRange { .. }
    ));
    let top1 = top_k_largest(&data, 1, &cfg()).unwrap();
    assert_eq!(top1.elements, vec![3.0]);
}

#[test]
fn single_element_input_works_everywhere() {
    let data = vec![42.0f32];
    assert_eq!(sample_select(&data, 0, &cfg()).unwrap().value, 42.0);
    assert_eq!(quick_select(&data, 0, &cfg()).unwrap().value, 42.0);
    assert_eq!(bucket_select(&data, 0, &cfg()).unwrap().value, 42.0);
    assert_eq!(radix_select(&data, 0, &cfg()).unwrap().value, 42.0);
    assert_eq!(top_k_largest(&data, 1, &cfg()).unwrap().threshold, 42.0);
}

#[test]
fn extreme_values_do_not_break_selection() {
    let data = vec![
        f32::MAX,
        f32::MIN,
        0.0,
        -0.0,
        f32::MIN_POSITIVE,
        -f32::MIN_POSITIVE,
        1.0,
        -1.0,
        f32::MAX,
        f32::MIN,
    ];
    let mut sorted = data.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    for (rank, &expected) in sorted.iter().enumerate() {
        let got = sample_select(&data, rank, &cfg()).unwrap().value;
        // Numeric equality: -0.0 and +0.0 are tied under the comparison
        // order, so either bit pattern is a correct answer at their rank.
        assert_eq!(got, expected, "rank {rank}");
    }
}

#[test]
fn all_max_values_terminate() {
    // The equality-bucket saturation path (next_up(MAX) == MAX).
    let data = vec![u32::MAX; 50_000];
    let r = sample_select(&data, 25_000, &cfg()).unwrap();
    assert_eq!(r.value, u32::MAX);
    let r = quick_select(&data, 25_000, &cfg()).unwrap();
    assert_eq!(r.value, u32::MAX);
}

#[test]
fn subnormal_floats_select_correctly() {
    let tiny = f32::MIN_POSITIVE / 8.0; // subnormal
    let data: Vec<f32> = (0..10_000).map(|i| tiny * ((i % 37) as f32)).collect();
    let mut sorted = data.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let got = sample_select(&data, 5_000, &cfg()).unwrap().value;
    assert_eq!(got.to_bits(), sorted[5_000].to_bits());
}

fn gen_data(n: usize, seed: u64) -> Vec<f32> {
    let mut state = seed | 1;
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 11) as f64 / (1u64 << 53) as f64) as f32
        })
        .collect()
}

/// A chunk source whose `target` chunk fails transiently for its first
/// `fail_times` loads, then recovers (deterministic: the counter is the
/// only state).
struct FlakyChunks<'a> {
    data: &'a [f32],
    chunk_len: usize,
    target: usize,
    fail_times: usize,
    failures: AtomicUsize,
}

impl ChunkSource<f32> for FlakyChunks<'_> {
    fn num_chunks(&self) -> usize {
        self.data.len().div_ceil(self.chunk_len).max(1)
    }

    fn load_chunk(&self, idx: usize) -> Result<Vec<f32>, ChunkError> {
        if idx == self.target && self.failures.load(Ordering::SeqCst) < self.fail_times {
            self.failures.fetch_add(1, Ordering::SeqCst);
            return Err(ChunkError {
                chunk: idx,
                message: "injected I/O failure".to_string(),
                transient: true,
            });
        }
        let start = (idx * self.chunk_len).min(self.data.len());
        let end = ((idx + 1) * self.chunk_len).min(self.data.len());
        Ok(self.data[start..end].to_vec())
    }

    fn total_len(&self) -> usize {
        self.data.len()
    }
}

#[test]
fn injected_launch_failure_mid_recursion_still_exact() {
    let data = gen_data(150_000, 0xfa01);
    let rank = 75_000;
    let pool = ThreadPool::new(2);
    let mut device = Device::new(v100(), &pool);
    // Launch #4 is the first level's filter kernel, so the first attempt
    // dies mid-recursion after partial progress.
    device.set_fault_plan(FaultPlan::new(21).fail_launches_at(&[4]));
    let res = resilient_select_on_device(
        &mut device,
        &data,
        rank,
        &SampleSelectConfig::default(),
        &ResilienceConfig::default(),
    )
    .unwrap();
    assert_eq!(
        res.outcome,
        Outcome::Exact(reference_select(&data, rank).unwrap())
    );
    assert_eq!(res.report.resilience.faults_observed, 1);
    assert_eq!(res.report.resilience.retries, 1);
    assert_eq!(res.report.resilience.fallbacks, 0);
    assert_eq!(res.backend, Backend::SampleSelect);
}

#[test]
fn chunk_load_failure_with_eventual_success() {
    let data = gen_data(1 << 17, 0xfa02);
    let rank = 1 << 16;
    let pool = ThreadPool::new(2);
    let mut device = Device::new(v100(), &pool);
    let source = FlakyChunks {
        data: &data,
        chunk_len: 1 << 15,
        target: 1,
        fail_times: 2,
        failures: AtomicUsize::new(0),
    };
    let res = streaming_select(&mut device, &source, rank, &SampleSelectConfig::default()).unwrap();
    assert_eq!(res.value, reference_select(&data, rank).unwrap());
    assert_eq!(res.report.resilience.retries, 2);
    assert!(res
        .report
        .resilience
        .log
        .iter()
        .all(|l| l.to_string().contains("chunk 1")));
}

#[test]
fn budget_exhaustion_degrades_with_valid_rank_bound() {
    let data = gen_data(200_000, 0xfa03);
    let rank = 123_456;
    let pool = ThreadPool::new(2);
    let mut device = Device::new(v100(), &pool);
    let rcfg = ResilienceConfig::default().with_time_budget(SimTime::ZERO);
    let res = resilient_select_on_device(
        &mut device,
        &data,
        rank,
        &SampleSelectConfig::default(),
        &rcfg,
    )
    .unwrap();
    match res.outcome {
        Outcome::Approximate {
            value,
            achieved_rank,
            rank_error,
        } => {
            // The tag must be verifiable against the data itself.
            let true_rank = data.iter().filter(|&&x| x < value).count() as u64;
            assert_eq!(achieved_rank, true_rank, "claimed rank must be exact");
            assert_eq!(rank_error, true_rank.abs_diff(rank as u64));
            // Single-level approximation: error within a few expected
            // bucket widths (n/b ≈ 780 here).
            assert!(
                rank_error < (8 * data.len() / 256) as u64,
                "rank error {rank_error} implausibly large"
            );
        }
        Outcome::Exact(_) => panic!("zero budget must force degradation"),
    }
    assert_eq!(res.report.resilience.degradations, 1);
}

#[test]
fn combined_faults_deterministic_and_exact() {
    // The acceptance scenario: one seeded plan failing >= 1 launch plus
    // a chunk source failing >= 1 load; the resilient streaming driver
    // must return the exact k-th element and an identical event log on
    // every run with the same seeds.
    let data = gen_data(1 << 17, 0xfa04);
    let rank = 99_999;
    let expected = reference_select(&data, rank).unwrap();

    let run = || {
        let pool = ThreadPool::new(2);
        let mut device = Device::new(v100(), &pool);
        device.set_fault_plan(FaultPlan::new(1234).fail_launches_at(&[3]));
        let source = FlakyChunks {
            data: &data,
            chunk_len: 1 << 15,
            target: 2,
            fail_times: 1,
            failures: AtomicUsize::new(0),
        };
        resilient_streaming_select(
            &mut device,
            &source,
            rank,
            &SampleSelectConfig::default(),
            &ResilienceConfig::default(),
        )
        .unwrap()
    };

    let a = run();
    assert_eq!(a.outcome, Outcome::Exact(expected));
    assert!(
        a.report.resilience.faults_observed >= 1,
        "launch fault seen"
    );
    assert!(a.report.resilience.retries >= 1, "retries recorded");

    let b = run();
    assert_eq!(b.outcome, a.outcome);
    assert_eq!(b.backend, a.backend);
    assert_eq!(
        b.report.resilience, a.report.resilience,
        "same seeds must reproduce the exact event log"
    );
    assert_eq!(b.report.total_launches(), a.report.total_launches());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever single backend is knocked out — SampleSelect by early
    /// launch faults, both device backends by a zero depth budget, or
    /// every device kernel by a 100% failure rate — the fallback chain
    /// still produces the exact k-th element.
    #[test]
    fn fallback_chain_is_exact_under_any_single_faulted_backend(
        data in prop::collection::vec(-1000i32..1000, 1..400),
        rank_frac in 0.0f64..1.0,
        scenario in 0usize..3,
    ) {
        let rank = ((data.len() - 1) as f64 * rank_frac) as usize;
        let cfg = SampleSelectConfig::default()
            .with_buckets(8)
            .with_oversampling(2)
            .with_base_case(16);
        let pool = ThreadPool::new(1);
        let mut device = Device::new(v100(), &pool);
        let mut rcfg = ResilienceConfig::default().with_max_retries(1);
        match scenario {
            0 => {
                // kill the first attempts' early launches: SampleSelect
                // must retry or hand over to QuickSelect
                device.set_fault_plan(FaultPlan::new(7).fail_launches_at(&[0, 1, 2]));
            }
            1 => {
                // starve both device recursions of depth
                rcfg = rcfg.with_max_levels(0);
            }
            _ => {
                // no device kernel ever completes: CPU sort territory
                device.set_fault_plan(FaultPlan::new(8).launch_failures(1.0));
            }
        }
        let res = resilient_select_on_device(&mut device, &data, rank, &cfg, &rcfg).unwrap();
        prop_assert_eq!(
            res.outcome,
            Outcome::Exact(reference_select(&data, rank).unwrap())
        );
    }
}

#[test]
fn device_reuse_across_runs_is_clean() {
    // Reusing one device for many selections must not leak state
    // between runs (reports slice only their own records).
    let pool = ThreadPool::new(2);
    let mut device = Device::new(v100(), &pool);
    let data: Vec<f32> = (0..20_000).map(|i| ((i * 31) % 997) as f32).collect();
    let mut launches_prev = 0;
    for rank in [10usize, 5_000, 19_999] {
        let r =
            gpu_selection::sampleselect::sample_select_on_device(&mut device, &data, rank, &cfg())
                .unwrap();
        let launches = r.report.total_launches();
        if launches_prev > 0 {
            // same input, similar work: the per-run report must not
            // accumulate previous runs
            assert!(launches < 2 * launches_prev + 8);
        }
        launches_prev = launches;
    }
}

// ---------------------------------------------------------------------
// Data-plane faults: silent bit flips, ABFT verification, rank
// certification, and checkpoint/resume for streaming jobs.
// ---------------------------------------------------------------------

use gpu_selection::sampleselect::streaming::{streaming_select_with_checkpoint, SliceChunks};
use gpu_selection::sampleselect::verify::rank_bounds;
use gpu_selection::sampleselect::{sample_select_on_device, sample_sort, VerifyPolicy};

/// The acceptance scenario for silent corruption: a fault plan that
/// flips bits in every exposed buffer (splitters, counts, oracles). The
/// resilient driver under paranoid verification must still return the
/// exact k-th element, the detections must show up in the resilience
/// events, the injected corruptions on the kernel trace, and the whole
/// episode must replay identically from the same seeds.
#[test]
fn bitflips_under_paranoid_verify_stay_exact_and_deterministic() {
    let data = gen_data(1 << 17, 0xfa05);
    let rank = 70_000;
    let expected = reference_select(&data, rank).unwrap();

    let run = || {
        let pool = ThreadPool::new(2);
        let mut device = Device::new(v100(), &pool);
        device.set_fault_plan(FaultPlan::new(41).bitflips(1.0));
        let cfg = SampleSelectConfig::default().with_verify(VerifyPolicy::Paranoid);
        let res = resilient_select_on_device(
            &mut device,
            &data,
            rank,
            &cfg,
            &ResilienceConfig::default(),
        )
        .unwrap();
        let corrupt_records = device
            .records()
            .iter()
            .filter(|r| r.name.starts_with("corrupt:"))
            .count();
        (res, corrupt_records)
    };

    let (a, corrupt_a) = run();
    assert_eq!(a.outcome, Outcome::Exact(expected));
    assert!(
        corrupt_a >= 1,
        "injected corruption must appear on the trace"
    );
    assert!(
        a.report.resilience.corruptions_detected >= 1,
        "ABFT checks must notice the corrupted buffers"
    );
    assert!(
        a.report.resilience.certified >= 1,
        "the final answer must carry a rank certificate"
    );

    let (b, corrupt_b) = run();
    assert_eq!(b.outcome, a.outcome);
    assert_eq!(b.backend, a.backend);
    assert_eq!(
        b.report.resilience, a.report.resilience,
        "same fault seed must reproduce the event log"
    );
    assert_eq!(corrupt_b, corrupt_a, "same corruption trace");
}

/// CI fault matrix: `FAULT_MATRIX_CLASS` selects one injected fault
/// class (`launch`, `alloc`, `bitflip`, `chunk-load`) and
/// `FAULT_MATRIX_SEED` overrides its fault seed; with neither set, all
/// four classes run with the default seed. Every class must end in the
/// exact answer regardless of what the injector does.
#[test]
fn fault_matrix_every_class_recovers_exact() {
    let class_env = std::env::var("FAULT_MATRIX_CLASS").ok();
    let seed: u64 = std::env::var("FAULT_MATRIX_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1729);
    let classes: Vec<&str> = match class_env.as_deref() {
        Some(c) => vec![c],
        None => vec!["launch", "alloc", "bitflip", "chunk-load"],
    };
    let data = gen_data(1 << 17, 0xfa06);
    let rank = 50_000;
    let expected = reference_select(&data, rank).unwrap();

    for class in classes {
        let pool = ThreadPool::new(2);
        let mut device = Device::new(v100(), &pool);
        let rcfg = ResilienceConfig::default();
        let outcome = match class {
            "launch" => {
                device.set_fault_plan(
                    FaultPlan::new(seed)
                        .launch_failures(0.2)
                        .max_launch_failures(6),
                );
                resilient_select_on_device(&mut device, &data, rank, &cfg(), &rcfg)
                    .unwrap()
                    .outcome
            }
            "alloc" => {
                device.set_fault_plan(
                    FaultPlan::new(seed)
                        .alloc_failures(0.3)
                        .max_alloc_failures(4),
                );
                resilient_select_on_device(&mut device, &data, rank, &cfg(), &rcfg)
                    .unwrap()
                    .outcome
            }
            "bitflip" => {
                device.set_fault_plan(FaultPlan::new(seed).bitflips(0.5).max_corruptions(8));
                let vcfg = cfg().with_verify(VerifyPolicy::Paranoid);
                resilient_select_on_device(&mut device, &data, rank, &vcfg, &rcfg)
                    .unwrap()
                    .outcome
            }
            "chunk-load" => {
                let source = FlakyChunks {
                    data: &data,
                    chunk_len: 1 << 15,
                    target: 1,
                    fail_times: 2,
                    failures: AtomicUsize::new(0),
                };
                resilient_streaming_select(&mut device, &source, rank, &cfg(), &rcfg)
                    .unwrap()
                    .outcome
            }
            other => panic!("unknown FAULT_MATRIX_CLASS `{other}`"),
        };
        assert_eq!(
            outcome,
            Outcome::Exact(expected),
            "fault class `{class}` (seed {seed}) must recover the exact answer"
        );
    }
}

#[test]
fn killed_streaming_job_resumes_from_checkpoint() {
    let data = gen_data(1 << 16, 0xfa07);
    let rank = 31_337;
    let scfg = SampleSelectConfig::default();
    let ckpt =
        std::env::temp_dir().join(format!("gpu-selection-fm-ckpt-{}.bin", std::process::id()));
    let _ = std::fs::remove_file(&ckpt);
    let pool = ThreadPool::new(2);

    // Uninterrupted reference run.
    let mut device = Device::new(v100(), &pool);
    let healthy = SliceChunks::new(&data, 1 << 13);
    let expected = streaming_select(&mut device, &healthy, rank, &scfg).unwrap();

    // The same job dies at chunk 5 (the source never recovers) but
    // persists its per-chunk progress...
    let mut device = Device::new(v100(), &pool);
    let dying = FlakyChunks {
        data: &data,
        chunk_len: 1 << 13,
        target: 5,
        fail_times: usize::MAX,
        failures: AtomicUsize::new(0),
    };
    let err = streaming_select_with_checkpoint(&mut device, &dying, rank, &scfg, &ckpt, false)
        .unwrap_err();
    assert!(matches!(err, SelectError::ChunkLoad(_)));
    assert!(ckpt.exists(), "checkpoint must survive the crash");

    // ...so the restarted process resumes instead of starting over and
    // lands on the bit-identical answer.
    let mut device = Device::new(v100(), &pool);
    let resumed =
        streaming_select_with_checkpoint(&mut device, &healthy, rank, &scfg, &ckpt, true).unwrap();
    assert_eq!(resumed.value.to_bits(), expected.value.to_bits());
    assert_eq!(resumed.report.resilience.resumed, 1, "resume event logged");
    assert!(!ckpt.exists(), "checkpoint deleted after success");
}

#[test]
fn corrupted_checkpoint_falls_back_to_clean_restart() {
    let data = gen_data(1 << 16, 0xfa08);
    let rank = 9_999;
    let scfg = SampleSelectConfig::default();
    let ckpt = std::env::temp_dir().join(format!(
        "gpu-selection-fm-bad-ckpt-{}.bin",
        std::process::id()
    ));
    std::fs::write(&ckpt, b"SSCKgarbage-that-is-not-a-checkpoint").unwrap();

    let pool = ThreadPool::new(2);
    let mut device = Device::new(v100(), &pool);
    let source = SliceChunks::new(&data, 1 << 13);
    let res =
        streaming_select_with_checkpoint(&mut device, &source, rank, &scfg, &ckpt, true).unwrap();
    assert_eq!(
        res.value.to_bits(),
        reference_select(&data, rank).unwrap().to_bits()
    );
    assert_eq!(
        res.report.resilience.corruptions_detected, 1,
        "checksum rejection must be logged as a detected corruption"
    );
    assert_eq!(res.report.resilience.resumed, 0, "no resume from garbage");
    assert!(!ckpt.exists(), "checkpoint deleted after success");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// NaN orders above every number (`element.rs` total order), so the
    /// samplesort, quickselect, and streaming pipelines must all return
    /// a value occupying the requested rank even when the input carries
    /// NaNs. Ties may resolve to different (bit-equal-ranked)
    /// representatives, so agreement is asserted through the rank
    /// certificate bounds rather than bit equality.
    #[test]
    fn nan_inputs_rank_consistently_across_algorithms(
        mut data in prop::collection::vec(-1.0e6f32..1.0e6, 32..400),
        nan_positions in prop::collection::vec(0usize..400, 1..10),
        rank_frac in 0.0f64..1.0,
    ) {
        let len = data.len();
        for &p in &nan_positions {
            data[p % len] = f32::NAN;
        }
        let rank = ((len - 1) as f64 * rank_frac) as usize;
        let cfg = SampleSelectConfig::default()
            .with_buckets(8)
            .with_oversampling(2)
            .with_base_case(16);
        let pool = ThreadPool::new(1);

        let mut device = Device::new(v100(), &pool);
        let ss = sample_select_on_device(&mut device, &data, rank, &cfg).unwrap().value;
        let qs = quick_select(&data, rank, &cfg).unwrap().value;
        let sorted = sample_sort(&data, &cfg).unwrap().sorted;
        let so = sorted[rank];
        let mut device = Device::new(v100(), &pool);
        let source = SliceChunks::new(&data, 64);
        let st = streaming_select(&mut device, &source, rank, &cfg).unwrap().value;

        for (name, v) in [
            ("samplesort", so),
            ("quickselect", qs),
            ("sampleselect", ss),
            ("streaming", st),
        ] {
            let (below, tied) = rank_bounds(&data, v);
            prop_assert!(
                below <= rank as u64 && (rank as u64) < below + tied,
                "{} returned {:?} occupying ranks [{}, {}) but rank {} was requested",
                name, v, below, below + tied, rank
            );
        }
    }
}
