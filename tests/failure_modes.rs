//! Failure-injection tests: every driver must reject malformed input
//! with the right error, never panic, and never return garbage.

use gpu_selection::baselines::{bucket_select, radix_select};
use gpu_selection::gpu_sim::arch::v100;
use gpu_selection::gpu_sim::Device;
use gpu_selection::hpc_par::ThreadPool;
use gpu_selection::sampleselect::cpu::{cpu_sample_select, CpuSelectConfig};
use gpu_selection::sampleselect::topk::kth_largest;
use gpu_selection::sampleselect::{
    approx_select, quick_select, sample_select, top_k_largest, ConfigError, SampleSelectConfig,
    SelectError,
};

fn cfg() -> SampleSelectConfig {
    SampleSelectConfig::default()
}

#[test]
fn empty_input_rejected_by_every_driver() {
    let empty: Vec<f32> = vec![];
    assert_eq!(
        sample_select(&empty, 0, &cfg()).unwrap_err(),
        SelectError::EmptyInput
    );
    assert_eq!(
        quick_select(&empty, 0, &cfg()).unwrap_err(),
        SelectError::EmptyInput
    );
    assert_eq!(
        approx_select(&empty, 0, &cfg()).unwrap_err(),
        SelectError::EmptyInput
    );
    assert_eq!(
        bucket_select(&empty, 0, &cfg()).unwrap_err(),
        SelectError::EmptyInput
    );
    assert_eq!(
        radix_select(&empty, 0, &cfg()).unwrap_err(),
        SelectError::EmptyInput
    );
    let pool = ThreadPool::new(1);
    assert_eq!(
        cpu_sample_select(&pool, &empty, 0, &CpuSelectConfig::default()).unwrap_err(),
        SelectError::EmptyInput
    );
}

#[test]
fn out_of_range_rank_rejected_by_every_driver() {
    let data = vec![1.0f32, 2.0, 3.0];
    for rank in [3usize, 100] {
        assert!(matches!(
            sample_select(&data, rank, &cfg()).unwrap_err(),
            SelectError::RankOutOfRange { .. }
        ));
        assert!(matches!(
            quick_select(&data, rank, &cfg()).unwrap_err(),
            SelectError::RankOutOfRange { .. }
        ));
        assert!(matches!(
            approx_select(&data, rank, &cfg()).unwrap_err(),
            SelectError::RankOutOfRange { .. }
        ));
        assert!(matches!(
            bucket_select(&data, rank, &cfg()).unwrap_err(),
            SelectError::RankOutOfRange { .. }
        ));
        assert!(matches!(
            radix_select(&data, rank, &cfg()).unwrap_err(),
            SelectError::RankOutOfRange { .. }
        ));
    }
}

#[test]
fn nan_rejected_when_validation_enabled() {
    let mut config = cfg();
    config.check_input = true;
    let data = vec![1.0f32, 2.0, f32::NAN, 4.0];
    assert_eq!(
        sample_select(&data, 0, &config).unwrap_err(),
        SelectError::NanInput { index: 2 }
    );
    assert_eq!(
        quick_select(&data, 0, &config).unwrap_err(),
        SelectError::NanInput { index: 2 }
    );
    // validation off: no panic (result quality is unspecified for NaN
    // inputs, but execution must stay safe)
    let mut permissive = cfg();
    permissive.check_input = false;
    let _ = sample_select(&data, 0, &permissive);
}

#[test]
fn invalid_configs_rejected_with_specific_errors() {
    let data = vec![1.0f32; 100];
    let bad_buckets = cfg().with_buckets(48);
    assert_eq!(
        sample_select(&data, 0, &bad_buckets).unwrap_err(),
        SelectError::InvalidConfig(ConfigError::InvalidBucketCount(48))
    );
    let too_many = cfg().with_buckets(512);
    assert_eq!(
        sample_select(&data, 0, &too_many).unwrap_err(),
        SelectError::InvalidConfig(ConfigError::TooManyBucketsForOracles(512))
    );
    let bad_threads = cfg().with_threads(100);
    assert_eq!(
        sample_select(&data, 0, &bad_threads).unwrap_err(),
        SelectError::InvalidConfig(ConfigError::InvalidThreadsPerBlock(100))
    );
    let bad_unroll = cfg().with_items_per_thread(0);
    assert!(matches!(
        sample_select(&data, 0, &bad_unroll).unwrap_err(),
        SelectError::InvalidConfig(ConfigError::InvalidItemsPerThread(0))
    ));
    let bad_oversampling = cfg().with_oversampling(0);
    assert!(matches!(
        sample_select(&data, 0, &bad_oversampling).unwrap_err(),
        SelectError::InvalidConfig(ConfigError::InvalidOversampling(0))
    ));
}

#[test]
fn topk_boundary_ks() {
    let data = vec![3.0f32, 1.0, 2.0];
    assert!(matches!(
        top_k_largest(&data, 0, &cfg()).unwrap_err(),
        SelectError::RankOutOfRange { .. }
    ));
    assert!(matches!(
        top_k_largest(&data, 4, &cfg()).unwrap_err(),
        SelectError::RankOutOfRange { .. }
    ));
    assert!(matches!(
        kth_largest(&data, 0, &cfg()).unwrap_err(),
        SelectError::RankOutOfRange { .. }
    ));
    let top1 = top_k_largest(&data, 1, &cfg()).unwrap();
    assert_eq!(top1.elements, vec![3.0]);
}

#[test]
fn single_element_input_works_everywhere() {
    let data = vec![42.0f32];
    assert_eq!(sample_select(&data, 0, &cfg()).unwrap().value, 42.0);
    assert_eq!(quick_select(&data, 0, &cfg()).unwrap().value, 42.0);
    assert_eq!(bucket_select(&data, 0, &cfg()).unwrap().value, 42.0);
    assert_eq!(radix_select(&data, 0, &cfg()).unwrap().value, 42.0);
    assert_eq!(top_k_largest(&data, 1, &cfg()).unwrap().threshold, 42.0);
}

#[test]
fn extreme_values_do_not_break_selection() {
    let data = vec![
        f32::MAX,
        f32::MIN,
        0.0,
        -0.0,
        f32::MIN_POSITIVE,
        -f32::MIN_POSITIVE,
        1.0,
        -1.0,
        f32::MAX,
        f32::MIN,
    ];
    let mut sorted = data.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    for (rank, &expected) in sorted.iter().enumerate() {
        let got = sample_select(&data, rank, &cfg()).unwrap().value;
        // Numeric equality: -0.0 and +0.0 are tied under the comparison
        // order, so either bit pattern is a correct answer at their rank.
        assert_eq!(got, expected, "rank {rank}");
    }
}

#[test]
fn all_max_values_terminate() {
    // The equality-bucket saturation path (next_up(MAX) == MAX).
    let data = vec![u32::MAX; 50_000];
    let r = sample_select(&data, 25_000, &cfg()).unwrap();
    assert_eq!(r.value, u32::MAX);
    let r = quick_select(&data, 25_000, &cfg()).unwrap();
    assert_eq!(r.value, u32::MAX);
}

#[test]
fn subnormal_floats_select_correctly() {
    let tiny = f32::MIN_POSITIVE / 8.0; // subnormal
    let data: Vec<f32> = (0..10_000).map(|i| tiny * ((i % 37) as f32)).collect();
    let mut sorted = data.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let got = sample_select(&data, 5_000, &cfg()).unwrap().value;
    assert_eq!(got.to_bits(), sorted[5_000].to_bits());
}

#[test]
fn device_reuse_across_runs_is_clean() {
    // Reusing one device for many selections must not leak state
    // between runs (reports slice only their own records).
    let pool = ThreadPool::new(2);
    let mut device = Device::new(v100(), &pool);
    let data: Vec<f32> = (0..20_000).map(|i| ((i * 31) % 997) as f32).collect();
    let mut launches_prev = 0;
    for rank in [10usize, 5_000, 19_999] {
        let r =
            gpu_selection::sampleselect::sample_select_on_device(&mut device, &data, rank, &cfg())
                .unwrap();
        let launches = r.report.total_launches();
        if launches_prev > 0 {
            // same input, similar work: the per-run report must not
            // accumulate previous runs
            assert!(launches < 2 * launches_prev + 8);
        }
        launches_prev = launches;
    }
}
