//! Paper-scale runs (n = 2^26+). Ignored by default — they take minutes
//! on a laptop-class host; run explicitly with
//! `cargo test --release --test full_scale -- --ignored`.

use gpu_selection::datagen::WorkloadSpec;
use gpu_selection::gpu_sim::arch::{k20xm, v100};
use gpu_selection::gpu_sim::Device;
use gpu_selection::hpc_par::ThreadPool;
use gpu_selection::sampleselect::element::reference_select;
use gpu_selection::sampleselect::{sample_select_on_device, SampleSelectConfig};

#[test]
#[ignore = "paper-scale; run with --ignored in release mode"]
fn v100_throughput_at_2_26_approaches_plateau() {
    let pool = ThreadPool::new(4);
    let w = WorkloadSpec::uniform(1 << 26, 1).instantiate::<f32>(0);
    let arch = v100();
    let cfg = SampleSelectConfig::tuned_for(&arch);
    let mut device = Device::new(arch, &pool);
    let r = sample_select_on_device(&mut device, &w.data, w.rank, &cfg).unwrap();
    assert_eq!(r.value, reference_select(&w.data, w.rank).unwrap());
    // The paper's V100 plateau: > 4e10 elements/s at large n.
    assert!(
        r.report.throughput() > 4.0e10,
        "throughput {:.3e}",
        r.report.throughput()
    );
}

#[test]
#[ignore = "paper-scale; run with --ignored in release mode"]
fn k20_simulates_to_the_papers_25_6ms_at_2_27() {
    let pool = ThreadPool::new(4);
    let w = WorkloadSpec::uniform(1 << 27, 2).instantiate::<f32>(0);
    let arch = k20xm();
    let cfg = SampleSelectConfig::tuned_for(&arch);
    let mut device = Device::new(arch, &pool);
    let r = sample_select_on_device(&mut device, &w.data, w.rank, &cfg).unwrap();
    let ms = r.report.total_time.as_ms();
    // Paper SS V-D: 25.6 ms measured on real hardware; the simulation
    // must land in the same ballpark (±40%).
    assert!(
        (15.0..36.0).contains(&ms),
        "simulated {ms:.1} ms vs paper 25.6 ms"
    );
}
