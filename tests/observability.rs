//! Integration tests for the structured observability layer.
//!
//! Pins the PR's acceptance criteria: with observability enabled, the
//! same seed yields a bit-identical metrics snapshot across runs (all
//! timestamps come from simulated time); with it disabled, simulated
//! results are unchanged; the span tree reflects the real execution
//! hierarchy (streaming chunks, resilient attempts); and the exported
//! metric names match the checked-in schema.

use gpu_selection::gpu_sim::arch::v100;
use gpu_selection::gpu_sim::jsonv;
use gpu_selection::gpu_sim::{chrome_trace_with_counters, Device, FaultPlan};
use gpu_selection::hpc_par::ThreadPool;
use gpu_selection::sampleselect::rng::SplitMix64;
use gpu_selection::sampleselect::streaming::{streaming_select, ChunkSource, SliceChunks};
use gpu_selection::sampleselect::{
    resilient_select_on_device, sample_select_on_device, MetricsSnapshot, ObsSession, QuerySpan,
    ResilienceConfig, SampleSelectConfig, SpanKind,
};

fn uniform(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = SplitMix64::new(seed);
    (0..n).map(|_| rng.next_f64() as f32).collect()
}

fn run_observed(data: &[f32], rank: usize, cfg: &SampleSelectConfig) -> (f32, String) {
    let pool = ThreadPool::new(2);
    let mut device = Device::new(v100(), &pool);
    let session = ObsSession::start();
    let r = sample_select_on_device(&mut device, data, rank, cfg).unwrap();
    let report = session.finish();
    (r.value, report.snapshot.to_json())
}

#[test]
fn same_seed_metrics_snapshot_is_bit_identical() {
    let data = uniform(200_000, 0x0b5e);
    let cfg = SampleSelectConfig::default();
    let (v1, j1) = run_observed(&data, 100_000, &cfg);
    let (v2, j2) = run_observed(&data, 100_000, &cfg);
    assert_eq!(v1, v2);
    assert_eq!(j1, j2, "metrics snapshot must be deterministic");
    // And it must parse as strict JSON.
    jsonv::parse(&j1).expect("snapshot JSON is well-formed");
}

#[test]
fn observability_does_not_perturb_simulated_results() {
    let data = uniform(150_000, 0xde7e);
    let rank = 75_000;
    let cfg = SampleSelectConfig::default();

    let pool = ThreadPool::new(2);
    let mut device = Device::new(v100(), &pool);
    let plain = sample_select_on_device(&mut device, &data, rank, &cfg).unwrap();

    let mut device = Device::new(v100(), &pool);
    let session = ObsSession::start();
    let observed = sample_select_on_device(&mut device, &data, rank, &cfg).unwrap();
    drop(session);

    assert_eq!(plain.value, observed.value);
    assert_eq!(
        plain.report.total_time, observed.report.total_time,
        "observability must add zero simulated time"
    );
    assert_eq!(plain.report.levels, observed.report.levels);
    assert_eq!(
        plain.report.total_launches(),
        observed.report.total_launches()
    );
}

fn collect<'a>(spans: &'a [QuerySpan], kind: SpanKind, out: &mut Vec<&'a QuerySpan>) {
    for s in spans {
        if s.kind == kind {
            out.push(s);
        }
        collect(&s.children, kind, out);
    }
}

#[test]
fn span_tree_covers_streaming_chunks() {
    let data = uniform(100_000, 0x57e4);
    let cfg = SampleSelectConfig::default();
    let pool = ThreadPool::new(2);
    let mut device = Device::new(v100(), &pool);

    let session = ObsSession::start();
    let source = SliceChunks::new(&data, 1 << 14);
    let r = streaming_select(&mut device, &source, 50_000, &cfg).unwrap();
    let report = session.finish();

    assert_eq!(
        r.value,
        gpu_selection::sampleselect::element::reference_select(&data, 50_000).unwrap()
    );
    let mut queries = Vec::new();
    collect(&report.spans, SpanKind::Query, &mut queries);
    assert!(
        queries.iter().any(|q| q.name == "streaming-sampleselect"),
        "streaming query span present"
    );
    let mut chunks = Vec::new();
    collect(&report.spans, SpanKind::Chunk, &mut chunks);
    assert!(
        chunks.len() >= source.num_chunks(),
        "every chunk appears at least once across passes (got {})",
        chunks.len()
    );
    // Spans are well-formed: ends never precede starts, children nest
    // within their parent window.
    fn check(s: &QuerySpan) {
        assert!(s.end_ns >= s.start_ns, "span {} inverted", s.name);
        for c in &s.children {
            assert!(c.start_ns >= s.start_ns - 1e-6);
            assert!(c.end_ns <= s.end_ns + 1e-6);
            check(c);
        }
    }
    for s in &report.spans {
        check(s);
    }
    // Metrics agree with the span tree.
    assert!(report.snapshot.counter("select_streaming_chunks_total") > 0);
}

#[test]
fn span_tree_records_resilient_attempts() {
    let data = uniform(120_000, 0xfa17);
    let cfg = SampleSelectConfig::default();
    let rcfg = ResilienceConfig::default();
    let pool = ThreadPool::new(2);
    let mut device = Device::new(v100(), &pool);
    device.set_fault_plan(
        FaultPlan::new(11)
            .launch_failures(0.25)
            .max_launch_failures(4),
    );

    let session = ObsSession::start();
    let r = resilient_select_on_device(&mut device, &data, 60_000, &cfg, &rcfg).unwrap();
    let report = session.finish();

    let mut attempts = Vec::new();
    collect(&report.spans, SpanKind::Attempt, &mut attempts);
    assert!(!attempts.is_empty(), "attempt spans recorded");
    let retries = report.snapshot.counter("select_retries_total");
    assert_eq!(
        attempts.len() as u64,
        retries + 1,
        "one attempt span per try (retries {retries})"
    );
    assert!(r.report.resilience.retries > 0, "faults actually fired");

    // The faulted run's trace (with counter tracks) passes the strict
    // JSON validator.
    let json = chrome_trace_with_counters(&device, &report.tracks);
    jsonv::parse(&json).expect("faulted trace with counter tracks is valid JSON");
}

#[test]
fn metric_names_match_checked_in_schema() {
    let schema = include_str!("../bench/metrics_schema.txt");
    let pinned: Vec<&str> = schema
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .collect();
    let actual = MetricsSnapshot::metric_names();
    assert_eq!(
        actual, pinned,
        "metric names drifted from bench/metrics_schema.txt — update the \
         schema file in the same PR as the rename"
    );
}
