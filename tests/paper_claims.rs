//! Regression tests for the paper's headline experimental claims: if a
//! cost-model change breaks one of the reproduced *shapes*, these tests
//! fail. Each test cites the paper passage it guards.

use gpu_selection::baselines::bucket_select_on_device;
use gpu_selection::datagen::{Distribution, RankChoice, WorkloadSpec};
use gpu_selection::gpu_sim::arch::{k20xm, v100, GpuArchitecture};
use gpu_selection::gpu_sim::{Device, LaunchOrigin};
use gpu_selection::hpc_par::ThreadPool;
use gpu_selection::sampleselect::count::count_kernel;
use gpu_selection::sampleselect::rng::SplitMix64;
use gpu_selection::sampleselect::splitter::sample_kernel;
use gpu_selection::sampleselect::{
    approx_select_on_device, quick_select_on_device, sample_select_on_device, AtomicScope,
    SampleSelectConfig,
};

// "For larger input datasets" (SS V-D) — the claims are asymptotic; at
// small n launch overheads blur the picture, exactly as in the paper's
// left plot regions.
const N: usize = 1 << 22;

fn throughput(
    arch: &GpuArchitecture,
    pool: &ThreadPool,
    data: &[f32],
    rank: usize,
    cfg: &SampleSelectConfig,
    quick: bool,
) -> f64 {
    let mut device = Device::new(arch.clone(), pool);
    let report = if quick {
        quick_select_on_device(&mut device, data, rank, cfg)
            .unwrap()
            .report
    } else {
        sample_select_on_device(&mut device, data, rank, cfg)
            .unwrap()
            .report
    };
    report.throughput()
}

fn uniform() -> (Vec<f32>, usize) {
    let w = WorkloadSpec::uniform(N, 0xc1a115).instantiate::<f32>(0);
    (w.data, w.rank)
}

#[test]
fn v100_shared_beats_global_by_large_factor_for_sampleselect() {
    // §V-D: "the shared-memory variant of SampleSelect is more than 10x
    // faster than the global-memory variant" (V100).
    let pool = ThreadPool::new(4);
    let (data, rank) = uniform();
    let arch = v100();
    let s = throughput(
        &arch,
        &pool,
        &data,
        rank,
        &SampleSelectConfig::default().with_atomic_scope(AtomicScope::Shared),
        false,
    );
    let g = throughput(
        &arch,
        &pool,
        &data,
        rank,
        &SampleSelectConfig::default().with_atomic_scope(AtomicScope::Global),
        false,
    );
    assert!(s > 6.0 * g, "V100 sample-s {s:.3e} vs sample-g {g:.3e}");
}

#[test]
fn v100_quickselect_scope_gap_is_much_smaller() {
    // §V-D: "the performance gap between the QuickSelect
    // implementations is much smaller" (V100).
    let pool = ThreadPool::new(4);
    let (data, rank) = uniform();
    let arch = v100();
    let qs = throughput(
        &arch,
        &pool,
        &data,
        rank,
        &SampleSelectConfig::default().with_atomic_scope(AtomicScope::Shared),
        true,
    );
    let qg = throughput(
        &arch,
        &pool,
        &data,
        rank,
        &SampleSelectConfig::default().with_atomic_scope(AtomicScope::Global),
        true,
    );
    let ss = throughput(
        &arch,
        &pool,
        &data,
        rank,
        &SampleSelectConfig::default().with_atomic_scope(AtomicScope::Shared),
        false,
    );
    let sg = throughput(
        &arch,
        &pool,
        &data,
        rank,
        &SampleSelectConfig::default().with_atomic_scope(AtomicScope::Global),
        false,
    );
    let quick_gap = qs / qg;
    let sample_gap = ss / sg;
    assert!(
        quick_gap < sample_gap / 2.0,
        "quick gap {quick_gap:.1}x should be much smaller than sample gap {sample_gap:.1}x"
    );
}

#[test]
fn k20_global_beats_shared() {
    // §V-D: "On the older K20Xm GPU, the implementations based on
    // global-memory-communication are generally faster than their
    // shared-memory counterparts ... quite significant in particular for
    // the QuickSelect algorithm."
    let pool = ThreadPool::new(4);
    let (data, rank) = uniform();
    let arch = k20xm();
    // The -s/-g comparison isolates the atomic scope; warp aggregation
    // is the separate study of Fig. 8's right panel.
    let base = SampleSelectConfig::default().with_warp_aggregation(false);
    let ss = throughput(
        &arch,
        &pool,
        &data,
        rank,
        &base.clone().with_atomic_scope(AtomicScope::Shared),
        false,
    );
    let sg = throughput(
        &arch,
        &pool,
        &data,
        rank,
        &base.clone().with_atomic_scope(AtomicScope::Global),
        false,
    );
    let qs = throughput(
        &arch,
        &pool,
        &data,
        rank,
        &base.clone().with_atomic_scope(AtomicScope::Shared),
        true,
    );
    let qg = throughput(
        &arch,
        &pool,
        &data,
        rank,
        &base.with_atomic_scope(AtomicScope::Global),
        true,
    );
    assert!(sg > ss, "K20 sample-g {sg:.3e} must beat sample-s {ss:.3e}");
    assert!(qg > qs, "K20 quick-g {qg:.3e} must beat quick-s {qs:.3e}");
    // ... and the quick gap is the significant one.
    assert!(qg / qs > sg / ss);
}

#[test]
fn v100_sampleselect_beats_quickselect_by_over_2x() {
    // §V-D: "[SampleSelect] is more than twice faster on the V100."
    let pool = ThreadPool::new(4);
    let (data, rank) = uniform();
    let arch = v100();
    let cfg = SampleSelectConfig::tuned_for(&arch);
    let s = throughput(&arch, &pool, &data, rank, &cfg, false);
    let q = throughput(&arch, &pool, &data, rank, &cfg, true);
    assert!(s > 2.0 * q, "sample {s:.3e} vs quick {q:.3e}");
}

#[test]
fn k20_sampleselect_beats_quickselect_by_small_margin() {
    // §V-D: "SampleSelect outperforms QuickSelect by a small margin on
    // the K20Xm."
    let pool = ThreadPool::new(4);
    let (data, rank) = uniform();
    let arch = k20xm();
    let cfg = SampleSelectConfig::tuned_for(&arch);
    let s = throughput(&arch, &pool, &data, rank, &cfg, false);
    let q = throughput(&arch, &pool, &data, rank, &cfg, true);
    assert!(s > q, "sample {s:.3e} must beat quick {q:.3e}");
    assert!(
        s < 2.0 * q,
        "... but only by a small margin (got {:.2}x)",
        s / q
    );
}

#[test]
fn v100_f64_sampleselect_nearly_matches_f32() {
    // §V-D: "SampleSelect achieves a throughput only slightly smaller
    // than for single-precision inputs" — the atomics (always 32-bit)
    // are the bottleneck, not bandwidth.
    let pool = ThreadPool::new(4);
    let arch = v100();
    let cfg = SampleSelectConfig::tuned_for(&arch);
    let w32 = WorkloadSpec::uniform(N, 21).instantiate::<f32>(0);
    let w64 = WorkloadSpec::uniform(N, 21).instantiate::<f64>(0);
    let mut device = Device::new(arch.clone(), &pool);
    let t32 = sample_select_on_device(&mut device, &w32.data, w32.rank, &cfg)
        .unwrap()
        .report
        .throughput();
    device.reset();
    let t64 = sample_select_on_device(&mut device, &w64.data, w64.rank, &cfg)
        .unwrap()
        .report
        .throughput();
    assert!(t64 > 0.8 * t32, "f64 {t64:.3e} vs f32 {t32:.3e}");

    // ... while QuickSelect, being bandwidth-bound, loses much more.
    let q32 = quick_select_on_device(&mut device, &w32.data, w32.rank, &cfg)
        .unwrap()
        .report
        .throughput();
    device.reset();
    let q64 = quick_select_on_device(&mut device, &w64.data, w64.rank, &cfg)
        .unwrap()
        .report
        .throughput();
    assert!(
        q64 < 0.8 * q32,
        "quick f64 {q64:.3e} vs f32 {q32:.3e} must drop"
    );
}

#[test]
fn warp_aggregation_rescues_duplicate_heavy_counting_on_k20() {
    // §V-E / Fig. 8 right: on the K20Xm, atomic collisions from repeated
    // values crater the count kernel; warp aggregation removes the
    // effect at a small general-case cost.
    let pool = ThreadPool::new(4);
    let arch = k20xm();
    let count_time = |d: usize, agg: bool| -> f64 {
        let w = WorkloadSpec::with_distinct(N, d, 31).instantiate::<f32>(0);
        let cfg = SampleSelectConfig::default().with_warp_aggregation(agg);
        let mut device = Device::new(arch.clone(), &pool);
        let mut rng = SplitMix64::new(9);
        let tree = sample_kernel(&mut device, &w.data, &cfg, &mut rng, LaunchOrigin::Host).unwrap();
        let before = device.now();
        count_kernel(&mut device, &w.data, &tree, &cfg, true, LaunchOrigin::Host);
        (device.now() - before).as_ns()
    };
    // d = 1: heavy collisions
    let cliff = count_time(1, false);
    let rescued = count_time(1, true);
    assert!(
        cliff > 5.0 * rescued,
        "aggregation must rescue d=1: {cliff} vs {rescued}"
    );
    // d = n: aggregation costs only a little
    let plain = count_time(N, false);
    let aggregated = count_time(N, true);
    assert!(
        aggregated < 2.0 * plain,
        "general-case penalty too high: {aggregated} vs {plain}"
    );
}

#[test]
fn v100_tolerates_duplicates_without_aggregation() {
    // §V-E: "The fast shared-memory atomics ... make warp-aggregation
    // unnecessary on the V100."
    let pool = ThreadPool::new(4);
    let arch = v100();
    let run = |d: usize| -> f64 {
        let w = WorkloadSpec::with_distinct(N, d, 32).instantiate::<f32>(0);
        let cfg = SampleSelectConfig::tuned_for(&arch); // no aggregation
        let mut device = Device::new(arch.clone(), &pool);
        sample_select_on_device(&mut device, &w.data, w.rank, &cfg)
            .unwrap()
            .report
            .throughput()
    };
    let worst = run(1);
    let best = run(N);
    assert!(
        worst > best / 4.0,
        "V100 d=1 ({worst:.3e}) must stay within 4x of d=n ({best:.3e})"
    );
}

#[test]
fn approximate_selection_trades_accuracy_for_speed() {
    // §V-G / Fig. 10: approximate selection is substantially faster with
    // bounded rank error that shrinks as buckets grow.
    let pool = ThreadPool::new(4);
    let arch = v100();
    let w = WorkloadSpec::uniform(N, 33).instantiate::<f32>(0);
    let cfg = SampleSelectConfig::tuned_for(&arch);
    let mut device = Device::new(arch.clone(), &pool);
    let exact = sample_select_on_device(&mut device, &w.data, w.rank, &cfg).unwrap();
    device.reset();
    let approx128 =
        approx_select_on_device(&mut device, &w.data, w.rank, &cfg.clone().with_buckets(128))
            .unwrap();
    device.reset();
    let approx1024 = approx_select_on_device(
        &mut device,
        &w.data,
        w.rank,
        &cfg.clone().with_buckets(1024),
    )
    .unwrap();
    assert!(
        approx128.report.total_time.as_ns() < 0.8 * exact.report.total_time.as_ns(),
        "approx must be visibly faster"
    );
    assert!(
        approx128.relative_error < 0.01,
        "rank error stays ~1% or below"
    );
    assert!(approx1024.relative_error < 0.005);
    // throughput barely depends on bucket count
    let t128 = approx128.report.throughput();
    let t1024 = approx1024.report.throughput();
    assert!(t1024 > 0.6 * t128, "1024-bucket approx must stay cheap");
}

#[test]
fn sampleselect_is_robust_where_bucketselect_degrades() {
    // §I/§V-D: SampleSelect "does not work on the actual values but the
    // ranks ... and can complete significantly faster for adversarial
    // data distributions".
    let pool = ThreadPool::new(4);
    let arch = v100();
    let cfg = SampleSelectConfig::tuned_for(&arch);
    let spec = WorkloadSpec {
        n: N,
        distribution: Distribution::ClusteredOutliers,
        rank: RankChoice::Median,
        seed: 40,
    };
    let w = spec.instantiate::<f32>(0);
    let mut device = Device::new(arch.clone(), &pool);
    let sample = sample_select_on_device(&mut device, &w.data, w.rank, &cfg).unwrap();
    device.reset();
    let bucket = bucket_select_on_device(&mut device, &w.data, w.rank, &cfg).unwrap();
    assert_eq!(sample.value, bucket.value, "both stay correct");
    assert!(
        bucket.report.levels >= sample.report.levels + 2,
        "bucketselect {} levels vs sampleselect {}",
        bucket.report.levels,
        sample.report.levels
    );
    assert!(
        bucket.report.total_time.as_ns() > 2.0 * sample.report.total_time.as_ns(),
        "bucketselect {} vs sampleselect {}",
        bucket.report.total_time,
        sample.report.total_time
    );
}

#[test]
fn quickselect_needs_far_more_launches() {
    // §V-F: "the QuickSelect needs a much higher number of kernel
    // invocations" due to its deeper recursion.
    let pool = ThreadPool::new(4);
    let (data, rank) = uniform();
    let arch = v100();
    let cfg = SampleSelectConfig::tuned_for(&arch);
    let mut device = Device::new(arch, &pool);
    let s = sample_select_on_device(&mut device, &data, rank, &cfg).unwrap();
    device.reset();
    let q = quick_select_on_device(&mut device, &data, rank, &cfg).unwrap();
    assert!(
        q.report.total_launches() > 2 * s.report.total_launches(),
        "quick {} vs sample {} launches",
        q.report.total_launches(),
        s.report.total_launches()
    );
}
