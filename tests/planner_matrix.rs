//! CI planner-conformance matrix: the adaptive planner against every
//! fixed backend, over adversarial data shapes and element types.
//!
//! Grid: {uniform, duplicate-heavy, sorted, reverse-sorted,
//! low-entropy-key, large-k} x {u32, u64, f32}. For every cell the test
//! runs each fixed backend (SampleSelect, QuickSelect, RadixSelect) and
//! `--algo auto` on fresh simulated devices and asserts:
//!
//! 1. **bit-identity** — auto's answer has exactly the bit pattern of
//!    the backend the planner reports choosing (and of every other
//!    exact backend: they must all agree);
//! 2. **never slowest** — the chosen backend is not the slowest of the
//!    three by simulated time (unless all three tie);
//! 3. **bounded regret** — the chosen backend is within 1.25x of the
//!    best fixed backend's simulated time.
//!
//! `PLANNER_MATRIX_DIST` / `PLANNER_MATRIX_TYPE` pin one cell for the
//! CI matrix; `PLANNER_MATRIX_SEED` overrides the data seed. With
//! nothing set the whole grid runs. Every cell appends one JSON line to
//! `target/planner_matrix_report.jsonl` (override the path with
//! `PLANNER_MATRIX_REPORT`) so CI can upload the sweep on failure.

use std::io::Write as _;

use gpu_selection::gpu_sim::arch::v100;
use gpu_selection::gpu_sim::Device;
use gpu_selection::hpc_par::ThreadPool;
use gpu_selection::sampleselect::element::SelectElement;
use gpu_selection::sampleselect::planner::{run_planned, PlannedBackend};
use gpu_selection::sampleselect::rng::SplitMix64;
use gpu_selection::sampleselect::{
    auto_select_on_device, plan_rank_query, SampleSelectConfig, SelectWorkspace,
};

const ALL_DISTS: [&str; 6] = [
    "uniform",
    "duplicate-heavy",
    "sorted",
    "reverse-sorted",
    "low-entropy-key",
    "large-k",
];
const ALL_TYPES: [&str; 3] = ["u32", "u64", "f32"];

/// The planner may pick a backend up to this factor slower than the
/// best fixed backend — the acceptance bound of the issue.
const MAX_REGRET: f64 = 1.25;

const N: usize = 1 << 17;

fn gen_data<T: SelectElement>(dist: &str, n: usize, seed: u64) -> (Vec<T>, usize) {
    let mut rng = SplitMix64::new(seed);
    // Median rank everywhere except the large-k cell, which models a
    // big top-k extraction (k = n/3 from the top).
    let mut rank = n / 2;
    let data: Vec<T> = (0..n)
        .map(|i| {
            let v = match dist {
                "uniform" | "large-k" => rng.next_f64() * 1e9,
                "duplicate-heavy" => (rng.next_u64() % 16) as f64,
                "sorted" => i as f64,
                "reverse-sorted" => (n - i) as f64,
                "low-entropy-key" => (rng.next_u64() % 251) as f64,
                other => panic!("unknown PLANNER_MATRIX_DIST `{other}`"),
            };
            T::from_f64(v)
        })
        .collect();
    if dist == "large-k" {
        rank = n - n / 3;
    }
    (data, rank)
}

fn report_line(line: &str) {
    let path = std::env::var("PLANNER_MATRIX_REPORT")
        .unwrap_or_else(|_| "target/planner_matrix_report.jsonl".to_string());
    if let Some(dir) = std::path::Path::new(&path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        let _ = writeln!(f, "{line}");
    }
}

fn run_cell<T: SelectElement>(dist: &str, ty: &str, seed: u64) {
    let (data, rank) = gen_data::<T>(dist, N, seed);
    let cfg = SampleSelectConfig::default();
    let arch = v100();
    let pool = ThreadPool::new(2);

    let decision = plan_rank_query(&arch, &data, rank, &cfg);

    // Each fixed backend on its own device: simulated time + bit answer.
    let mut fixed: Vec<(PlannedBackend, f64, u64)> = Vec::new();
    for backend in PlannedBackend::RANK_CANDIDATES {
        let mut device = Device::new(arch.clone(), &pool);
        let mut ws = SelectWorkspace::new();
        let res = run_planned(&mut device, &data, rank, &cfg, &mut ws, backend)
            .unwrap_or_else(|e| panic!("cell {dist}/{ty}: fixed {} errored: {e}", backend.name()));
        fixed.push((
            backend,
            res.report.total_time.as_us(),
            res.value.to_bits_u64(),
        ));
    }

    let mut device = Device::new(arch.clone(), &pool);
    let (live, auto_res) = auto_select_on_device(&mut device, &data, rank, &cfg)
        .unwrap_or_else(|e| panic!("cell {dist}/{ty}: auto errored: {e}"));
    assert_eq!(
        live.backend, decision.backend,
        "cell {dist}/{ty}: planning must be deterministic"
    );
    assert_eq!(auto_res.report.algorithm, decision.backend.name());

    // 1. Bit-identity: auto equals the backend it reports choosing, and
    // every exact backend agrees with every other (same multiset, same
    // rank, total order on sort keys).
    let auto_bits = auto_res.value.to_bits_u64();
    for &(backend, _, bits) in &fixed {
        assert_eq!(
            auto_bits,
            bits,
            "cell {dist}/{ty}: auto ({}) and fixed {} disagree bit-for-bit",
            decision.backend.name(),
            backend.name()
        );
    }

    let chosen_time = fixed
        .iter()
        .find(|&&(b, _, _)| b == decision.backend)
        .map(|&(_, t, _)| t)
        .expect("chosen backend is a rank candidate");
    let best = fixed
        .iter()
        .map(|&(_, t, _)| t)
        .fold(f64::INFINITY, f64::min);
    let worst = fixed.iter().map(|&(_, t, _)| t).fold(0.0, f64::max);

    let times: Vec<String> = fixed
        .iter()
        .map(|&(b, t, _)| format!("\"{}\": {t:.3}", b.name()))
        .collect();
    report_line(&format!(
        "{{\"dist\": \"{dist}\", \"type\": \"{ty}\", \"n\": {N}, \"rank\": {rank}, \
         \"seed\": {seed}, \"chosen\": \"{}\", \"auto_us\": {:.3}, {}}}",
        decision.backend.name(),
        auto_res.report.total_time.as_us(),
        times.join(", ")
    ));

    // 2. Never the slowest (ties excepted).
    if worst > best * 1.001 {
        assert!(
            chosen_time < worst,
            "cell {dist}/{ty}: planner chose {} ({chosen_time:.1}us), the slowest backend \
             (best {best:.1}us, worst {worst:.1}us): {fixed:?}",
            decision.backend.name()
        );
    }

    // 3. Bounded regret vs the best fixed backend.
    assert!(
        chosen_time <= best * MAX_REGRET,
        "cell {dist}/{ty}: planner chose {} at {chosen_time:.1}us, more than {MAX_REGRET}x \
         the best fixed backend ({best:.1}us): {fixed:?}",
        decision.backend.name()
    );
}

#[test]
fn planner_matrix_never_slowest_and_bounded_regret() {
    let dist_env = std::env::var("PLANNER_MATRIX_DIST").ok();
    let type_env = std::env::var("PLANNER_MATRIX_TYPE").ok();
    let seed: u64 = std::env::var("PLANNER_MATRIX_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x9a71);

    let dists: Vec<&str> = match dist_env.as_deref() {
        Some(d) => vec![ALL_DISTS
            .iter()
            .copied()
            .find(|&x| x == d)
            .unwrap_or_else(|| panic!("unknown PLANNER_MATRIX_DIST `{d}`"))],
        None => ALL_DISTS.to_vec(),
    };
    let types: Vec<&str> = match type_env.as_deref() {
        Some(t) => vec![ALL_TYPES
            .iter()
            .copied()
            .find(|&x| x == t)
            .unwrap_or_else(|| panic!("unknown PLANNER_MATRIX_TYPE `{t}`"))],
        None => ALL_TYPES.to_vec(),
    };

    for dist in &dists {
        for ty in &types {
            match *ty {
                "u32" => run_cell::<u32>(dist, ty, seed),
                "u64" => run_cell::<u64>(dist, ty, seed),
                "f32" => run_cell::<f32>(dist, ty, seed),
                other => unreachable!("type {other}"),
            }
        }
    }
}
