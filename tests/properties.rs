//! Property-based tests (proptest) over the core data structures and
//! algorithms: selection correctness on arbitrary inputs, search-tree
//! order consistency, bitonic-network sortedness, scan identities, and
//! top-k multiset equality.

use gpu_selection::gpu_sim::arch::v100;
use gpu_selection::gpu_sim::Device;
use gpu_selection::hpc_par::ThreadPool;
use gpu_selection::sampleselect::bitonic::bitonic_sort;
use gpu_selection::sampleselect::cpu::{cpu_sample_select, CpuSelectConfig};
use gpu_selection::sampleselect::element::{reference_select, SelectElement};
use gpu_selection::sampleselect::kv::Pair;
use gpu_selection::sampleselect::multiselect::multi_select_on_device;
use gpu_selection::sampleselect::samplesort::sample_sort_on_device;
use gpu_selection::sampleselect::searchtree::SearchTree;
use gpu_selection::sampleselect::{
    quick_select_on_device, sample_select_on_device, top_k_largest_on_device, SampleSelectConfig,
};
use proptest::collection::vec;
use proptest::prelude::*;

fn small_cfg() -> SampleSelectConfig {
    // Tiny buckets/base case so even small random inputs recurse.
    SampleSelectConfig::default()
        .with_buckets(8)
        .with_oversampling(2)
        .with_base_case(16)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sampleselect_equals_reference(
        data in vec(-1000i32..1000, 1..500),
        rank_frac in 0.0f64..1.0,
    ) {
        let rank = ((data.len() - 1) as f64 * rank_frac) as usize;
        let pool = ThreadPool::new(1);
        let mut device = Device::new(v100(), &pool);
        let got = sample_select_on_device(&mut device, &data, rank, &small_cfg())
            .unwrap()
            .value;
        prop_assert_eq!(got, reference_select(&data, rank).unwrap());
    }

    #[test]
    fn quickselect_equals_reference(
        data in vec(-50i64..50, 1..400),
        rank_frac in 0.0f64..1.0,
    ) {
        let rank = ((data.len() - 1) as f64 * rank_frac) as usize;
        let pool = ThreadPool::new(1);
        let mut device = Device::new(v100(), &pool);
        let mut cfg = small_cfg();
        cfg.base_case_size = 16;
        let got = quick_select_on_device(&mut device, &data, rank, &cfg)
            .unwrap()
            .value;
        prop_assert_eq!(got, reference_select(&data, rank).unwrap());
    }

    #[test]
    fn sampleselect_on_finite_floats(
        data in vec(prop::num::f32::NORMAL | prop::num::f32::ZERO | prop::num::f32::SUBNORMAL, 1..300),
        rank_frac in 0.0f64..1.0,
    ) {
        let rank = ((data.len() - 1) as f64 * rank_frac) as usize;
        let pool = ThreadPool::new(1);
        let mut device = Device::new(v100(), &pool);
        let got = sample_select_on_device(&mut device, &data, rank, &small_cfg())
            .unwrap()
            .value;
        prop_assert_eq!(
            got.to_bits(),
            reference_select(&data, rank).unwrap().to_bits()
        );
    }

    #[test]
    fn cpu_backend_equals_reference(
        data in vec(0u32..100, 1..2000),
        rank_frac in 0.0f64..1.0,
    ) {
        let rank = ((data.len() - 1) as f64 * rank_frac) as usize;
        let pool = ThreadPool::new(2);
        let cfg = CpuSelectConfig {
            num_buckets: 8,
            oversampling: 2,
            base_case_size: 32,
            ..CpuSelectConfig::default()
        };
        let (got, _) = cpu_sample_select(&pool, &data, rank, &cfg).unwrap();
        prop_assert_eq!(got, reference_select(&data, rank).unwrap());
    }

    #[test]
    fn bitonic_network_sorts_anything(data in vec(any::<i32>(), 0..300)) {
        let mut sorted = data.clone();
        bitonic_sort(&mut sorted);
        prop_assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
        // permutation check
        let mut a = data;
        let mut b = sorted;
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn searchtree_lookup_matches_linear_reference(
        mut splitters in vec(-100i32..100, 7usize),
        queries in vec(-150i32..150, 0..64),
    ) {
        splitters.sort_unstable();
        let tree = SearchTree::build(&splitters);
        for q in queries {
            prop_assert_eq!(tree.lookup(q), tree.lookup_reference(q), "query {}", q);
        }
    }

    #[test]
    fn searchtree_is_monotone(mut splitters in vec(-100f64..100.0, 15usize)) {
        splitters.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let tree = SearchTree::build(&splitters);
        let mut queries: Vec<f64> = (-120..120).map(|i| i as f64 * 0.9).collect();
        queries.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let buckets: Vec<u32> = queries.iter().map(|&q| tree.lookup(q)).collect();
        prop_assert!(buckets.windows(2).all(|w| w[0] <= w[1]), "bucket ids must be monotone in the query");
    }

    #[test]
    fn equality_buckets_capture_all_duplicates(
        value in -50i32..50,
        dup_count in 2usize..8,
    ) {
        // splitters with a run of `dup_count` copies of `value`
        let mut splitters = vec![value - 10, value - 5];
        splitters.extend(std::iter::repeat_n(value, dup_count));
        splitters.extend([value + 5, value + 10]);
        while splitters.len() < 15 {
            splitters.push(value + 20 + splitters.len() as i32);
        }
        splitters.truncate(15);
        splitters.sort_unstable();
        let tree = SearchTree::build(&splitters);
        let bucket = tree.lookup(value) as usize;
        prop_assert!(tree.is_equality_bucket(bucket));
        prop_assert_eq!(tree.equality_value(bucket), value);
        // neighbours stay out
        prop_assert_ne!(tree.lookup(value - 1) as usize, bucket);
        prop_assert_ne!(tree.lookup(value + 1) as usize, bucket);
    }

    #[test]
    fn scan_identities(values in vec(0u64..1000, 0..500)) {
        let mut ex = values.clone();
        let total = gpu_selection::hpc_par::exclusive_scan(&mut ex);
        prop_assert_eq!(total, values.iter().sum::<u64>());
        // exclusive_scan[i] == sum of values[..i]
        let mut running = 0u64;
        for (i, v) in values.iter().enumerate() {
            prop_assert_eq!(ex[i], running);
            running += v;
        }
        // parallel scan agrees
        let pool = ThreadPool::new(3);
        let mut par = values.clone();
        let ptotal = gpu_selection::hpc_par::parallel_exclusive_scan(&pool, &mut par);
        prop_assert_eq!(ptotal, total);
        prop_assert_eq!(par, ex);
    }

    #[test]
    fn topk_is_the_sorted_suffix(
        data in vec(-100i32..100, 1..300),
        k_frac in 0.01f64..1.0,
    ) {
        let k = ((data.len() as f64 * k_frac) as usize).clamp(1, data.len());
        let pool = ThreadPool::new(1);
        let mut device = Device::new(v100(), &pool);
        let res = top_k_largest_on_device(&mut device, &data, k, &small_cfg()).unwrap();
        prop_assert_eq!(res.elements.len(), k);
        let mut got = res.elements.clone();
        got.sort_unstable();
        let mut sorted = data.clone();
        sorted.sort_unstable();
        let expected = &sorted[data.len() - k..];
        prop_assert_eq!(&got[..], expected);
        prop_assert_eq!(res.threshold, sorted[data.len() - k]);
    }

    #[test]
    fn sort_keys_refine_ieee_order_f64(a in any::<f64>(), b in any::<f64>()) {
        prop_assume!(!a.is_nan() && !b.is_nan());
        // The key order is a *total* refinement of IEEE `<`: strictly
        // ordered values keep their order; ties (only ±0.0) may be
        // broken either way but never inverted.
        if a < b {
            prop_assert!(a.to_sort_key() < b.to_sort_key());
        }
        if a.to_sort_key() < b.to_sort_key() {
            prop_assert!(b.partial_cmp(&a) != Some(std::cmp::Ordering::Less));
        }
    }

    #[test]
    fn sort_keys_preserve_order_i64(a in any::<i64>(), b in any::<i64>()) {
        prop_assert_eq!(a < b, a.to_sort_key() < b.to_sort_key());
    }

    #[test]
    fn next_up_has_no_value_in_between_f32(x in prop::num::f32::NORMAL) {
        prop_assume!(x != f32::MAX);
        let y = SelectElement::next_up(x);
        prop_assert!(x < y);
        prop_assert_eq!(y.to_bits(), if x >= 0.0 { x.to_bits() + 1 } else { x.to_bits() - 1 });
    }

    #[test]
    fn multiselect_matches_per_rank_reference(
        data in vec(-200i32..200, 2..400),
        rank_fracs in vec(0.0f64..1.0, 1..6),
    ) {
        let ranks: Vec<usize> = rank_fracs
            .iter()
            .map(|f| ((data.len() - 1) as f64 * f) as usize)
            .collect();
        let pool = ThreadPool::new(1);
        let mut device = Device::new(v100(), &pool);
        let res = multi_select_on_device(&mut device, &data, &ranks, &small_cfg()).unwrap();
        for (i, &rank) in ranks.iter().enumerate() {
            prop_assert_eq!(res.values[i], reference_select(&data, rank).unwrap());
        }
    }

    #[test]
    fn samplesort_sorts_arbitrary_input(data in vec(any::<i32>(), 0..400)) {
        let pool = ThreadPool::new(1);
        let mut device = Device::new(v100(), &pool);
        let res = sample_sort_on_device(&mut device, &data, &small_cfg()).unwrap();
        prop_assert!(res.sorted.windows(2).all(|w| w[0] <= w[1]));
        let mut a = data;
        let mut b = res.sorted;
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn kv_selection_returns_consistent_pairs(
        keys in vec(-100i32..100, 1..300),
        rank_frac in 0.0f64..1.0,
    ) {
        let pairs: Vec<Pair<i32, u32>> = keys
            .iter()
            .enumerate()
            .map(|(i, &k)| Pair::new(k, i as u32))
            .collect();
        let rank = ((pairs.len() - 1) as f64 * rank_frac) as usize;
        let pool = ThreadPool::new(1);
        let mut device = Device::new(v100(), &pool);
        let got = sample_select_on_device(&mut device, &pairs, rank, &small_cfg())
            .unwrap()
            .value;
        // key has the right rank
        prop_assert_eq!(got.key, reference_select(&keys, rank).unwrap());
        // payload resolves to an element with that key
        prop_assert_eq!(keys[got.value as usize], got.key);
    }

    /// Metamorphic: selection is a function of the multiset, so any
    /// permutation of the input leaves the selected value unchanged.
    #[test]
    fn selection_is_permutation_invariant(
        data in vec(-1000i32..1000, 1..400),
        rank_frac in 0.0f64..1.0,
        shuffle_seed in any::<u64>(),
    ) {
        let rank = ((data.len() - 1) as f64 * rank_frac) as usize;
        let pool = ThreadPool::new(1);
        let mut device = Device::new(v100(), &pool);
        let base = sample_select_on_device(&mut device, &data, rank, &small_cfg())
            .unwrap()
            .value;

        // Fisher–Yates with a deterministic generator.
        let mut shuffled = data;
        let mut state = shuffle_seed;
        for i in (1..shuffled.len()).rev() {
            state = state
                .wrapping_add(0x9e3779b97f4a7c15)
                .wrapping_mul(0xbf58476d1ce4e5b9);
            state ^= state >> 27;
            shuffled.swap(i, (state % (i as u64 + 1)) as usize);
        }
        let mut device = Device::new(v100(), &pool);
        let permuted = sample_select_on_device(&mut device, &shuffled, rank, &small_cfg())
            .unwrap()
            .value;
        prop_assert_eq!(base, permuted);
    }

    /// Metamorphic: negation reverses the order, so the rank-`k`
    /// element of `v` is the negation of the rank-`n-1-k` element of
    /// `-v` (rank-complement symmetry).
    #[test]
    fn rank_complement_symmetry_under_negation(
        data in vec(-1000i32..1000, 1..400),
        rank_frac in 0.0f64..1.0,
    ) {
        let n = data.len();
        let rank = ((n - 1) as f64 * rank_frac) as usize;
        let negated: Vec<i32> = data.iter().map(|&x| -x).collect();

        let pool = ThreadPool::new(1);
        let mut device = Device::new(v100(), &pool);
        let forward = sample_select_on_device(&mut device, &data, rank, &small_cfg())
            .unwrap()
            .value;
        let mut device = Device::new(v100(), &pool);
        let backward = sample_select_on_device(&mut device, &negated, n - 1 - rank, &small_cfg())
            .unwrap()
            .value;
        prop_assert_eq!(forward, -backward);
    }

    /// Duplicate-heavy inputs (a handful of distinct values, so almost
    /// every bucket degenerates to an equality bucket) still select the
    /// exact rank, across the sample- and quick-select pipelines.
    #[test]
    fn duplicate_heavy_inputs_select_exactly(
        data in vec(0i32..5, 1..500),
        rank_frac in 0.0f64..1.0,
    ) {
        let rank = ((data.len() - 1) as f64 * rank_frac) as usize;
        let expect = reference_select(&data, rank).unwrap();
        let pool = ThreadPool::new(1);
        let mut device = Device::new(v100(), &pool);
        let sample = sample_select_on_device(&mut device, &data, rank, &small_cfg())
            .unwrap()
            .value;
        prop_assert_eq!(sample, expect);
        let mut device = Device::new(v100(), &pool);
        let quick = quick_select_on_device(&mut device, &data, rank, &small_cfg())
            .unwrap()
            .value;
        prop_assert_eq!(quick, expect);
    }
}

// ---------------------------------------------------------------------
// Zero-allocation hot path: the pooled-workspace driver must be
// bit-identical to the fresh-allocation driver — same value, same
// kernel schedule, same simulated timeline — on arbitrary shapes, both
// cold and warm (reused across queries), and an injected bit flip must
// never leak a poisoned buffer into the next query.
// ---------------------------------------------------------------------

fn trace_signature(
    report: &gpu_selection::sampleselect::SelectReport,
) -> Vec<(String, u64, f64, u64, u64)> {
    report
        .kernels
        .iter()
        .map(|k| {
            (
                k.name.clone(),
                k.launches,
                k.total_time.as_ns(),
                k.cost.global_read_bytes,
                k.cost.global_write_bytes,
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn pooled_workspace_matches_fresh_path(
        data in vec(-1000i32..1000, 8..400),
        rank_frac in 0.0f64..1.0,
        warm_queries in 0usize..3,
    ) {
        use gpu_selection::sampleselect::recursion::sample_select_with_workspace;
        use gpu_selection::sampleselect::SelectWorkspace;

        let rank = ((data.len() - 1) as f64 * rank_frac) as usize;
        let cfg = small_cfg();
        let pool = ThreadPool::new(1);

        // Reference: the fresh-allocation path on a pristine device.
        let mut fresh_dev = Device::new(v100(), &pool);
        let fresh = sample_select_on_device(&mut fresh_dev, &data, rank, &cfg).unwrap();

        // Pooled path: armed buffer pool + a workspace reused across
        // `warm_queries` preceding queries (0 = cold first query).
        let mut pooled_dev = Device::new(v100(), &pool);
        pooled_dev.enable_buffer_pool();
        let mut ws: SelectWorkspace<i32> = SelectWorkspace::new();
        for _ in 0..warm_queries {
            sample_select_with_workspace(&mut pooled_dev, &data, rank, &cfg, &mut ws).unwrap();
            pooled_dev.reset();
        }
        let pooled =
            sample_select_with_workspace(&mut pooled_dev, &data, rank, &cfg, &mut ws).unwrap();

        prop_assert_eq!(fresh.value, pooled.value);
        prop_assert_eq!(
            trace_signature(&fresh.report),
            trace_signature(&pooled.report)
        );
        prop_assert_eq!(fresh.report.total_time, pooled.report.total_time);
        prop_assert_eq!(fresh.report.levels, pooled.report.levels);
    }

    #[test]
    fn poisoned_buffers_never_leak_into_next_query(
        data in vec(-1000i32..1000, 64..400),
        rank_frac in 0.0f64..1.0,
        fault_seed in 1u64..64,
    ) {
        use gpu_selection::gpu_sim::FaultPlan;
        use gpu_selection::sampleselect::recursion::sample_select_with_workspace;
        use gpu_selection::sampleselect::SelectWorkspace;

        let rank = ((data.len() - 1) as f64 * rank_frac) as usize;
        let cfg = small_cfg();
        let pool = ThreadPool::new(1);
        let expect = reference_select(&data, rank).unwrap();

        let mut device = Device::new(v100(), &pool);
        device.enable_buffer_pool();
        let mut ws: SelectWorkspace<i32> = SelectWorkspace::new();

        // Query 1 under heavy bit-flip injection: it may detect the
        // corruption and error, or survive — either way any corrupted
        // pooled region is poisoned and must not reach query 2.
        device.set_fault_plan(FaultPlan::new(fault_seed).bitflips(1.0));
        let _ = sample_select_with_workspace(&mut device, &data, rank, &cfg, &mut ws);
        device.clear_fault_plan();
        device.reset();

        // Query 2 on the same device/workspace/pool must be clean.
        let second =
            sample_select_with_workspace(&mut device, &data, rank, &cfg, &mut ws).unwrap();
        prop_assert_eq!(second.value, expect);
    }
}

// ---------------------------------------------------------------------
// Sharded multi-device selection: the coordinator protocol must be
// invisible — any shard count produces the bit-identical result of the
// single-device driver on arbitrary inputs (clean), and killing any
// single shard at any level still yields the exact answer via replay
// recovery (faulted).
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// K ∈ {2, 4, 8} is bit-identical to K = 1 on arbitrary integer
    /// inputs, independent of the host thread-pool width (the sharded
    /// coordinator must not let scheduling order leak into the result).
    #[test]
    fn sharded_selection_is_bit_identical_to_single_device(
        data in vec(-1000i32..1000, 64..600),
        rank_frac in 0.0f64..1.0,
        pool_threads in 1usize..4,
    ) {
        use gpu_selection::sampleselect::{sharded_select_clean, ShardConfig};

        let rank = ((data.len() - 1) as f64 * rank_frac) as usize;
        let cfg = small_cfg();
        let pool = ThreadPool::new(pool_threads);
        let arch = v100();

        let single = sharded_select_clean(
            &arch, &pool, &data, rank, &cfg, &ShardConfig::default().with_shards(1),
        ).unwrap();
        prop_assert!(single.outcome.is_exact());
        prop_assert_eq!(single.outcome.value(), reference_select(&data, rank).unwrap());

        for k in [2usize, 4, 8] {
            let sharded = sharded_select_clean(
                &arch, &pool, &data, rank, &cfg, &ShardConfig::default().with_shards(k),
            ).unwrap();
            prop_assert!(sharded.outcome.is_exact(), "K={} must stay exact", k);
            prop_assert_eq!(
                sharded.outcome.value(), single.outcome.value(),
                "K={} diverged from K=1", k
            );
            prop_assert!(sharded.report.events.is_clean(), "K={} run must be fault-free", k);
        }
    }

    /// Same invariant on floats, compared bit-for-bit (so -0.0 vs 0.0
    /// and NaN-payload drift would be caught).
    #[test]
    fn sharded_selection_is_bit_identical_on_floats(
        data in vec(prop::num::f32::NORMAL | prop::num::f32::ZERO, 64..400),
        rank_frac in 0.0f64..1.0,
        k_idx in 0usize..3,
    ) {
        use gpu_selection::sampleselect::{sharded_select_clean, ShardConfig};

        let rank = ((data.len() - 1) as f64 * rank_frac) as usize;
        let cfg = small_cfg();
        let pool = ThreadPool::new(2);
        let arch = v100();
        let k = [2usize, 4, 8][k_idx];

        let single = sharded_select_clean(
            &arch, &pool, &data, rank, &cfg, &ShardConfig::default().with_shards(1),
        ).unwrap();
        let sharded = sharded_select_clean(
            &arch, &pool, &data, rank, &cfg, &ShardConfig::default().with_shards(k),
        ).unwrap();
        prop_assert_eq!(
            sharded.outcome.value().to_bits(),
            single.outcome.value().to_bits(),
            "K={} not bit-identical to K=1", k
        );
    }

    /// Killing any single shard at any early recursion level keeps the
    /// result exact: the coordinator replays the dead shard's partition
    /// on a spare device and verifies the replay fingerprint.
    #[test]
    fn any_single_shard_kill_is_recovered_exactly(
        data in vec(-500i32..500, 128..600),
        rank_frac in 0.0f64..1.0,
        shard in 0usize..4,
        level in 0u32..2,
    ) {
        use gpu_selection::sampleselect::{sharded_select, ShardConfig, ShardFaults};

        let rank = ((data.len() - 1) as f64 * rank_frac) as usize;
        let cfg = small_cfg();
        let pool = ThreadPool::new(2);
        let arch = v100();
        let scfg = ShardConfig::default().with_shards(4).with_recovery_budget(1);
        let faults = ShardFaults::default().kill_shard(shard, level);

        let res = sharded_select(&arch, &pool, &data, rank, &cfg, &scfg, &faults).unwrap();
        prop_assert!(
            res.outcome.is_exact(),
            "kill {}@{} must be recovered, not degraded", shard, level
        );
        prop_assert_eq!(res.outcome.value(), reference_select(&data, rank).unwrap());
        // The kill fires only if the recursion reaches `level`; when it
        // does, exactly one recovery must be recorded.
        prop_assert!(res.report.shards_recovered <= 1);
        if res.report.levels > level {
            prop_assert_eq!(res.report.shards_recovered, 1, "kill at a reached level must recover");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `--algo auto` is a *router*, not an algorithm: whatever backend
    /// the planner reports choosing, running that backend directly on a
    /// fresh device must give the bit-identical answer (integer case).
    #[test]
    fn auto_plan_bit_identical_to_forced_backend_u32(
        data in vec(any::<u32>(), 1..600),
        rank_frac in 0.0f64..1.0,
    ) {
        use gpu_selection::sampleselect::planner::run_planned;
        use gpu_selection::sampleselect::{auto_select_on_device, plan_rank_query, SelectWorkspace};

        let rank = ((data.len() - 1) as f64 * rank_frac) as usize;
        let cfg = small_cfg();
        let pool = ThreadPool::new(1);
        let arch = v100();

        let decision = plan_rank_query(&arch, &data, rank, &cfg);
        let mut auto_dev = Device::new(arch.clone(), &pool);
        let (live, auto_res) = auto_select_on_device(&mut auto_dev, &data, rank, &cfg).unwrap();
        prop_assert_eq!(live.backend, decision.backend, "planning must be deterministic");
        prop_assert_eq!(auto_res.report.algorithm, decision.backend.name());

        let mut forced_dev = Device::new(arch.clone(), &pool);
        let mut ws = SelectWorkspace::new();
        let forced =
            run_planned(&mut forced_dev, &data, rank, &cfg, &mut ws, decision.backend).unwrap();
        prop_assert_eq!(auto_res.value, forced.value);
        prop_assert_eq!(auto_res.value, reference_select(&data, rank).unwrap());
    }

    /// Float case, NaN-laden inputs included: the values come from raw
    /// bit patterns (arbitrary NaN payloads, infinities, `-0.0`) and
    /// the comparison is on raw bit patterns too.
    #[test]
    fn auto_plan_bit_identical_to_forced_backend_f32(
        bits in vec(any::<u32>(), 1..500),
        rank_frac in 0.0f64..1.0,
    ) {
        let data: Vec<f32> = bits.iter().map(|&b| f32::from_bits(b)).collect();
        use gpu_selection::sampleselect::planner::run_planned;
        use gpu_selection::sampleselect::{auto_select_on_device, plan_rank_query, SelectWorkspace};

        let rank = ((data.len() - 1) as f64 * rank_frac) as usize;
        let cfg = small_cfg();
        let pool = ThreadPool::new(1);
        let arch = v100();

        let decision = plan_rank_query(&arch, &data, rank, &cfg);
        let mut auto_dev = Device::new(arch.clone(), &pool);
        let (live, auto_res) = auto_select_on_device(&mut auto_dev, &data, rank, &cfg).unwrap();
        prop_assert_eq!(live.backend, decision.backend);
        prop_assert_eq!(auto_res.report.algorithm, decision.backend.name());

        let mut forced_dev = Device::new(arch.clone(), &pool);
        let mut ws = SelectWorkspace::new();
        let forced =
            run_planned(&mut forced_dev, &data, rank, &cfg, &mut ws, decision.backend).unwrap();
        prop_assert_eq!(
            auto_res.value.to_bits_u64(),
            forced.value.to_bits_u64(),
            "auto and forced {} disagree: {:?} vs {:?}",
            decision.backend.name(),
            auto_res.value,
            forced.value
        );
    }

    /// The planner consults only (data, rank, cfg, arch) — replanning
    /// the same query must reproduce the decision exactly, estimates
    /// and override flag included, for every data shape.
    #[test]
    fn planner_choice_deterministic_per_seed_and_distribution(
        seed in any::<u64>(),
        dist in 0usize..4,
        n in 64usize..4000,
    ) {
        use gpu_selection::sampleselect::plan_rank_query;
        use gpu_selection::sampleselect::rng::SplitMix64;

        let mut rng = SplitMix64::new(seed);
        let data: Vec<u32> = (0..n)
            .map(|i| match dist {
                0 => rng.next_u64() as u32,               // uniform
                1 => (rng.next_u64() % 16) as u32,        // duplicate-heavy
                2 => i as u32,                            // sorted
                _ => (rng.next_u64() % 251) as u32,       // low-entropy keys
            })
            .collect();
        let cfg = small_cfg();
        let arch = v100();
        let a = plan_rank_query(&arch, &data, n / 2, &cfg);
        let b = plan_rank_query(&arch, &data, n / 2, &cfg);
        prop_assert_eq!(a.backend, b.backend);
        prop_assert_eq!(a.overridden, b.overridden);
        let ea: Vec<_> = a.estimates.iter().map(|&(be, t)| (be, t.as_ns().to_bits())).collect();
        let eb: Vec<_> = b.estimates.iter().map(|&(be, t)| (be, t.as_ns().to_bits())).collect();
        prop_assert_eq!(ea, eb, "estimates must replay bit-for-bit");
    }
}

/// Deterministic companion to the property above: with corruption
/// guaranteed to land in a pooled region, the pool must record the
/// quarantined drop.
#[test]
fn corrupted_pooled_region_is_quarantined() {
    use gpu_selection::gpu_sim::FaultPlan;
    use gpu_selection::sampleselect::recursion::sample_select_with_workspace;
    use gpu_selection::sampleselect::SelectWorkspace;

    let data: Vec<i32> = (0..4096)
        .map(|i| (i * 2654435761u64 as i64 % 4096) as i32)
        .collect();
    let cfg = small_cfg();
    let pool = ThreadPool::new(1);
    let mut device = Device::new(v100(), &pool);
    device.enable_buffer_pool();
    let mut ws: SelectWorkspace<i32> = SelectWorkspace::new();

    // Corruptible-access index 1 is the level-0 `counts` buffer (index
    // 0 is the splitter staging buffer, which is workspace-owned): the
    // bit flip is guaranteed to land in a pool-recycled region.
    device.set_fault_plan(FaultPlan::new(3).corrupt_accesses_at(&[1]));
    let _ = sample_select_with_workspace(&mut device, &data, 2048, &cfg, &mut ws);
    device.clear_fault_plan();
    device.reset();

    let second = sample_select_with_workspace(&mut device, &data, 2048, &cfg, &mut ws).unwrap();
    assert_eq!(
        second.value,
        reference_select(&data, 2048).unwrap(),
        "query after quarantine must be exact"
    );
    let stats = device.buffer_pool_stats().expect("pool armed");
    assert!(
        stats.poisoned_dropped > 0,
        "guaranteed corruption must quarantine the poisoned buffer, stats: {stats:?}"
    );
}

// ---------------------------------------------------------------------
// SIMD dispatch: every level must be bit-identical to the scalar
// reference, for every element type, input length (lane-multiple or
// not), and key structure (NaN payloads, signed zeros, duplicate-heavy
// splitter sets). `SELECT_SIMD=scalar` (the portable fallback) and
// AVX2 must agree with each other and with the original scalar code.
// ---------------------------------------------------------------------

/// Every dispatch level this machine can run, `Off` (the original
/// scalar code shape) first.
fn simd_levels() -> Vec<gpu_selection::hpc_par::simd::SimdLevel> {
    use gpu_selection::hpc_par::simd::{avx2_available, SimdLevel};
    let mut levels = vec![SimdLevel::Off, SimdLevel::Scalar];
    if avx2_available() {
        levels.push(SimdLevel::Avx2);
    }
    levels
}

/// Tree lookups at every dispatch level, compared lane-for-lane.
fn assert_descent_identical<T: SelectElement>(data: &[T], splitters: &mut [T]) {
    use gpu_selection::hpc_par::simd::force_level;
    splitters.sort_unstable_by(|a, b| a.total_cmp(*b));
    let tree = SearchTree::build(splitters);
    let reference: Vec<u32> = data.iter().map(|&x| tree.lookup(x)).collect();
    let mut out = vec![0u32; data.len()];
    for level in simd_levels() {
        force_level(Some(level));
        tree.lookup_batch(data, &mut out);
        force_level(None);
        assert_eq!(out, reference, "descent diverged at dispatch {level}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn simd_descent_matches_scalar_u32(
        data in vec(any::<u32>(), 1..300),
        raw_splitters in vec(any::<u32>(), 3..64),
    ) {
        // Round the splitter count down to `b - 1` for a power-of-two b.
        let b = (raw_splitters.len() + 1).next_power_of_two() / 2;
        let mut splitters = raw_splitters[..b - 1].to_vec();
        assert_descent_identical(&data, &mut splitters);
    }

    #[test]
    fn simd_descent_matches_scalar_u64(
        data in vec(any::<u64>(), 1..300),
        raw_splitters in vec(any::<u64>(), 3..64),
    ) {
        let b = (raw_splitters.len() + 1).next_power_of_two() / 2;
        let mut splitters = raw_splitters[..b - 1].to_vec();
        assert_descent_identical(&data, &mut splitters);
    }

    #[test]
    fn simd_descent_matches_scalar_f32_all_bit_patterns(
        bits in vec(any::<u32>(), 1..300),
        raw_splitters in vec(-100.0f32..100.0, 3..64),
    ) {
        // Raw bit patterns cover NaN payloads, infinities, and both
        // zeros; splitters stay finite so the tree is well-ordered.
        let data: Vec<f32> = bits.iter().map(|&b| f32::from_bits(b)).collect();
        let b = (raw_splitters.len() + 1).next_power_of_two() / 2;
        let mut splitters = raw_splitters[..b - 1].to_vec();
        assert_descent_identical(&data, &mut splitters);
    }

    #[test]
    fn simd_descent_matches_scalar_duplicate_heavy(
        picks in vec(0usize..4, 1..300),
        sdup in vec(0usize..4, 7..8),
    ) {
        // Four distinct values and splitters drawn from the same tiny
        // set: every bucket boundary is an equality-bucket candidate.
        let values = [1.5f32, -0.0, 0.0, f32::NAN];
        let data: Vec<f32> = picks.iter().map(|&i| values[i]).collect();
        let mut splitters: Vec<f32> = sdup.iter().map(|&i| values[i % 3]).collect();
        assert_descent_identical(&data, &mut splitters);
    }

    #[test]
    fn simd_pivot_masks_and_compress_match_scalar(
        keys in vec(any::<u32>(), 1..33),
        pivot in any::<u32>(),
        force_dups in any::<bool>(),
    ) {
        use gpu_selection::hpc_par::simd::{
            compress_u32, mask_for_len, pivot_masks_u32, SimdLevel,
        };
        let keys: Vec<u32> = if force_dups {
            keys.iter().map(|&k| k % 4).collect()
        } else {
            keys
        };
        let pivot = if force_dups { pivot % 4 } else { pivot };
        let mut lt_ref = 0u32;
        let mut eq_ref = 0u32;
        for (i, &k) in keys.iter().enumerate() {
            if k < pivot {
                lt_ref |= 1 << i;
            } else if k == pivot {
                eq_ref |= 1 << i;
            }
        }
        for level in simd_levels() {
            if level == SimdLevel::Off {
                continue; // the primitives exist only at scalar/avx2
            }
            let (lt, eq) = pivot_masks_u32(&keys, pivot, level);
            prop_assert_eq!(lt, lt_ref, "lt mask diverged at {}", level);
            prop_assert_eq!(eq, eq_ref, "eq mask diverged at {}", level);
            for mask in [lt, eq, !(lt | eq) & mask_for_len(keys.len())] {
                let expect: Vec<u32> = keys
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| mask & (1 << i) != 0)
                    .map(|(_, &k)| k)
                    .collect();
                let mut staging = [0u32; 32];
                let cnt = compress_u32(&keys, mask, &mut staging, level);
                prop_assert_eq!(
                    &staging[..cnt],
                    expect.as_slice(),
                    "compress not stable/exact at {}",
                    level
                );
            }
        }
    }

    #[test]
    fn simd_float_keys_match_scalar(bits in vec(any::<u32>(), 1..100)) {
        use gpu_selection::hpc_par::simd::{lt_key_f32, sort_key_f32, SimdLevel};
        use gpu_selection::sampleselect::element::{fill_lt_keys32, fill_sort_keys32};
        let data: Vec<f32> = bits.iter().map(|&b| f32::from_bits(b)).collect();
        let lt_ref: Vec<u32> = data.iter().map(|&v| lt_key_f32(v)).collect();
        let sort_ref: Vec<u32> = data.iter().map(|&v| sort_key_f32(v)).collect();
        let mut out = vec![0u32; data.len()];
        for level in simd_levels() {
            if level == SimdLevel::Off {
                continue;
            }
            fill_lt_keys32(&data, &mut out, level);
            prop_assert_eq!(&out, &lt_ref, "lt keys diverged at {}", level);
            fill_sort_keys32(&data, &mut out, level);
            prop_assert_eq!(&out, &sort_ref, "sort keys diverged at {}", level);
        }
    }

    #[test]
    fn simd_full_query_identical_across_forced_levels(
        seed in any::<u64>(),
        dup in any::<bool>(),
    ) {
        use gpu_selection::hpc_par::simd::force_level;
        use gpu_selection::sampleselect::rng::SplitMix64;
        let mut rng = SplitMix64::new(seed);
        let n = 6000;
        let data: Vec<f32> = (0..n)
            .map(|_| {
                if dup {
                    (rng.next_u64() % 7) as f32
                } else {
                    rng.next_f64() as f32 * 2.0 - 1.0
                }
            })
            .collect();
        let cfg = small_cfg();
        let pool = ThreadPool::new(2);
        let mut reference: Option<(u32, u64)> = None;
        for level in simd_levels() {
            let mut device = Device::new(v100(), &pool);
            force_level(Some(level));
            let r = sample_select_on_device(&mut device, &data, n / 2, &cfg);
            force_level(None);
            let r = r.expect("select succeeds");
            let fp = (r.value.to_bits(), r.report.total_time.as_ns().to_bits());
            match reference {
                None => reference = Some(fp),
                Some(ref_fp) => prop_assert_eq!(
                    fp,
                    ref_fp,
                    "answer or simulated time diverged at dispatch {}",
                    level
                ),
            }
        }
    }
}
