//! Differential kernel-conformance suite for the SIMT sanitizer.
//!
//! Every kernel family of the paper's pipeline runs under three
//! schedules — the vectorized fast path (with the device sanitizer
//! armed), and the thread-level [`BlockExec`] reference under a
//! deterministic and two seed-shuffled warp orderings — and must
//! produce bit-identical outputs with zero sanitizer findings:
//!
//! 1. sample / bitonic sorting network,
//! 2. count + search-tree oracle classification,
//! 3. reduce / exclusive prefix sum,
//! 4. two-pass filter extraction,
//! 5. QuickSelect bipartition,
//! 6. fused top-k suffix extraction,
//! 7. RadixSelect digit-count + digit-scatter.
//!
//! The negative half: one deliberately-racy mutant per detector class
//! (`sampleselect::simt_ref::mutants`) proving the corresponding
//! detector fires, plus a zero-overhead check that arming the sanitizer
//! changes neither results nor the simulated clock on the bench paths.

use std::sync::atomic::{AtomicUsize, Ordering};

use gpu_selection::gpu_sim::arch::v100;
use gpu_selection::gpu_sim::sanitizer::{SanitizerConfig, SanitizerKind};
use gpu_selection::gpu_sim::{Device, LaunchOrigin, WarpSchedule};
use gpu_selection::hpc_par::ThreadPool;
use gpu_selection::sampleselect::bitonic::{bitonic_sort, bitonic_sort_on_block};
use gpu_selection::sampleselect::count::{count_kernel, CountResult};
use gpu_selection::sampleselect::element::SelectElement;
use gpu_selection::sampleselect::filter::filter_kernel;
use gpu_selection::sampleselect::radix::radix_digit_count_kernel;
use gpu_selection::sampleselect::reduce::{reduce_kernel, ReduceResult};
use gpu_selection::sampleselect::rng::SplitMix64;
use gpu_selection::sampleselect::searchtree::SearchTree;
use gpu_selection::sampleselect::simt_ref::{self, mutants};
use gpu_selection::sampleselect::splitter::sample_kernel;
use gpu_selection::sampleselect::streaming::{
    streaming_select, streaming_select_with_checkpoint, ChunkError, ChunkSource,
};
use gpu_selection::sampleselect::{
    bipartition_on_device, sample_select_on_device, top_k_largest_on_device, KernelScratch,
    SampleSelectConfig, SelectError,
};

/// The three schedules every reference kernel must agree under.
fn schedules() -> [WarpSchedule; 3] {
    [
        WarpSchedule::Sequential,
        WarpSchedule::Shuffled { seed: 0x5eed },
        WarpSchedule::Shuffled { seed: 1_234_517 },
    ]
}

fn gen_u32(n: usize, seed: u64, modulo: u32) -> Vec<u32> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| (rng.next_u64() % modulo as u64) as u32)
        .collect()
}

/// Run sample → count → reduce on an armed device and hand back the
/// pieces the per-family tests compare against.
fn armed_pipeline(
    device: &mut Device,
    data: &[u32],
    cfg: &SampleSelectConfig,
) -> (SearchTree<u32>, CountResult, ReduceResult, Vec<u32>) {
    let mut rng = SplitMix64::new(0x9e3779b97f4a7c15);
    let tree = sample_kernel(device, data, cfg, &mut rng, LaunchOrigin::Host).unwrap();
    let count = count_kernel(device, data, &tree, cfg, true, LaunchOrigin::Host);
    let red = reduce_kernel(device, &count, LaunchOrigin::Device);
    let oracles = count.oracles.as_ref().unwrap();
    let oracle: Vec<u32> = (0..data.len()).map(|i| oracles.get(i)).collect();
    (tree, count, red, oracle)
}

fn small_cfg() -> SampleSelectConfig {
    SampleSelectConfig::default().with_buckets(16)
}

#[test]
fn bitonic_family_conformance() {
    let data = gen_u32(97, 0xb1701c, 1_000_000);
    let mut expect = data.clone();
    bitonic_sort(&mut expect);
    for schedule in schedules() {
        let (got, report) = bitonic_sort_on_block(&data, schedule, Some(SanitizerConfig::full()));
        assert_eq!(got, expect, "bitonic reference diverged under {schedule:?}");
        let report = report.unwrap();
        assert!(
            report.is_clean(),
            "bitonic reference dirty: {}",
            report.to_json()
        );
    }
    // The unsanitized reference agrees too (and reports nothing).
    let (got, report) = bitonic_sort_on_block(&data, WarpSchedule::Sequential, None);
    assert_eq!(got, expect);
    assert!(report.is_none());
}

#[test]
fn count_family_conformance() {
    let pool = ThreadPool::new(4);
    let mut device = Device::new(v100(), &pool);
    device.set_sanitizer(SanitizerConfig::full());
    let data = gen_u32(3000, 0xc0417, 50_000);
    let cfg = small_cfg();
    let (tree, count, _red, oracle) = armed_pipeline(&mut device, &data, &cfg);

    // The stored oracles match the search tree's reference traversal.
    for (i, &x) in data.iter().enumerate() {
        assert_eq!(
            oracle[i],
            tree.lookup_reference(x),
            "oracle mismatch at {i}"
        );
    }

    // Thread-level histogram over the oracles reproduces the counts
    // bit-for-bit under every schedule, sanitizer-clean.
    for schedule in schedules() {
        let (counts, report) = simt_ref::block_histogram(
            &oracle,
            tree.num_buckets(),
            schedule,
            Some(SanitizerConfig::full()),
        );
        assert_eq!(
            counts, count.counts,
            "histogram diverged under {schedule:?}"
        );
        assert!(report.unwrap().is_clean());
    }
    assert!(device.sanitizer_clean(), "{}", device.sanitizer_json());
}

#[test]
fn reduce_family_conformance() {
    let pool = ThreadPool::new(4);
    let mut device = Device::new(v100(), &pool);
    device.set_sanitizer(SanitizerConfig::full());
    let data = gen_u32(3000, 0x4ed0ce, 50_000);
    let cfg = small_cfg();
    let (_tree, count, red, _oracle) = armed_pipeline(&mut device, &data, &cfg);

    let partials: Vec<u32> = count.partials.iter().map(|&p| p as u32).collect();
    for schedule in schedules() {
        let (scan, report) =
            simt_ref::block_exclusive_scan(&partials, schedule, Some(SanitizerConfig::full()));
        let scan64: Vec<u64> = scan.iter().map(|&x| x as u64).collect();
        assert_eq!(scan64, red.offsets, "scan diverged under {schedule:?}");
        assert!(report.unwrap().is_clean());
    }
    assert!(device.sanitizer_clean(), "{}", device.sanitizer_json());
}

#[test]
fn filter_family_conformance() {
    let pool = ThreadPool::new(4);
    let mut device = Device::new(v100(), &pool);
    device.set_sanitizer(SanitizerConfig::full());
    let data = gen_u32(2000, 0xf117e4, 40_000);
    let cfg = small_cfg();
    let (_tree, count, red, oracle) = armed_pipeline(&mut device, &data, &cfg);

    let bucket = red.bucket_for_rank(data.len() as u64 / 2) as u32;
    let got = filter_kernel(
        &mut device,
        &data,
        &count,
        &red,
        bucket..bucket + 1,
        &cfg,
        LaunchOrigin::Device,
    );
    for schedule in schedules() {
        let (want, report) = simt_ref::block_bucket_concat(
            &data,
            &oracle,
            bucket,
            bucket + 1,
            schedule,
            Some(SanitizerConfig::full()),
        );
        assert_eq!(got, want, "filter diverged under {schedule:?}");
        assert!(report.unwrap().is_clean());
    }
    assert!(device.sanitizer_clean(), "{}", device.sanitizer_json());
}

#[test]
fn bipartition_family_conformance() {
    let pool = ThreadPool::new(4);
    let mut device = Device::new(v100(), &pool);
    device.set_sanitizer(SanitizerConfig::full());
    let data = gen_u32(2000, 0xb142, 300);
    let pivot = 150u32;
    let cfg = small_cfg();
    let (got, smaller, equal) =
        bipartition_on_device(&mut device, &data, pivot, &cfg, LaunchOrigin::Host);
    for schedule in schedules() {
        let (want, s, e, report) =
            simt_ref::block_bipartition(&data, pivot, schedule, Some(SanitizerConfig::full()));
        assert_eq!(got, want, "bipartition diverged under {schedule:?}");
        assert_eq!((s, e), (smaller, equal));
        assert!(report.unwrap().is_clean());
    }
    assert!(device.sanitizer_clean(), "{}", device.sanitizer_json());
}

#[test]
fn topk_family_conformance() {
    let pool = ThreadPool::new(4);
    let mut device = Device::new(v100(), &pool);
    device.set_sanitizer(SanitizerConfig::full());
    let data = gen_u32(2000, 0x70b4, 40_000);
    let cfg = small_cfg();
    let (tree, count, red, oracle) = armed_pipeline(&mut device, &data, &cfg);

    // The fused top-k extraction pulls the target bucket plus every
    // larger bucket in one filter pass (§IV-I).
    let k = 400usize;
    let rank = (data.len() - k) as u64;
    let bucket = red.bucket_for_rank(rank) as u32;
    let b = tree.num_buckets() as u32;
    let fused = filter_kernel(
        &mut device,
        &data,
        &count,
        &red,
        bucket..b,
        &cfg,
        LaunchOrigin::Device,
    );
    for schedule in schedules() {
        let (want, report) = simt_ref::block_bucket_concat(
            &data,
            &oracle,
            bucket,
            b,
            schedule,
            Some(SanitizerConfig::full()),
        );
        assert_eq!(fused, want, "fused top-k diverged under {schedule:?}");
        assert!(report.unwrap().is_clean());
    }
    assert!(device.sanitizer_clean(), "{}", device.sanitizer_json());

    // End to end: the full fused driver on an armed device stays clean
    // and returns exactly the k largest elements.
    let mut device = Device::new(v100(), &pool);
    device.set_sanitizer(SanitizerConfig::full());
    let res = top_k_largest_on_device(&mut device, &data, k, &cfg).unwrap();
    let mut sorted = data.clone();
    sorted.sort_unstable();
    let mut got = res.elements.clone();
    got.sort_unstable();
    assert_eq!(got, sorted[data.len() - k..].to_vec());
    assert_eq!(res.threshold, sorted[data.len() - k]);
    assert!(device.sanitizer_clean(), "{}", device.sanitizer_json());
}

// ---------------------------------------------------------------------
// Negative half: each detector class fires on its mutant, under every
// schedule.
// ---------------------------------------------------------------------

#[test]
fn radix_family_conformance() {
    let pool = ThreadPool::new(4);
    let mut device = Device::new(v100(), &pool);
    device.set_sanitizer(SanitizerConfig::full());
    let data = gen_u32(3000, 0x4ad1c5, 60_000);
    let cfg = SampleSelectConfig::default();
    let scratch = KernelScratch::new();
    let keys: Vec<u64> = data.iter().map(|x| x.to_sort_key()).collect();

    // Values stay under 2^16, so shift 8 exercises a discriminating
    // digit and shift 0 the low byte; the dead digits at 24/16 are
    // covered by the all-in-bucket-zero histogram they produce anyway.
    for shift in [24u32, 8, 0] {
        let count = radix_digit_count_kernel(
            &mut device,
            &data,
            shift,
            &cfg,
            LaunchOrigin::Host,
            &scratch,
        );

        // The stored oracle bytes are exactly the extracted digits.
        let oracles = count.oracles.as_ref().unwrap();
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(
                oracles.get(i) as u64,
                (k >> shift) & 0xff,
                "digit oracle mismatch at {i} (shift {shift})"
            );
        }

        // Thread-level digit histogram reproduces the counts
        // bit-for-bit under every schedule, sanitizer-clean.
        for schedule in schedules() {
            let (counts, report) = simt_ref::block_digit_histogram(
                &keys,
                shift,
                schedule,
                Some(SanitizerConfig::full()),
            );
            assert_eq!(
                counts, count.counts,
                "digit histogram diverged under {schedule:?} (shift {shift})"
            );
            assert!(report.unwrap().is_clean());
        }

        // The production scatter (reduce → filter over the digit bucket
        // holding the median rank) agrees with the thread-level
        // flag/scan/scatter reference.
        let red = reduce_kernel(&mut device, &count, LaunchOrigin::Device);
        let bucket = red.bucket_for_rank(data.len() as u64 / 2) as u32;
        let got = filter_kernel(
            &mut device,
            &data,
            &count,
            &red,
            bucket..bucket + 1,
            &cfg,
            LaunchOrigin::Device,
        );
        for schedule in schedules() {
            let (want, report) = simt_ref::block_digit_scatter(
                &data,
                &keys,
                shift,
                bucket,
                schedule,
                Some(SanitizerConfig::full()),
            );
            assert_eq!(
                got, want,
                "digit scatter diverged under {schedule:?} (shift {shift})"
            );
            assert!(report.unwrap().is_clean());
        }
    }
    assert!(device.sanitizer_clean(), "{}", device.sanitizer_json());
}

#[test]
fn mutant_racy_digit_histogram_detected() {
    // Four distinct digits across 256 keys: plenty of same-word plain
    // read-modify-write collisions for the write-write detector.
    let keys: Vec<u64> = (0..256u64).map(|i| (i % 4) << 8).collect();
    for schedule in schedules() {
        let report = mutants::racy_digit_histogram(&keys, 8, schedule, SanitizerConfig::full());
        assert!(
            report.count_of(SanitizerKind::WriteWriteRace) > 0,
            "racy digit histogram must trip the write-write detector under {schedule:?}: {}",
            report.to_json()
        );
    }
}

#[test]
fn mutant_write_write_race_detected() {
    for schedule in schedules() {
        let r = mutants::write_write_race(schedule, SanitizerConfig::full());
        assert!(
            r.count_of(SanitizerKind::WriteWriteRace) > 0,
            "{}",
            r.to_json()
        );
        assert!(!r.is_clean());
    }
}

#[test]
fn mutant_read_write_race_detected() {
    for schedule in schedules() {
        let r = mutants::read_write_race(schedule, SanitizerConfig::full());
        assert!(
            r.count_of(SanitizerKind::ReadWriteRace) > 0,
            "{}",
            r.to_json()
        );
    }
}

#[test]
fn mutant_barrier_divergence_detected() {
    for schedule in schedules() {
        let r = mutants::barrier_divergence(schedule, SanitizerConfig::full());
        assert!(
            r.count_of(SanitizerKind::BarrierDivergence) > 0,
            "{}",
            r.to_json()
        );
    }
}

#[test]
fn mutant_uninit_read_detected() {
    for schedule in schedules() {
        let r = mutants::uninit_read(schedule, SanitizerConfig::full());
        assert!(r.count_of(SanitizerKind::UninitRead) > 0, "{}", r.to_json());
    }
}

#[test]
fn mutant_out_of_bounds_detected_and_degrades_without_sanitizer() {
    for schedule in schedules() {
        let r = mutants::oob_access(schedule, Some(SanitizerConfig::full())).unwrap();
        assert!(
            r.count_of(SanitizerKind::OutOfBounds) > 0,
            "{}",
            r.to_json()
        );
    }
    // Disarmed, the checked accessor surfaces a structured error rather
    // than a panic (the former smem OOB behaviour).
    let err = mutants::oob_access(WarpSchedule::Sequential, None).unwrap_err();
    assert!(
        matches!(err, SelectError::SharedOutOfBounds { .. }),
        "{err:?}"
    );
    assert!(!err.is_transient(), "an OOB kernel bug is permanent");
}

#[test]
fn mutant_mixed_atomic_detected() {
    for schedule in schedules() {
        let r = mutants::mixed_atomic(schedule, SanitizerConfig::full());
        assert!(
            r.count_of(SanitizerKind::MixedAtomic) > 0,
            "{}",
            r.to_json()
        );
    }
}

// ---------------------------------------------------------------------
// Overhead and determinism guarantees.
// ---------------------------------------------------------------------

/// Arming the sanitizer must not move the simulated clock or the
/// result on the fig8/fig9 bench paths: detectors live on the
/// `BlockExec` reference path and in allocation shadows, never in the
/// vectorized kernels' cost model.
#[test]
fn sanitizer_off_has_zero_overhead_on_bench_paths() {
    let data = gen_u32(50_000, 0x0f8f9, 1 << 20);
    let rank = 12_345usize;
    let cfg = SampleSelectConfig::default();
    let pool = ThreadPool::new(4);

    let mut plain = Device::new(v100(), &pool);
    let base = sample_select_on_device(&mut plain, &data, rank, &cfg).unwrap();

    let mut armed = Device::new(v100(), &pool);
    armed.set_sanitizer(SanitizerConfig::full());
    let sanitized = sample_select_on_device(&mut armed, &data, rank, &cfg).unwrap();

    assert_eq!(base.value, sanitized.value);
    assert_eq!(
        plain.total_time(),
        armed.total_time(),
        "sanitizer must cost zero simulated time"
    );
    assert_eq!(plain.records().len(), armed.records().len());
    for (p, a) in plain.records().iter().zip(armed.records()) {
        assert_eq!(p.duration, a.duration, "kernel {} slowed down", p.name);
        assert!(
            p.sanitizer.is_none(),
            "disarmed device must not attach reports"
        );
        let report = a
            .sanitizer
            .as_ref()
            .expect("armed device attaches a report");
        assert!(report.is_clean(), "{}", report.to_json());
    }
    assert!(armed.sanitizer_clean());
}

/// A chunk source that fails `fail_times` loads of chunk `target`.
struct FlakyChunks<'a> {
    data: &'a [u32],
    chunk_len: usize,
    target: usize,
    fail_times: usize,
    failures: AtomicUsize,
}

impl ChunkSource<u32> for FlakyChunks<'_> {
    fn num_chunks(&self) -> usize {
        self.data.len().div_ceil(self.chunk_len).max(1)
    }

    fn load_chunk(&self, idx: usize) -> Result<Vec<u32>, ChunkError> {
        if idx == self.target && self.failures.load(Ordering::SeqCst) < self.fail_times {
            self.failures.fetch_add(1, Ordering::SeqCst);
            return Err(ChunkError {
                chunk: idx,
                message: "injected I/O failure".to_string(),
                transient: true,
            });
        }
        let start = (idx * self.chunk_len).min(self.data.len());
        let end = ((idx + 1) * self.chunk_len).min(self.data.len());
        Ok(self.data[start..end].to_vec())
    }

    fn total_len(&self) -> usize {
        self.data.len()
    }
}

/// Satellite: resuming a checkpointed streaming run on a *different*
/// thread-pool size (a different warp-level interleaving of the host
/// backend) still lands on the bit-identical result — position handout
/// is scan-based, never a first-come atomic cursor.
#[test]
fn checkpoint_resume_is_pool_size_invariant() {
    let data = gen_u32(1 << 15, 0x57e5a, 1 << 18);
    let rank = 11_111usize;
    let cfg = SampleSelectConfig::default();
    let ckpt = std::env::temp_dir().join(format!(
        "gpu-selection-conformance-ckpt-{}.bin",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&ckpt);

    // Uninterrupted reference on a single-threaded pool.
    let pool1 = ThreadPool::new(1);
    let mut device = Device::new(v100(), &pool1);
    let healthy = FlakyChunks {
        data: &data,
        chunk_len: 1 << 12,
        target: usize::MAX,
        fail_times: 0,
        failures: AtomicUsize::new(0),
    };
    let expected = streaming_select(&mut device, &healthy, rank, &cfg).unwrap();

    // Crash at chunk 3 on a two-thread pool, checkpointing progress...
    let pool2 = ThreadPool::new(2);
    let mut device = Device::new(v100(), &pool2);
    let dying = FlakyChunks {
        data: &data,
        chunk_len: 1 << 12,
        target: 3,
        fail_times: usize::MAX,
        failures: AtomicUsize::new(0),
    };
    let err = streaming_select_with_checkpoint(&mut device, &dying, rank, &cfg, &ckpt, false)
        .unwrap_err();
    assert!(matches!(err, SelectError::ChunkLoad(_)));
    assert!(ckpt.exists());

    // ...and resume on a five-thread pool: bit-identical value.
    let pool5 = ThreadPool::new(5);
    let mut device = Device::new(v100(), &pool5);
    let resumed =
        streaming_select_with_checkpoint(&mut device, &healthy, rank, &cfg, &ckpt, true).unwrap();
    assert_eq!(resumed.value, expected.value);
    assert_eq!(resumed.report.resilience.resumed, 1);
    assert!(!ckpt.exists(), "checkpoint removed after success");
}
