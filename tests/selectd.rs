//! Integration tests for the `selectd` server core: admission control
//! (quotas, bounded queue, drain), deadline degradation, circuit
//! breaking under injected faults, cross-query batching, graceful and
//! hard drain, the wire codec end-to-end, and — the headline — the
//! guarantee that concurrent execution is bit-identical to serial
//! execution of the same queries.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use gpu_selection::gpu_sim::arch::v100;
use gpu_selection::gpu_sim::{Device, FaultPlan};
use gpu_selection::hpc_par::ThreadPool;
use gpu_selection::sampleselect::approx::approx_select_on_device;
use gpu_selection::sampleselect::element::reference_select;
use gpu_selection::sampleselect::server::dataset::{self, DatasetSpec, DistCode};
use gpu_selection::sampleselect::server::{wire, QuotaConfig};
use gpu_selection::sampleselect::{
    BreakerConfig, QueryKind, QueryRequest, QueryStatus, SampleSelectConfig, SelectError,
    SelectServer, ServerConfig,
};
use proptest::prelude::*;

fn unique_spool(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "selectd-test-{}-{}-{}",
        std::process::id(),
        tag,
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("create spool dir");
    dir
}

fn exact(tenant: &str, spec: DatasetSpec, rank: u64, seed: u64) -> QueryRequest {
    QueryRequest {
        tenant: tenant.to_string(),
        kind: QueryKind::Exact { rank },
        dataset: spec,
        deadline_ms: None,
        seed,
    }
}

#[test]
fn exact_queries_answer_correctly_across_tenants() {
    let server = SelectServer::start(ServerConfig::default().with_workers(2));
    let mut tickets = Vec::new();
    let mut expected = Vec::new();
    for (i, dist) in [DistCode::Uniform, DistCode::Normal, DistCode::Distinct16]
        .into_iter()
        .enumerate()
    {
        let spec = DatasetSpec {
            dist,
            n: 20_000,
            seed: 11 + i as u64,
        };
        let rank = 1_000 + 3_000 * i as u64;
        let data = dataset::instantiate(&spec);
        expected.push(reference_select(&data, rank as usize).unwrap());
        tickets.push(
            server
                .submit(exact(&format!("tenant-{i}"), spec, rank, 77))
                .expect("admitted"),
        );
    }
    for (ticket, want) in tickets.into_iter().zip(expected) {
        match ticket.wait().status {
            QueryStatus::Exact { value } => assert_eq!(value.to_bits(), want.to_bits()),
            other => panic!("expected exact answer, got {other:?}"),
        }
    }
    let snap = server.drain();
    assert_eq!(snap.queries_served, 3);
    assert_eq!(snap.tenants.len(), 3);
    for (_, c) in &snap.tenants {
        assert_eq!(c.admitted, 1);
        assert_eq!(c.exact, 1);
        assert_eq!(c.failed, 0);
    }
}

#[test]
fn quota_exhaustion_rejects_with_explicit_backpressure() {
    let cfg = ServerConfig::default().with_workers(1).with_quota(
        QuotaConfig::default()
            .with_burst(2.0)
            .with_refill_per_sec(0.0),
    );
    let server = SelectServer::start(cfg);
    let spec = DatasetSpec::uniform(4_096, 3);

    let t1 = server.submit(exact("greedy", spec, 10, 1)).expect("1st");
    let t2 = server.submit(exact("greedy", spec, 20, 2)).expect("2nd");
    match server.submit(exact("greedy", spec, 30, 3)) {
        Err(SelectError::Overloaded { reason, tenant }) => {
            assert_eq!(reason, "quota");
            assert_eq!(tenant, "greedy");
        }
        other => panic!("3rd query must hit the quota, got {other:?}"),
    }
    // Another tenant has its own bucket and is unaffected.
    let t3 = server
        .submit(exact("patient", spec, 30, 3))
        .expect("other tenant");
    for t in [t1, t2, t3] {
        assert!(matches!(t.wait().status, QueryStatus::Exact { .. }));
    }

    let snap = server.drain();
    let greedy = &snap.tenants.iter().find(|(n, _)| n == "greedy").unwrap().1;
    assert_eq!(greedy.admitted, 2);
    assert_eq!(greedy.rejected, 1);
    let m = &snap.metrics;
    let get = |name: &str| {
        m.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
            .unwrap_or_else(|| panic!("counter {name} missing"))
    };
    assert_eq!(get("select_admitted_total"), 3);
    assert_eq!(get("select_rejected_total"), 1);
}

#[test]
fn draining_server_rejects_new_queries() {
    let server = SelectServer::start(ServerConfig::default().with_workers(1));
    server.begin_drain(false);
    match server.submit(exact("late", DatasetSpec::uniform(1_024, 1), 5, 1)) {
        Err(SelectError::Overloaded { reason, .. }) => assert_eq!(reason, "draining"),
        other => panic!("expected draining rejection, got {other:?}"),
    }
    let snap = server.drain();
    assert!(snap.events.iter().any(|e| e.contains("admission stopped")));
}

#[test]
fn invalid_queries_fail_without_consuming_quota() {
    let cfg = ServerConfig::default().with_quota(
        QuotaConfig::default()
            .with_burst(1.0)
            .with_refill_per_sec(0.0),
    );
    let server = SelectServer::start(cfg);
    let spec = DatasetSpec::uniform(100, 1);
    assert!(matches!(
        server.submit(exact("t", spec, 100, 1)),
        Err(SelectError::RankOutOfRange { .. })
    ));
    assert!(matches!(
        server.submit(exact(
            "t",
            DatasetSpec {
                dist: DistCode::Uniform,
                n: 0,
                seed: 1
            },
            0,
            1
        )),
        Err(SelectError::EmptyInput)
    ));
    // The bad queries above must not have burned the single token.
    let t = server
        .submit(exact("t", spec, 50, 1))
        .expect("token intact");
    assert!(matches!(t.wait().status, QueryStatus::Exact { .. }));
}

#[test]
fn oversized_quantile_count_is_rejected_at_admission() {
    // Serving Quantiles{q} builds q-1 ranks, so an unbounded q from a
    // remote client would be a one-query allocation DoS. Admission
    // must bound it by n, mirroring the TopK k<=n check.
    let server = SelectServer::start(ServerConfig::default().with_workers(1));
    let spec = DatasetSpec::uniform(1_000, 2);
    for q in [1_001u64, u64::MAX] {
        match server.submit(QueryRequest {
            tenant: "hostile".to_string(),
            kind: QueryKind::Quantiles { q },
            dataset: spec,
            deadline_ms: None,
            seed: 1,
        }) {
            Err(SelectError::RankOutOfRange { .. }) => {}
            other => panic!("q={q} must be rejected at admission, got {other:?}"),
        }
    }
    // A sane q still works.
    let resp = server
        .query(QueryRequest {
            tenant: "sane".to_string(),
            kind: QueryKind::Quantiles { q: 4 },
            dataset: spec,
            deadline_ms: None,
            seed: 1,
        })
        .expect("admitted");
    match resp.status {
        QueryStatus::Quantiles { values } => assert_eq!(values.len(), 3),
        other => panic!("expected quantiles, got {other:?}"),
    }
    server.drain();
}

#[test]
fn queue_full_rejection_refunds_the_quota_token() {
    // No workers: the queue never drains, so the second submission is
    // rejected queue-full. That rejection must hand the quota token
    // back — with a burst of 2 and no refill, a tenant that loses a
    // token to every queue-full rejection would hit "quota" on its
    // third try instead of "queue-full".
    let cfg = ServerConfig {
        workers: 0,
        queue_capacity: 1,
        quota: QuotaConfig::default()
            .with_burst(2.0)
            .with_refill_per_sec(0.0),
        ..ServerConfig::default()
    };
    let server = SelectServer::start(cfg);
    let spec = DatasetSpec::uniform(1_024, 4);
    let _queued = server.submit(exact("t", spec, 10, 1)).expect("admitted");
    for attempt in 0..3 {
        match server.submit(exact("t", spec, 20, 2)) {
            Err(SelectError::Overloaded { reason, .. }) => assert_eq!(
                reason, "queue-full",
                "attempt {attempt}: rejection must refund the token, \
                 not burn quota"
            ),
            other => panic!("attempt {attempt}: expected queue-full, got {other:?}"),
        }
    }
    let snap = server.snapshot();
    let t = &snap.tenants.iter().find(|(n, _)| n == "t").unwrap().1;
    assert_eq!(t.admitted, 1);
    assert_eq!(t.rejected, 3);
}

#[test]
fn deadline_head_job_is_not_served_through_the_batch_path() {
    // A deadline-carrying exact query that becomes the head of a batch
    // must NOT be merged into the multiselect pass (which ignores
    // deadlines): it has to go through serve_job's expired/remaining-
    // budget path. Queue it behind a blocker together with mergeable
    // deadline-free queries on the same dataset.
    let server = SelectServer::start(ServerConfig::default().with_workers(1).with_batch_max(8));
    let big = DatasetSpec::uniform(400_000, 5);
    let head = server.submit(exact("blocker", big, 200_000, 1)).unwrap();

    let spec = DatasetSpec::uniform(8_192, 6);
    let deadline_ticket = server
        .submit(QueryRequest {
            tenant: "impatient".to_string(),
            kind: QueryKind::Exact { rank: 4_000 },
            dataset: spec,
            deadline_ms: Some(0), // expired the moment it waits at all
            seed: 2,
        })
        .unwrap();
    let followers: Vec<_> = [10u64, 7_000, 8_000]
        .iter()
        .map(|&r| server.submit(exact("patient", spec, r, 2)).unwrap())
        .collect();

    head.wait();
    let resp = deadline_ticket.wait();
    assert!(
        !resp.batched,
        "deadline-carrying query must not ride the batch path"
    );
    match resp.status {
        QueryStatus::Approximate {
            deadline_degraded, ..
        } => assert!(deadline_degraded, "expired deadline must degrade, tagged"),
        other => panic!("expired-deadline head must degrade, got {other:?}"),
    }
    for f in followers {
        assert!(matches!(f.wait().status, QueryStatus::Exact { .. }));
    }
    server.drain();
}

#[test]
fn expired_deadline_degrades_to_tagged_approximate() {
    let server = SelectServer::start(ServerConfig::default().with_workers(1));
    let spec = DatasetSpec::uniform(50_000, 9);
    let data = dataset::instantiate(&spec);
    let rank = 25_000u64;
    // A zero-millisecond deadline has always expired by dequeue time:
    // the server must shed the exact attempt and answer with a tagged
    // approximation, never a silent timeout or an untagged answer.
    let resp = server
        .query(QueryRequest {
            tenant: "impatient".to_string(),
            kind: QueryKind::Exact { rank },
            dataset: spec,
            deadline_ms: Some(0),
            seed: 4,
        })
        .expect("admitted");
    match resp.status {
        QueryStatus::Approximate {
            value,
            achieved_rank,
            rank_error,
            deadline_degraded,
        } => {
            assert!(deadline_degraded, "degradation must be tagged");
            assert_eq!(
                value.to_bits(),
                reference_select(&data, achieved_rank as usize)
                    .unwrap()
                    .to_bits(),
                "achieved_rank must be the true rank of the returned value"
            );
            assert_eq!(rank_error, achieved_rank.abs_diff(rank));
        }
        other => panic!("expected tagged approximate, got {other:?}"),
    }
    let snap = server.drain();
    let t = &snap.tenants[0].1;
    assert_eq!(t.deadline_degraded, 1);
    let degraded = snap
        .metrics
        .counters
        .iter()
        .find(|(n, _)| *n == "select_deadline_degraded_total")
        .unwrap()
        .1;
    assert_eq!(degraded, 1);
}

#[test]
fn breaker_quarantines_flaky_device_and_answers_stay_exact() {
    // Worker 0's primary device fails every launch; the breaker must
    // open and reroute to the clean spare, and every answer must still
    // be exact (the resilient driver absorbs the faults meanwhile).
    let cfg = ServerConfig::default()
        .with_workers(1)
        .with_batch_max(1)
        .with_breaker(BreakerConfig {
            failure_threshold: 2,
            probe_after: 4,
        })
        .with_fault_plan(0, FaultPlan::new(77).launch_failures(1.0));
    let server = SelectServer::start(cfg);
    let spec = DatasetSpec::uniform(8_192, 21);
    let data = dataset::instantiate(&spec);

    let mut responses = Vec::new();
    for i in 0..12u64 {
        let rank = 100 + i * 500;
        let resp = server
            .query(exact("flaky-tenant", spec, rank, i))
            .expect("admitted");
        responses.push((rank, resp));
    }
    for (rank, resp) in &responses {
        match &resp.status {
            QueryStatus::Exact { value } => assert_eq!(
                value.to_bits(),
                reference_select(&data, *rank as usize).unwrap().to_bits(),
                "no silently-wrong exact under faults"
            ),
            other => panic!("expected exact answer under faults, got {other:?}"),
        }
    }

    let snap = server.drain();
    assert!(
        snap.events.iter().any(|e| e.contains("quarantined")),
        "breaker must have opened; events: {:?}",
        snap.events
    );
    let opened = snap
        .metrics
        .counters
        .iter()
        .find(|(n, _)| *n == "select_breaker_open_total")
        .unwrap()
        .1;
    assert!(opened >= 1);
    let t = &snap.tenants[0].1;
    assert!(
        t.breaker_rerouted >= 1,
        "some queries must have been served on the spare: {t:?}"
    );
}

#[test]
fn same_dataset_exact_queries_batch_into_one_multiselect() {
    let server = SelectServer::start(ServerConfig::default().with_workers(1).with_batch_max(8));
    // Head-of-line blocker: a large exact query keeps the single worker
    // busy while the small same-spec queries pile up behind it.
    let big = DatasetSpec::uniform(400_000, 5);
    let big_data = dataset::instantiate(&big);
    let head = server.submit(exact("blocker", big, 200_000, 1)).unwrap();

    let spec = DatasetSpec::uniform(8_192, 6);
    let data = dataset::instantiate(&spec);
    let ranks = [10u64, 4_000, 7_000, 8_000];
    let tickets: Vec<_> = ranks
        .iter()
        .map(|&r| server.submit(exact("batcher", spec, r, 2)).unwrap())
        .collect();

    match head.wait().status {
        QueryStatus::Exact { value } => {
            assert_eq!(
                value.to_bits(),
                reference_select(&big_data, 200_000).unwrap().to_bits()
            );
        }
        other => panic!("head query failed: {other:?}"),
    }
    let mut batched_count = 0;
    for (ticket, &rank) in tickets.into_iter().zip(&ranks) {
        let resp = ticket.wait();
        if resp.batched {
            batched_count += 1;
        }
        match resp.status {
            QueryStatus::Exact { value } => assert_eq!(
                value.to_bits(),
                reference_select(&data, rank as usize).unwrap().to_bits()
            ),
            other => panic!("batched query failed: {other:?}"),
        }
    }
    assert!(
        batched_count >= 2,
        "at least one merged multiselect pass expected, got {batched_count} batched answers"
    );
    let snap = server.drain();
    let counted = snap
        .metrics
        .counters
        .iter()
        .find(|(n, _)| *n == "select_batched_total")
        .unwrap()
        .1;
    assert_eq!(counted, batched_count as u64);
}

#[test]
fn hard_drain_checkpoints_streaming_query_and_resume_completes_it() {
    let spool = unique_spool("harddrain");
    let spec = DatasetSpec::uniform(300_000, 13);
    let data = dataset::instantiate(&spec);
    let rank = 150_000u64;
    let stream = QueryRequest {
        tenant: "streamer".to_string(),
        kind: QueryKind::Stream {
            rank,
            chunk_len: 4_096,
        },
        dataset: spec,
        deadline_ms: None,
        seed: 8,
    };

    let server = SelectServer::start(
        ServerConfig::default()
            .with_workers(1)
            .with_spool_dir(spool.clone()),
    );
    let ticket = server.submit(stream.clone()).expect("admitted");
    // Give the worker a moment to start chewing chunks, then pull the
    // plug mid-stream.
    std::thread::sleep(std::time::Duration::from_millis(30));
    server.begin_drain(true);
    let first = ticket.wait();
    let want = reference_select(&data, rank as usize).unwrap();
    match &first.status {
        QueryStatus::Checkpointed { resume_token } => {
            assert!(
                std::path::Path::new(resume_token).exists(),
                "checkpoint file must survive the drain"
            );
        }
        // The query may legitimately win the race and finish first; it
        // must then be exact and correct.
        QueryStatus::Exact { value } => assert_eq!(value.to_bits(), want.to_bits()),
        other => panic!("unexpected drain outcome: {other:?}"),
    }
    server.drain();

    // A fresh server over the same spool resumes (or re-runs) the query
    // to the exact answer.
    let server2 = SelectServer::start(
        ServerConfig::default()
            .with_workers(1)
            .with_spool_dir(spool.clone()),
    );
    match server2.query(stream).expect("admitted").status {
        QueryStatus::Exact { value } => assert_eq!(value.to_bits(), want.to_bits()),
        other => panic!("resumed query must complete exactly, got {other:?}"),
    }
    server2.drain();
    let _ = std::fs::remove_dir_all(&spool);
}

#[test]
fn approx_topk_queries_are_admitted_and_honest() {
    let server = SelectServer::start(ServerConfig::default().with_workers(2));
    let spec = DatasetSpec::uniform(200_000, 21);
    let k = 5_000u64;
    let ticket = server
        .submit(QueryRequest {
            tenant: "recall".to_string(),
            kind: QueryKind::ApproxTopK {
                k,
                recall_bits: 0.95f32.to_bits(),
            },
            dataset: spec,
            deadline_ms: None,
            seed: 9,
        })
        .expect("admitted");
    let resp = ticket.wait();
    let data = dataset::instantiate(&spec);
    let exact_threshold = reference_select(&data, (spec.n - k) as usize).unwrap();
    match resp.status {
        QueryStatus::ApproxTopK {
            threshold,
            k: got_k,
            expected_recall,
        } => {
            assert_eq!(got_k, k);
            // Candidates are a subset of the input, so the approximate
            // threshold can never exceed the exact top-k threshold.
            assert!(threshold <= exact_threshold);
            assert!(expected_recall > 0.0 && expected_recall <= 1.0);
        }
        other => panic!("expected approx top-k status, got {other:?}"),
    }

    // Malformed ranks and recall targets are refused at admission,
    // before any quota is charged or a worker is woken.
    let bad = |kind| QueryRequest {
        tenant: "recall".to_string(),
        kind,
        dataset: spec,
        deadline_ms: None,
        seed: 1,
    };
    assert!(matches!(
        server.submit(bad(QueryKind::ApproxTopK {
            k: 0,
            recall_bits: 0.9f32.to_bits(),
        })),
        Err(SelectError::RankOutOfRange { .. })
    ));
    assert!(matches!(
        server.submit(bad(QueryKind::ApproxTopK {
            k: spec.n + 1,
            recall_bits: 0.9f32.to_bits(),
        })),
        Err(SelectError::RankOutOfRange { .. })
    ));
    for bits in [f32::NAN.to_bits(), 0.0f32.to_bits(), 1.5f32.to_bits()] {
        assert!(matches!(
            server.submit(bad(QueryKind::ApproxTopK {
                k: 10,
                recall_bits: bits,
            })),
            Err(SelectError::InvalidArgument { .. })
        ));
    }
    server.drain();
}

#[test]
fn quantile_stream_query_serves_reference_quantiles_and_cleans_spool() {
    use gpu_selection::sampleselect::{rank_for_prob, DEFAULT_PROBS};

    let spool = unique_spool("qstream");
    let server = SelectServer::start(
        ServerConfig::default()
            .with_workers(1)
            .with_spool_dir(spool.clone()),
    );
    let spec = DatasetSpec::uniform(40_000, 5);
    let (len, slide) = (10_000u64, 5_000u64);
    let resp = server
        .submit(QueryRequest {
            tenant: "telemetry".to_string(),
            kind: QueryKind::QuantileStream {
                window_len: len,
                slide,
                chunk_len: 4_096,
            },
            dataset: spec,
            deadline_ms: None,
            seed: 3,
        })
        .expect("admitted")
        .wait();
    let data = dataset::instantiate(&spec);
    match resp.status {
        QueryStatus::QuantileStream { windows, values } => {
            assert_eq!(windows, 1 + (spec.n - len) / slide);
            // The reported values are the quantiles of the last closed
            // window: the trailing `len` elements ending at the final
            // slide boundary.
            let end = (len + ((spec.n - len) / slide) * slide) as usize;
            let mut window: Vec<f32> = data[end - len as usize..end].to_vec();
            window.sort_by(f32::total_cmp);
            assert_eq!(values.len(), DEFAULT_PROBS.len());
            for (p, got) in DEFAULT_PROBS.iter().zip(&values) {
                let want = window[rank_for_prob(len as usize, *p)];
                assert_eq!(got.to_bits(), want.to_bits());
            }
        }
        other => panic!("expected quantile-stream status, got {other:?}"),
    }
    // The finite pass completed, so its restart checkpoint is gone.
    let leftover: Vec<_> = std::fs::read_dir(&spool)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().starts_with("qstream-"))
        .collect();
    assert!(
        leftover.is_empty(),
        "completed pass must clean its checkpoint: {leftover:?}"
    );
    server.drain();
    let _ = std::fs::remove_dir_all(&spool);

    // Without a spool directory the kind is refused up front — there is
    // nowhere to park a restart checkpoint.
    let no_spool = SelectServer::start(ServerConfig::default().with_workers(1));
    match no_spool.submit(QueryRequest {
        tenant: "telemetry".to_string(),
        kind: QueryKind::QuantileStream {
            window_len: 8,
            slide: 8,
            chunk_len: 8,
        },
        dataset: DatasetSpec::uniform(1_024, 1),
        deadline_ms: None,
        seed: 1,
    }) {
        Err(SelectError::Overloaded { reason, .. }) => assert_eq!(reason, "streaming-disabled"),
        other => panic!("expected streaming-disabled rejection, got {other:?}"),
    }
    no_spool.drain();
}

#[test]
fn snapshot_json_is_well_formed_and_carries_tenants() {
    let server = SelectServer::start(ServerConfig::default().with_workers(1));
    let spec = DatasetSpec::uniform(2_048, 30);
    server
        .query(exact("json \"tenant\"", spec, 100, 1))
        .unwrap();
    let snap = server.drain();
    let json = snap.to_json();
    let parsed = gpu_selection::gpu_sim::jsonv::parse(&json)
        .unwrap_or_else(|e| panic!("snapshot JSON must parse: {e}\n{json}"));
    let text = format!("{parsed:?}");
    assert!(text.contains("selectd-snapshot-v1"));
    assert!(
        json.contains("json \\\"tenant\\\""),
        "tenant names are escaped"
    );
}

// ---------------------------------------------------------------------
// Wire protocol end-to-end (codec + framing over an in-memory pipe)
// ---------------------------------------------------------------------

#[test]
fn wire_frames_roundtrip_through_a_byte_stream() {
    let req = wire::Request::Query(QueryRequest {
        tenant: "net".to_string(),
        kind: QueryKind::TopK { k: 64 },
        dataset: DatasetSpec {
            dist: DistCode::Exponential,
            n: 1 << 16,
            seed: 5,
        },
        deadline_ms: Some(100),
        seed: 17,
    });
    let mut stream = Vec::new();
    wire::write_frame(&mut stream, &wire::encode_request(&req).unwrap()).unwrap();
    wire::write_frame(
        &mut stream,
        &wire::encode_request(&wire::Request::Stats).unwrap(),
    )
    .unwrap();

    let mut cursor = std::io::Cursor::new(stream);
    let f1 = wire::read_frame(&mut cursor).unwrap().unwrap();
    assert_eq!(wire::decode_request(&f1).unwrap(), req);
    let f2 = wire::read_frame(&mut cursor).unwrap().unwrap();
    assert_eq!(wire::decode_request(&f2).unwrap(), wire::Request::Stats);
    assert!(
        wire::read_frame(&mut cursor).unwrap().is_none(),
        "clean EOF"
    );
}

// ---------------------------------------------------------------------
// Bit-identity: concurrent server == serial direct execution
// ---------------------------------------------------------------------

/// Serial reference for one query: a fresh device, the same per-query
/// seed, the same driver family the server uses on its happy path.
fn serial_answer(req: &QueryRequest) -> QueryStatus {
    let pool = ThreadPool::new(1);
    let mut device = Device::new(v100(), &pool);
    device.enable_buffer_pool();
    let data = dataset::instantiate(&req.dataset);
    let cfg = SampleSelectConfig::default().with_seed(req.seed);
    match req.kind {
        QueryKind::Exact { rank } => QueryStatus::Exact {
            value: reference_select(&data, rank as usize).unwrap(),
        },
        QueryKind::Approx { rank } => {
            let a = approx_select_on_device(&mut device, &data, rank as usize, &cfg).unwrap();
            QueryStatus::Approximate {
                value: a.value,
                achieved_rank: a.achieved_rank,
                rank_error: a.rank_error,
                deadline_degraded: false,
            }
        }
        _ => unreachable!("proptest only generates exact/approx"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8 })]

    /// Mixed exact/approx queries from several tenants, executed
    /// concurrently on a multi-worker server (with batching enabled),
    /// must produce bit-identical results to serial one-at-a-time
    /// execution. This is the determinism contract that makes the
    /// service debuggable: concurrency, admission order, batching, and
    /// device pooling are all invisible in the answers.
    #[test]
    fn concurrent_execution_is_bit_identical_to_serial(
        raw in proptest::collection::vec(0u64..u64::MAX, 4..16),
    ) {
        let n = 6_000u64;
        // Unpack each raw u64 into (kind, dataset seed, rank, query
        // seed) — the vendored proptest shim has no tuple strategies.
        let queries: Vec<(u8, u64, u64, u64)> = raw
            .iter()
            .map(|&r| {
                ((r % 2) as u8, 1 + (r >> 1) % 3, (r >> 3) % n, 1 + (r >> 17) % 1_000_000)
            })
            .collect();
        let server = SelectServer::start(
            ServerConfig::default()
                .with_workers(3)
                .with_batch_max(4)
                .with_queue_capacity(64)
                .with_quota(QuotaConfig::default().with_burst(1e9)),
        );
        let reqs: Vec<QueryRequest> = queries
            .iter()
            .map(|&(kind, dseed, rank, qseed)| QueryRequest {
                tenant: format!("t{}", dseed % 2),
                kind: if kind == 0 {
                    QueryKind::Exact { rank }
                } else {
                    QueryKind::Approx { rank }
                },
                dataset: DatasetSpec { dist: DistCode::Uniform, n, seed: dseed },
                deadline_ms: None,
                seed: qseed,
            })
            .collect();
        let tickets: Vec<_> = reqs
            .iter()
            .map(|r| server.submit(r.clone()).expect("admitted"))
            .collect();
        for (req, ticket) in reqs.iter().zip(tickets) {
            let got = ticket.wait().status;
            let want = serial_answer(req);
            prop_assert_eq!(
                format!("{got:?}"),
                format!("{want:?}"),
                "query {:?} diverged under concurrency",
                req
            );
        }
        server.drain();
    }
}
