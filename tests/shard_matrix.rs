//! CI shard matrix: sharded selection under every fault class, at every
//! shard count.
//!
//! `SHARD_MATRIX_K` pins one shard count (2, 4, or 8) and
//! `SHARD_MATRIX_FAULT` pins one fault class (`launch`, `bitflip`,
//! `latency`, `shard-kill`, `shard-kill-degraded`);
//! `SHARD_MATRIX_SEED` overrides the fault seed. With nothing set, the
//! whole grid runs with the default seed. Every leg must finish without
//! panicking: exact for every recoverable class, *tagged approximate*
//! for the exhausted-recovery-budget leg — never a silently wrong exact.

use gpu_selection::gpu_sim::arch::v100;
use gpu_selection::gpu_sim::FaultPlan;
use gpu_selection::hpc_par::ThreadPool;
use gpu_selection::sampleselect::element::reference_select;
use gpu_selection::sampleselect::rng::SplitMix64;
use gpu_selection::sampleselect::{
    sharded_select, Outcome, SampleSelectConfig, ShardConfig, ShardFaults, VerifyPolicy,
};

fn uniform(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = SplitMix64::new(seed);
    (0..n).map(|_| rng.next_f64() as f32).collect()
}

const ALL_FAULTS: [&str; 5] = [
    "launch",
    "bitflip",
    "latency",
    "shard-kill",
    "shard-kill-degraded",
];

#[test]
fn shard_matrix_every_leg_ends_well() {
    let k_env = std::env::var("SHARD_MATRIX_K")
        .ok()
        .and_then(|s| s.parse::<usize>().ok());
    let fault_env = std::env::var("SHARD_MATRIX_FAULT").ok();
    let seed: u64 = std::env::var("SHARD_MATRIX_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1101);

    let ks: Vec<usize> = match k_env {
        Some(k) => vec![k],
        None => vec![2, 4, 8],
    };
    let faults: Vec<&str> = match fault_env.as_deref() {
        Some(f) => vec![f],
        None => ALL_FAULTS.to_vec(),
    };

    let data = uniform(1 << 17, 0x5bad);
    let rank = 77_777;
    let expected = reference_select(&data, rank).unwrap();
    let pool = ThreadPool::new(2);
    let arch = v100();

    for &k in &ks {
        for fault in &faults {
            // The injected fault always lands on a real shard.
            let victim = k - 1;
            let (cfg, scfg, plan) = match *fault {
                "launch" => (
                    SampleSelectConfig::default(),
                    ShardConfig::default().with_shards(k),
                    ShardFaults::default().with_plan(
                        victim,
                        FaultPlan::new(seed)
                            .launch_failures(0.3)
                            .max_launch_failures(3),
                    ),
                ),
                "bitflip" => (
                    SampleSelectConfig::default().with_verify(VerifyPolicy::Paranoid),
                    ShardConfig::default().with_shards(k),
                    ShardFaults::default().with_plan(
                        victim,
                        FaultPlan::new(seed).bitflips(1.0).max_corruptions(2),
                    ),
                ),
                "latency" => (
                    SampleSelectConfig::default(),
                    ShardConfig::default().with_shards(k).with_hedge(true),
                    ShardFaults::default()
                        .with_plan(victim, FaultPlan::new(seed).latency_spikes(1.0, 50.0)),
                ),
                "shard-kill" => (
                    SampleSelectConfig::default(),
                    ShardConfig::default()
                        .with_shards(k)
                        .with_recovery_budget(1),
                    ShardFaults::default().kill_shard(victim, 1),
                ),
                "shard-kill-degraded" => (
                    SampleSelectConfig::default(),
                    ShardConfig::default()
                        .with_shards(k)
                        .with_recovery_budget(0),
                    ShardFaults::default().kill_shard(victim, 1),
                ),
                other => panic!("unknown SHARD_MATRIX_FAULT `{other}`"),
            };

            let res = sharded_select(&arch, &pool, &data, rank, &cfg, &scfg, &plan)
                .unwrap_or_else(|e| panic!("K={k} fault={fault} seed={seed} errored: {e}"));

            match *fault {
                "shard-kill-degraded" => match res.outcome {
                    Outcome::Approximate { rank_error, .. } => {
                        assert_eq!(
                            rank_error, res.report.lost_elements,
                            "K={k} fault={fault}: rank error must equal the lost candidates"
                        );
                        assert_eq!(res.report.quorum_degradations, 1);
                    }
                    Outcome::Exact(_) => panic!(
                        "K={k} fault={fault} seed={seed}: degraded run must tag its \
                         result approximate, never claim exactness"
                    ),
                },
                _ => {
                    assert_eq!(
                        res.outcome,
                        Outcome::Exact(expected),
                        "K={k} fault={fault} seed={seed} must recover the exact answer"
                    );
                }
            }
        }
    }
}

/// The degraded leg's approximate answer is not just tagged — its
/// reported achieved rank is truthful: it equals the value's below-count
/// over the surviving shards' partitions, re-derived here from scratch.
#[test]
fn degraded_answers_report_truthful_ranks() {
    use gpu_selection::sampleselect::ShardTopology;

    let data = uniform(1 << 16, 0xdead);
    let rank = 30_000;
    let pool = ThreadPool::new(2);
    let res = sharded_select(
        &v100(),
        &pool,
        &data,
        rank,
        &SampleSelectConfig::default(),
        &ShardConfig::default()
            .with_shards(4)
            .with_recovery_budget(0),
        &ShardFaults::default().kill_shard(1, 1),
    )
    .unwrap();
    match res.outcome {
        Outcome::Approximate {
            value,
            achieved_rank,
            rank_error,
        } => {
            // Shard 1 of the even 4-way topology died; its partition is
            // excluded from the survivor rank count.
            let dead = ShardTopology::even(data.len(), 4).range(1);
            let below = data
                .iter()
                .enumerate()
                .filter(|&(i, &x)| !dead.contains(&i) && x < value)
                .count() as u64;
            assert_eq!(
                achieved_rank, below,
                "achieved rank must be the value's below-count over survivors"
            );
            assert_eq!(rank_error, res.report.lost_elements);
        }
        Outcome::Exact(_) => panic!("budget 0 with a kill must degrade"),
    }
}
