//! Invariants of the simulation layer: bucket counts partition the
//! input, prefix sums are consistent, the filter output is a
//! permutation of its bucket, timelines are well-formed, and runs are
//! deterministic for a fixed seed.

use gpu_selection::datagen::WorkloadSpec;
use gpu_selection::gpu_sim::arch::{k20xm, v100};
use gpu_selection::gpu_sim::{Device, LaunchOrigin};
use gpu_selection::hpc_par::ThreadPool;
use gpu_selection::sampleselect::count::count_kernel;
use gpu_selection::sampleselect::filter::filter_kernel;
use gpu_selection::sampleselect::reduce::reduce_kernel;
use gpu_selection::sampleselect::rng::SplitMix64;
use gpu_selection::sampleselect::splitter::sample_kernel;
use gpu_selection::sampleselect::{sample_select_on_device, SampleSelectConfig};

const N: usize = 200_000;

fn workload() -> Vec<f32> {
    WorkloadSpec::uniform(N, 99).instantiate::<f32>(0).data
}

#[test]
fn counts_partition_the_input() {
    let pool = ThreadPool::new(2);
    let mut device = Device::new(v100(), &pool);
    let data = workload();
    let cfg = SampleSelectConfig::default();
    let mut rng = SplitMix64::new(1);
    let tree = sample_kernel(&mut device, &data, &cfg, &mut rng, LaunchOrigin::Host).unwrap();
    let count = count_kernel(&mut device, &data, &tree, &cfg, true, LaunchOrigin::Host);
    // Total count equals n.
    assert_eq!(count.total(), N as u64);
    // Each element's oracle matches a fresh lookup.
    let oracles = count.oracles.as_ref().unwrap();
    for (i, &x) in data.iter().enumerate().step_by(97) {
        assert_eq!(oracles.get(i), tree.lookup(x));
    }
    // Counts match a sequential histogram.
    let mut expected = vec![0u64; tree.num_buckets()];
    for &x in &data {
        expected[tree.lookup(x) as usize] += 1;
    }
    assert_eq!(count.counts, expected);
}

#[test]
fn filter_output_is_bucket_permutation_and_order_respects_bounds() {
    let pool = ThreadPool::new(4);
    let mut device = Device::new(v100(), &pool);
    let data = workload();
    let cfg = SampleSelectConfig::default();
    let mut rng = SplitMix64::new(2);
    let tree = sample_kernel(&mut device, &data, &cfg, &mut rng, LaunchOrigin::Host).unwrap();
    let count = count_kernel(&mut device, &data, &tree, &cfg, true, LaunchOrigin::Host);
    let red = reduce_kernel(&mut device, &count, LaunchOrigin::Device);

    for bucket in [0u32, 100, 255] {
        let out = filter_kernel(
            &mut device,
            &data,
            &count,
            &red,
            bucket..bucket + 1,
            &cfg,
            LaunchOrigin::Device,
        );
        assert_eq!(out.len() as u64, count.counts[bucket as usize]);
        // multiset equality with the bucket's members
        let mut got: Vec<u32> = out.iter().map(|x| x.to_bits()).collect();
        let mut expected: Vec<u32> = data
            .iter()
            .filter(|&&x| tree.lookup(x) == bucket)
            .map(|x| x.to_bits())
            .collect();
        got.sort_unstable();
        expected.sort_unstable();
        assert_eq!(got, expected, "bucket {bucket}");
        // all values within the bucket bounds
        if let Some(lo) = tree.bucket_lower(bucket as usize) {
            assert!(out.iter().all(|&x| x >= lo));
        }
        if let Some(hi) = tree.bucket_lower(bucket as usize + 1) {
            assert!(out.iter().all(|&x| x < hi));
        }
    }
}

#[test]
fn timeline_is_well_formed() {
    let pool = ThreadPool::new(2);
    let mut device = Device::new(v100(), &pool);
    let data = workload();
    let cfg = SampleSelectConfig::default();
    sample_select_on_device(&mut device, &data, N / 2, &cfg).unwrap();
    let records = device.records();
    assert!(!records.is_empty());
    let mut prev_end = gpu_selection::gpu_sim::SimTime::ZERO;
    for rec in records {
        // durations are non-negative and equal the breakdown max
        assert!(rec.duration.as_ns() >= 0.0);
        assert!((rec.breakdown.total().as_ns() - rec.duration.as_ns()).abs() < 1e-9);
        // kernels execute in order on the simulated clock
        assert!(rec.start.as_ns() >= prev_end.as_ns(), "kernel {}", rec.name);
        prev_end = rec.start + rec.duration;
        // the first kernel comes from the host, with host launch latency
        assert!(rec.launch_overhead.as_ns() > 0.0);
    }
    assert_eq!(records[0].origin, LaunchOrigin::Host);
    assert!((device.total_time() - prev_end).as_ns().abs() < 1e-9);
}

#[test]
fn simulated_time_is_deterministic() {
    let pool = ThreadPool::new(4);
    let data = workload();
    let cfg = SampleSelectConfig::default();
    let run = || {
        let mut device = Device::new(v100(), &pool);
        let r = sample_select_on_device(&mut device, &data, 1234, &cfg).unwrap();
        (r.value.to_bits(), r.report.total_time.as_ns())
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0);
    assert!(
        (a.1 - b.1).abs() < 1e-9,
        "simulated time must not depend on host thread scheduling"
    );
}

#[test]
fn throughput_grows_with_input_size() {
    // Launch overheads dominate small inputs; throughput must rise with
    // n (the left-to-right rise of every curve in Figs. 7/8).
    let pool = ThreadPool::new(4);
    let cfg = SampleSelectConfig::default();
    let mut last = 0.0;
    for exp in [14usize, 17, 20] {
        let w = WorkloadSpec::uniform(1 << exp, 5).instantiate::<f32>(0);
        let mut device = Device::new(v100(), &pool);
        let tp = sample_select_on_device(&mut device, &w.data, w.rank, &cfg)
            .unwrap()
            .report
            .throughput();
        assert!(tp > last, "throughput at 2^{exp} = {tp} <= {last}");
        last = tp;
    }
}

#[test]
fn oracle_traffic_scales_with_element_count() {
    // The count kernel's write traffic is one oracle byte per element
    // (§IV-B: "we use a single byte to store each oracle").
    let pool = ThreadPool::new(2);
    let mut device = Device::new(v100(), &pool);
    let data = workload();
    let cfg = SampleSelectConfig::default();
    let mut rng = SplitMix64::new(3);
    let tree = sample_kernel(&mut device, &data, &cfg, &mut rng, LaunchOrigin::Host).unwrap();
    device.reset();
    count_kernel(&mut device, &data, &tree, &cfg, true, LaunchOrigin::Host);
    let with_write = device.records()[0].cost.global_write_bytes;
    device.reset();
    count_kernel(&mut device, &data, &tree, &cfg, false, LaunchOrigin::Host);
    let without_write = device.records()[0].cost.global_write_bytes;
    assert_eq!(with_write - without_write, N as u64);
}

#[test]
fn memory_volume_is_one_plus_epsilon_n() {
    // §IV-A: SampleSelect needs (1+eps)n element reads/writes with small
    // eps, vs QuickSelect's 2n. Verify the read volume of a full run.
    let pool = ThreadPool::new(4);
    let data = WorkloadSpec::uniform(1 << 20, 6).instantiate::<f32>(0).data;
    let cfg = SampleSelectConfig::default();
    let mut device = Device::new(v100(), &pool);
    sample_select_on_device(&mut device, &data, 1 << 19, &cfg).unwrap();
    let elem_reads: u64 = device
        .records()
        .iter()
        .map(|r| r.cost.global_read_bytes)
        .sum();
    // total global reads, in element units (f32): includes the oracle
    // stream of the filter (1 byte/elem) and level-2 work.
    let elements_equivalent = elem_reads as f64 / 4.0 / (1 << 20) as f64;
    assert!(
        elements_equivalent < 1.6,
        "read volume {elements_equivalent:.2}x n exceeds (1+eps)"
    );
}

#[test]
fn k20_and_v100_reports_differ_only_in_time() {
    let pool = ThreadPool::new(2);
    let data = workload();
    let cfg = SampleSelectConfig::default();
    let mut dk = Device::new(k20xm(), &pool);
    let mut dv = Device::new(v100(), &pool);
    let rk = sample_select_on_device(&mut dk, &data, 777, &cfg).unwrap();
    let rv = sample_select_on_device(&mut dv, &data, 777, &cfg).unwrap();
    assert_eq!(rk.value, rv.value);
    assert_eq!(rk.report.levels, rv.report.levels);
    assert_ne!(
        rk.report.total_time.as_ns(),
        rv.report.total_time.as_ns(),
        "same functional run, different simulated hardware"
    );
}
