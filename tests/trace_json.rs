//! Strict JSON-shape validation of the Chrome/Perfetto trace export.
//!
//! Replaces the old "braces balance" smoke check with a real
//! recursive-descent parse (`gpu_sim::jsonv`) plus structural
//! assertions, covering the cases that actually bit us: counter
//! tracks, faulted launches, and sanitizer-flagged kernels.

use gpu_selection::gpu_sim::arch::v100;
use gpu_selection::gpu_sim::jsonv::{self, Json};
use gpu_selection::gpu_sim::{
    chrome_trace, chrome_trace_with_counters, Device, FaultPlan, LaunchConfig, LaunchOrigin,
    SanitizerConfig,
};
use gpu_selection::hpc_par::ThreadPool;
use gpu_selection::sampleselect::rng::SplitMix64;
use gpu_selection::sampleselect::{resilient_select_on_device, ObsSession, ResilienceConfig};
use gpu_selection::sampleselect::{sample_select_on_device, SampleSelectConfig};

fn uniform(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = SplitMix64::new(seed);
    (0..n).map(|_| rng.next_f64() as f32).collect()
}

/// Every event in a trace array must carry the Chrome trace-event
/// required fields with the right JSON types.
fn validate_events(doc: &Json) -> (usize, usize) {
    let events = doc.as_arr().expect("trace is a JSON array");
    let mut complete = 0;
    let mut counters = 0;
    for e in events {
        let obj = e.as_obj().expect("event is an object");
        let ph = obj["ph"].as_str().expect("ph is a string");
        assert!(obj["name"].as_str().is_some(), "name is a string");
        assert!(obj["ts"].as_num().is_some(), "ts is a number");
        assert!(obj["pid"].as_num().is_some(), "pid is a number");
        match ph {
            "X" => {
                complete += 1;
                assert!(obj["dur"].as_num().is_some(), "complete event has dur");
                assert!(obj["tid"].as_num().is_some(), "complete event has tid");
                let args = obj["args"].as_obj().expect("args object");
                assert!(args["blocks"].as_num().is_some());
                assert!(args["bottleneck"].as_str().is_some());
            }
            "C" => {
                counters += 1;
                assert_eq!(obj["cat"].as_str(), Some("counter"));
                let args = obj["args"].as_obj().expect("counter args");
                assert!(args["value"].as_num().is_some(), "counter carries value");
            }
            other => panic!("unexpected event phase {other:?}"),
        }
    }
    (complete, counters)
}

#[test]
fn clean_run_trace_parses_strictly() {
    let data = uniform(64_000, 0x7ace);
    let pool = ThreadPool::new(2);
    let mut device = Device::new(v100(), &pool);
    sample_select_on_device(&mut device, &data, 32_000, &SampleSelectConfig::default()).unwrap();

    let json = chrome_trace(&device);
    let doc = jsonv::parse(&json).expect("clean trace is strict JSON");
    let (complete, counters) = validate_events(&doc);
    assert!(complete >= 2, "launch-overhead + kernel events present");
    assert_eq!(counters, 0, "no counter tracks without a session");
}

#[test]
fn counter_tracks_round_trip_through_the_validator() {
    let data = uniform(64_000, 0x7ac1);
    let pool = ThreadPool::new(2);
    let mut device = Device::new(v100(), &pool);
    let session = ObsSession::start();
    sample_select_on_device(&mut device, &data, 32_000, &SampleSelectConfig::default()).unwrap();
    let report = session.finish();

    let json = chrome_trace_with_counters(&device, &report.tracks);
    let doc = jsonv::parse(&json).expect("trace with counters is strict JSON");
    let (_, counters) = validate_events(&doc);
    assert!(counters > 0, "session sampled at least one counter track");

    // Track names survive into the event stream.
    let names: Vec<&str> = doc
        .as_arr()
        .unwrap()
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("C"))
        .map(|e| e.get("name").and_then(Json::as_str).unwrap())
        .collect();
    assert!(names.contains(&"bucket_occupancy"), "got {names:?}");
}

#[test]
fn faulted_run_trace_parses_and_carries_fault_fields() {
    let data = uniform(80_000, 0xfa57);
    let pool = ThreadPool::new(2);
    let mut device = Device::new(v100(), &pool);
    device.set_fault_plan(
        FaultPlan::new(3)
            .launch_failures(0.3)
            .max_launch_failures(4),
    );
    resilient_select_on_device(
        &mut device,
        &data,
        40_000,
        &SampleSelectConfig::default(),
        &ResilienceConfig::default(),
    )
    .unwrap();

    let json = chrome_trace(&device);
    let doc = jsonv::parse(&json).expect("faulted trace is strict JSON");
    validate_events(&doc);
    let faults: Vec<&Json> = doc
        .as_arr()
        .unwrap()
        .iter()
        .filter(|e| e.get("args").and_then(|a| a.get("fault")).is_some())
        .collect();
    assert!(!faults.is_empty(), "fault annotations survive export");
    // The fix under test: the launch-overhead event of a faulted launch
    // is annotated too, so both halves of every faulted launch agree.
    assert!(
        faults.iter().any(|e| e
            .get("cat")
            .and_then(Json::as_str)
            .is_some_and(|c| c == "launch-overhead")),
        "launch-overhead half of a faulted launch carries the fault"
    );
}

#[test]
fn sanitizer_flagged_run_trace_parses_with_split_fields() {
    let pool = ThreadPool::new(2);
    let mut device = Device::new(v100(), &pool);
    device.set_sanitizer(SanitizerConfig {
        max_findings: 1,
        ..SanitizerConfig::full()
    });
    // Deliberate same-address races: several findings, so with
    // max_findings=1 the report truncates.
    let buf = device.scatter_buffer::<u32>(1, "racy-out");
    unsafe {
        buf.write(0, 1);
        buf.write(0, 2);
        buf.write(0, 3);
    }
    drop(buf);
    let cfg = LaunchConfig {
        blocks: 1,
        threads_per_block: 32,
        shared_mem_bytes: 0,
    };
    device.launch("racy", cfg, LaunchOrigin::Host, |_, _| {});

    let json = chrome_trace(&device);
    let doc = jsonv::parse(&json).expect("sanitizer-flagged trace is strict JSON");
    let events = doc.as_arr().unwrap();
    let flagged: Vec<&Json> = events
        .iter()
        .filter(|e| {
            e.get("args")
                .and_then(|a| a.get("sanitizer_findings"))
                .is_some()
        })
        .collect();
    assert!(!flagged.is_empty(), "sanitizer annotations exported");
    // The fix under test: truncation is its own field, not folded into
    // the finding count.
    for e in &flagged {
        let args = e.get("args").unwrap();
        let findings = args
            .get("sanitizer_findings")
            .and_then(Json::as_num)
            .unwrap();
        let truncated = args
            .get("sanitizer_truncated")
            .and_then(Json::as_num)
            .unwrap_or(0.0);
        assert!(findings >= 1.0);
        if truncated > 0.0 {
            return; // saw a truncated report with the split field — done
        }
    }
    panic!("expected at least one truncated sanitizer report (max_findings=1)");
}
