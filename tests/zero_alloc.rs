//! Allocation accounting for the zero-allocation hot path.
//!
//! A counting `#[global_allocator]` shim proves the PR's central
//! property: with the device buffer pool armed and a warm
//! [`SelectWorkspace`], the steady-state recursion kernels (sample →
//! count → reduce → filter at level >= 1) perform **zero** heap
//! allocations, and a full driver query allocates only the bounded
//! report-assembly footprint.
//!
//! Everything runs inside one `#[test]` so no sibling test thread can
//! allocate while the counter is armed.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use gpu_selection::gpu_sim::arch::v100;
use gpu_selection::gpu_sim::{Device, LaunchOrigin};
use gpu_selection::hpc_par::simd;
use gpu_selection::hpc_par::ThreadPool;
use gpu_selection::sampleselect::count::{count_kernel_scoped, OracleBuf};
use gpu_selection::sampleselect::filter::filter_kernel_scoped;
use gpu_selection::sampleselect::instrument::SelectReport;
use gpu_selection::sampleselect::obs;
use gpu_selection::sampleselect::radix_select_into;
use gpu_selection::sampleselect::recursion::sample_select_with_workspace;
use gpu_selection::sampleselect::reduce::reduce_kernel;
use gpu_selection::sampleselect::rng::SplitMix64;
use gpu_selection::sampleselect::splitter::sample_kernel_into;
use gpu_selection::sampleselect::{SampleSelectConfig, SelectWorkspace};

/// Counts every heap allocation (and reallocation) while armed.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static ARMED: AtomicBool = AtomicBool::new(false);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn counted<R>(f: impl FnOnce() -> R) -> (R, u64) {
    ALLOCS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    let out = f();
    ARMED.store(false, Ordering::SeqCst);
    (out, ALLOCS.load(Ordering::SeqCst))
}

fn uniform(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = SplitMix64::new(seed);
    (0..n).map(|_| rng.next_f64() as f32).collect()
}

/// One full recursion level driven through the kernel-layer API exactly
/// as `sample_select_with_workspace` drives it, returning the size of
/// the filtered bucket. Every pooled buffer is recycled at the end, as
/// the driver does between levels.
fn one_level(
    device: &mut Device,
    ws: &mut SelectWorkspace<f32>,
    data: &[f32],
    cfg: &SampleSelectConfig,
) -> usize {
    // Fresh RNG per pass: identical splitters, buckets, and buffer
    // shapes, so the warm pool always has a fitting allocation.
    let mut rng = SplitMix64::new(cfg.seed);
    sample_kernel_into(device, data, cfg, &mut rng, LaunchOrigin::Host, ws)
        .expect("non-degenerate sample");
    let tree = ws.tree().expect("tree built");
    let count = count_kernel_scoped(
        device,
        data,
        tree,
        cfg,
        true,
        LaunchOrigin::Host,
        &ws.scratch,
    );
    let red = reduce_kernel(device, &count, LaunchOrigin::Device);
    let bucket = red.bucket_for_rank((data.len() / 2) as u64) as u32;
    let out = filter_kernel_scoped(
        device,
        data,
        &count,
        &red,
        bucket..bucket + 1,
        cfg,
        LaunchOrigin::Device,
        &ws.scratch,
    );
    let kept = out.len();
    device.recycle_vec("filter-out", out);
    device.recycle_vec("counts", count.counts);
    device.recycle_vec("count-partials", count.partials);
    match count.oracles {
        Some(OracleBuf::U8(v)) => device.recycle_vec("oracles", v),
        Some(OracleBuf::U16(v)) => device.recycle_vec("oracles", v),
        None => {}
    }
    device.recycle_vec("reduce-offsets", red.offsets);
    device.recycle_vec("bucket-offsets", red.bucket_offsets);
    kept
}

#[test]
fn steady_state_hot_path_does_not_allocate() {
    // Single-threaded pool: the parallel primitives run inline, so the
    // counter observes the kernel bodies themselves rather than task
    // spawning (which real GPU streams amortize the same way).
    let pool = ThreadPool::new(1);
    let mut device = Device::new(v100(), &pool);
    device.enable_buffer_pool();
    let cfg = SampleSelectConfig::default();
    let data = uniform(1 << 16, 0xa110c);

    let mut ws: SelectWorkspace<f32> = SelectWorkspace::new();

    // Two cold passes warm the workspace, the device pool, and the
    // record buffer's capacity.
    let k1 = one_level(&mut device, &mut ws, &data, &cfg);
    device.reset();
    let k2 = one_level(&mut device, &mut ws, &data, &cfg);
    assert_eq!(k1, k2, "identical seed must reproduce the pass");
    device.reset();

    // Steady state: an entire sample/count/reduce/filter level must not
    // touch the heap at all.
    let before = device.buffer_pool_stats().expect("pool armed");
    let (k3, allocs) = counted(|| one_level(&mut device, &mut ws, &data, &cfg));
    assert_eq!(k3, k1);
    assert_eq!(
        allocs, 0,
        "steady-state recursion level allocated {allocs} times"
    );
    let after = device.buffer_pool_stats().expect("pool armed");
    assert_eq!(
        after.misses, before.misses,
        "warm pool must serve every steady-state lease"
    );
    assert!(after.hits > before.hits, "the pass leased from the pool");

    // Every SIMD dispatch level rides the same zero-allocation budget:
    // the compress staging, key mirrors, and descent buffers live on
    // the stack or in pre-sized workspace vectors, so forcing the
    // scalar fallback or AVX2 must not add a single heap allocation —
    // and must reproduce the exact same bucket size.
    for level in [
        simd::SimdLevel::Off,
        simd::SimdLevel::Scalar,
        simd::SimdLevel::Avx2,
    ] {
        if level == simd::SimdLevel::Avx2 && !simd::avx2_available() {
            continue;
        }
        device.reset();
        simd::force_level(Some(level));
        let (k_lvl, lvl_allocs) = counted(|| one_level(&mut device, &mut ws, &data, &cfg));
        simd::force_level(None);
        assert_eq!(k_lvl, k1, "dispatch level {level} must be bit-identical");
        assert_eq!(
            lvl_allocs, 0,
            "steady-state level at dispatch {level} allocated {lvl_allocs} times"
        );
    }
    device.reset();

    // Full driver query: only the bounded report-assembly footprint
    // (kernel summaries + name strings + the tail-launch queue) may
    // allocate once the workspace and pool are warm.
    let r_cold = sample_select_with_workspace(&mut device, &data, 1 << 15, &cfg, &mut ws)
        .expect("select succeeds");
    device.reset();
    let (r_warm, query_allocs) = counted(|| {
        sample_select_with_workspace(&mut device, &data, 1 << 15, &cfg, &mut ws)
            .expect("select succeeds")
    });
    assert_eq!(r_cold.value, r_warm.value);
    assert!(
        query_allocs <= 32,
        "warm full query allocated {query_allocs} times (report assembly \
         should need well under 32)"
    );

    // RadixSelect: the promoted backend's warm path is *stricter* than
    // SampleSelect's — with a warm workspace, pool, and a caller-owned
    // report shell, an ENTIRE radix query (digit count, reduce, filter
    // recursion, base-case sort, report re-aggregation) performs zero
    // heap allocations. This is the bugfix leg for the baselines digit
    // kernel that allocated `vec![0u64; 256]` per block per pass.
    let mut radix_ws: SelectWorkspace<f32> = SelectWorkspace::new();
    let mut radix_report = SelectReport::empty("radixselect");
    let rank = 1 << 15;
    // Two cold queries warm the workspace, the pool shapes, the record
    // buffer, and the report's kernel-summary slots.
    let v_cold = radix_select_into(
        &mut device,
        &data,
        rank,
        &cfg,
        &mut radix_ws,
        &mut radix_report,
    )
    .expect("radix select succeeds");
    device.reset();
    let v_warm_check = radix_select_into(
        &mut device,
        &data,
        rank,
        &cfg,
        &mut radix_ws,
        &mut radix_report,
    )
    .expect("radix select succeeds");
    assert_eq!(v_cold, v_warm_check);
    device.reset();

    let pool_before = device.buffer_pool_stats().expect("pool armed");
    let (v_warm, radix_allocs) = counted(|| {
        radix_select_into(
            &mut device,
            &data,
            rank,
            &cfg,
            &mut radix_ws,
            &mut radix_report,
        )
        .expect("radix select succeeds")
    });
    assert_eq!(v_warm, v_cold);
    assert_eq!(
        radix_allocs, 0,
        "warm radix query allocated {radix_allocs} times (must be zero)"
    );
    let pool_after = device.buffer_pool_stats().expect("pool armed");
    assert_eq!(
        pool_after.misses, pool_before.misses,
        "warm pool must serve every radix lease"
    );
    assert!(
        pool_after.hits > pool_before.hits,
        "the radix query leased from the pool"
    );
    assert_eq!(radix_report.algorithm, "radixselect");
    assert!(radix_report.total_launches() > 0);
    device.reset();

    // With no ObsSession installed, every observability entry point the
    // drivers call on the hot path must be a branch-and-return: zero
    // heap allocations, zero pool traffic.
    assert!(!obs::enabled(), "no session may be active in this test");
    let (_, obs_allocs) = counted(|| {
        for i in 0..1000u64 {
            obs::counter_add(obs::Counter::KernelLaunches, 1);
            obs::gauge_set(obs::Gauge::BucketOccupancy, i);
            obs::observe(obs::Histogram::KernelDurationNs, i * 97);
            obs::span_enter(obs::SpanKind::Kernel, "noop", i, i as f64);
            obs::track_sample(obs::Track::BucketOccupancy, i as f64, 0.5);
            obs::span_exit(i as f64);
            obs::absorb_device(&device);
            obs::pool_sample(&device);
            let _ = obs::span_depth();
        }
    });
    assert_eq!(
        obs_allocs, 0,
        "disabled observability allocated {obs_allocs} times across 9000 calls"
    );
}
