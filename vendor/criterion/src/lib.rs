//! Offline stand-in for the slice of `criterion` this workspace uses.
//!
//! Benchmarks compile and run unchanged, but measurement is a simple
//! fixed-sample mean/min/max over wall-clock time — no statistical
//! analysis, outlier detection, or HTML reports. Sample counts are kept
//! intentionally tiny so `cargo bench` completes quickly on the
//! simulated workloads.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How many timed samples a group takes per benchmark (upstream
/// `sample_size` is respected but capped to this).
const MAX_SAMPLES: usize = 5;

/// Top-level benchmark driver, created by `criterion_group!`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: MAX_SAMPLES,
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("");
        group.bench_function(id, f);
        group.finish();
    }
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// Conversion into a [`BenchmarkId`] (accepts plain strings too).
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            id: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

/// A named group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.clamp(1, MAX_SAMPLES);
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id();
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut bencher = Bencher {
                elapsed: Duration::ZERO,
                iterations: 0,
            };
            f(&mut bencher);
            if bencher.iterations > 0 {
                samples.push(bencher.elapsed.as_secs_f64() / bencher.iterations as f64);
            }
        }
        let label = if self.name.is_empty() {
            id.id.clone()
        } else {
            format!("{}/{}", self.name, id.id)
        };
        if samples.is_empty() {
            println!("{label}: no iterations recorded");
            return self;
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(0.0f64, f64::max);
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => format!("  {:.3e} elem/s", n as f64 / mean),
            Some(Throughput::Bytes(n)) => format!("  {:.3e} B/s", n as f64 / mean),
            None => String::new(),
        };
        println!(
            "{label}: time [{} {} {}]{rate}",
            fmt_time(min),
            fmt_time(mean),
            fmt_time(max),
        );
        self
    }

    pub fn finish(self) {}
}

fn fmt_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.2} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:.3} s")
    }
}

/// Batch-size hint for `iter_batched` (ignored by the stand-in).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
}

/// Timing handle passed to each benchmark closure.
pub struct Bencher {
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    /// Time repeated calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        black_box(routine());
        self.elapsed += start.elapsed();
        self.iterations += 1;
    }

    /// Time `routine` on fresh inputs from `setup`; setup time is not
    /// counted.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        self.elapsed += start.elapsed();
        self.iterations += 1;
    }
}

/// Collects benchmark functions into a single runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim-smoke");
        group.throughput(Throughput::Elements(64));
        group.sample_size(2);
        group.bench_function(BenchmarkId::new("sum", 64), |b| {
            b.iter(|| (0..64u64).sum::<u64>())
        });
        group.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u32; 64],
                |v| v.iter().sum::<u32>(),
                BatchSize::SmallInput,
            )
        });
        group.finish();
    }

    criterion_group!(smoke, sample_bench);

    #[test]
    fn group_macro_runs() {
        smoke();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).id, "f/32");
        assert_eq!(BenchmarkId::from_parameter("1<<20").id, "1<<20");
    }
}
