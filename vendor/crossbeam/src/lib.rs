//! Offline stand-in for the slice of `crossbeam` this workspace uses:
//! an unbounded MPMC channel with clone-able senders and receivers and
//! disconnect-on-last-drop semantics.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Inner<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        inner: Mutex<Inner<T>>,
        ready: Condvar,
    }

    /// Sending half of an unbounded channel.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}

    /// Error returned by [`Receiver::recv`] when the channel is empty
    /// and all senders are gone.
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                chan: Arc::clone(&chan),
            },
            Receiver { chan },
        )
    }

    fn lock<T>(chan: &Chan<T>) -> std::sync::MutexGuard<'_, Inner<T>> {
        match chan.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    impl<T> Sender<T> {
        /// Enqueue a message; fails only if every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut inner = lock(&self.chan);
            if inner.receivers == 0 {
                return Err(SendError(value));
            }
            inner.queue.push_back(value);
            drop(inner);
            self.chan.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            lock(&self.chan).senders += 1;
            Self {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = lock(&self.chan);
            inner.senders -= 1;
            let disconnected = inner.senders == 0;
            drop(inner);
            if disconnected {
                self.chan.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives; fails once the channel is
        /// empty and every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = lock(&self.chan);
            loop {
                if let Some(value) = inner.queue.pop_front() {
                    return Ok(value);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = match self.chan.ready.wait(inner) {
                    Ok(g) => g,
                    Err(p) => p.into_inner(),
                };
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            lock(&self.chan).receivers += 1;
            Self {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            lock(&self.chan).receivers -= 1;
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_roundtrip() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
        }

        #[test]
        fn recv_fails_after_last_sender_drops() {
            let (tx, rx) = unbounded::<u32>();
            let tx2 = tx.clone();
            tx2.send(9).unwrap();
            drop(tx);
            drop(tx2);
            assert_eq!(rx.recv(), Ok(9));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_fails_after_last_receiver_drops() {
            let (tx, rx) = unbounded::<u32>();
            drop(rx);
            assert!(tx.send(5).is_err());
        }

        #[test]
        fn mpmc_across_threads() {
            let (tx, rx) = unbounded::<usize>();
            let consumers: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    std::thread::spawn(move || {
                        let mut got = 0usize;
                        while rx.recv().is_ok() {
                            got += 1;
                        }
                        got
                    })
                })
                .collect();
            drop(rx);
            for i in 0..1000 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let total: usize = consumers.into_iter().map(|h| h.join().unwrap()).sum();
            assert_eq!(total, 1000);
        }
    }
}
