//! Offline stand-in for the small slice of `parking_lot` this workspace
//! uses: non-poisoning `Mutex` (whose `lock` returns the guard directly)
//! and a `Condvar` that waits on a `MutexGuard` by mutable reference.
//!
//! Backed by `std::sync`; poisoning is recovered transparently to match
//! parking_lot's non-poisoning semantics.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion primitive. Unlike `std::sync::Mutex`, `lock`
/// returns the guard directly (no poisoning `Result`).
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { inner: Some(guard) }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_lock() {
            Ok(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            Err(_) => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// RAII guard returned by [`Mutex::lock`].
///
/// The inner `std` guard lives in an `Option` so [`Condvar::wait`] can
/// temporarily take it (std's `Condvar::wait` consumes the guard).
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during wait")
    }
}

/// A condition variable usable with [`MutexGuard`] by mutable reference,
/// parking_lot style.
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Block until notified. The guard is unlocked while waiting and
    /// re-acquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard taken during wait");
        let reacquired = match self.inner.wait(std_guard) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        guard.inner = Some(reacquired);
    }

    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        // std does not report the number of woken threads; callers in
        // this workspace ignore the count.
        0
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn condvar_roundtrip() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut ready = m.lock();
        while !*ready {
            cv.wait(&mut ready);
        }
        drop(ready);
        h.join().unwrap();
    }

    #[test]
    fn poison_is_recovered() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }
}
