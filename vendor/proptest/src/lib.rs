//! Offline stand-in for the slice of `proptest` this workspace uses:
//! the `proptest!` macro with `pat in strategy` arguments, the
//! `prop_assert*`/`prop_assume!` macros, range and `vec` strategies,
//! `any::<T>()`, and the `prop::num::f32`/`f64` class strategies.
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! seed and case number instead of a minimized input), and generation is
//! deterministic per test (seeded from the test's module path), so runs
//! are reproducible without a persistence file.

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A source of values for one `proptest!` argument.
    pub trait Strategy {
        type Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_range_int {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = self.end.wrapping_sub(self.start) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }

    impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_range_float {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let unit = rng.unit_f64() as $t;
                    let v = self.start + unit * (self.end - self.start);
                    if v >= self.end { self.start } else { v }
                }
            }
        )*};
    }

    impl_range_float!(f32, f64);
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "anything goes" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    // Full bit patterns: NaNs and infinities included, as upstream's
    // `any::<f32>()` would produce. Tests filter with `prop_assume!`.
    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            f32::from_bits(rng.next_u64() as u32)
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            f64::from_bits(rng.next_u64())
        }
    }

    /// Strategy wrapper returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Half-open element-count range for [`vec`]; converts from an
    /// exact size or a `Range<usize>`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec`: a vector whose elements come from
    /// `element` and whose length lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod num {
    macro_rules! float_class_module {
        ($mod_name:ident, $float:ty, $bits:ty, $exp_max:expr, $mant_bits:expr) => {
            pub mod $mod_name {
                use crate::strategy::Strategy;
                use crate::test_runner::TestRng;

                /// Bitmask of IEEE float classes to draw from; combine
                /// with `|`. Matches upstream semantics: if neither
                /// `POSITIVE` nor `NEGATIVE` is included, positive
                /// values are implied.
                #[derive(Debug, Clone, Copy, PartialEq, Eq)]
                pub struct Any(u32);

                pub const POSITIVE: Any = Any(0x01);
                pub const NEGATIVE: Any = Any(0x02);
                pub const NORMAL: Any = Any(0x04);
                pub const SUBNORMAL: Any = Any(0x08);
                pub const ZERO: Any = Any(0x10);
                pub const INFINITE: Any = Any(0x20);

                impl std::ops::BitOr for Any {
                    type Output = Any;
                    fn bitor(self, rhs: Any) -> Any {
                        Any(self.0 | rhs.0)
                    }
                }

                impl Strategy for Any {
                    type Value = $float;
                    fn generate(&self, rng: &mut TestRng) -> $float {
                        let classes: Vec<u32> = [0x04u32, 0x08, 0x10, 0x20]
                            .iter()
                            .copied()
                            .filter(|c| self.0 & c != 0)
                            .collect();
                        assert!(
                            !classes.is_empty(),
                            "float-class strategy needs at least one value class"
                        );
                        let class = classes[rng.below(classes.len() as u64) as usize];
                        let negative = if self.0 & 0x02 != 0 {
                            // NEGATIVE present: mix signs only when
                            // POSITIVE is also present.
                            self.0 & 0x01 == 0 || rng.next_u64() & 1 == 1
                        } else {
                            false
                        };
                        let mant_mask: $bits = (1 << $mant_bits) - 1;
                        let magnitude: $bits = match class {
                            // normal: exponent in [1, max-1], any mantissa
                            0x04 => {
                                let exp = 1 + rng.below(($exp_max - 1) as u64) as $bits;
                                (exp << $mant_bits) | (rng.next_u64() as $bits & mant_mask)
                            }
                            // subnormal: exponent 0, mantissa != 0
                            0x08 => 1 + (rng.next_u64() as $bits % mant_mask),
                            0x10 => 0,
                            // infinity
                            _ => ($exp_max as $bits) << $mant_bits,
                        };
                        let sign: $bits = if negative {
                            1 << (<$bits>::BITS - 1)
                        } else {
                            0
                        };
                        <$float>::from_bits(magnitude | sign)
                    }
                }
            }
        };
    }

    float_class_module!(f32, f32, u32, 255u32, 23u32);
    float_class_module!(f64, f64, u64, 2047u64, 52u64);
}

pub mod test_runner {
    /// Per-test deterministic RNG (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_seed(seed: u64) -> Self {
            Self { state: seed }
        }

        /// Seed deterministically from the test's path so every test
        /// gets a distinct, stable stream.
        pub fn for_test(name: &str) -> Self {
            // FNV-1a
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            Self::from_seed(h)
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, bound)`; `bound == 0` returns 0.
        pub fn below(&mut self, bound: u64) -> u64 {
            if bound == 0 {
                return 0;
            }
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Runner configuration (`#![proptest_config(...)]`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The case violated an assumption and should not be counted.
        Reject(String),
        /// The property failed.
        Fail(String),
    }

    impl TestCaseError {
        pub fn reject(msg: impl Into<String>) -> Self {
            Self::Reject(msg.into())
        }

        pub fn fail(msg: impl Into<String>) -> Self {
            Self::Fail(msg.into())
        }
    }
}

/// Defines property tests: `fn name(pat in strategy, ...) { body }`
/// items become `#[test]` functions that run the body over generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config); $($rest)*);
    };
    (@impl ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let test_path = concat!(module_path!(), "::", stringify!($name));
            let mut rng = $crate::test_runner::TestRng::for_test(test_path);
            let mut passed = 0u32;
            let mut rejected = 0u32;
            let mut case = 0u32;
            while passed < config.cases {
                case += 1;
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                match outcome {
                    ::core::result::Result::Ok(()) => passed += 1,
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject(_),
                    ) => {
                        rejected += 1;
                        assert!(
                            rejected < 16 * config.cases + 1024,
                            "{test_path}: too many rejected cases ({rejected})"
                        );
                    }
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(msg),
                    ) => {
                        panic!("{test_path}: property failed at case {case}: {msg}");
                    }
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// Reject the current case (not counted against `cases`) unless the
/// condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        let __prop_cond: bool = $cond;
        if !__prop_cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Fail the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        let __prop_cond: bool = $cond;
        if !__prop_cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        let __prop_cond: bool = $cond;
        if !__prop_cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fail the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Fail the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` != `{:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Namespace mirror of upstream's `prop::` re-exports.
    pub mod prop {
        pub use crate::collection;
        pub use crate::num;
    }
}

#[cfg(test)]
mod tests {
    use crate::collection::vec;
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in -10i32..10, y in 0.0f64..1.0) {
            prop_assert!((-10..10).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_size(data in vec(0u32..5, 2..7)) {
            prop_assert!(data.len() >= 2 && data.len() < 7);
            prop_assert!(data.iter().all(|&v| v < 5));
        }

        #[test]
        fn exact_size_vec(data in vec(any::<i32>(), 4usize)) {
            prop_assert_eq!(data.len(), 4);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn float_classes_generate_members(
            x in prop::num::f32::NORMAL | prop::num::f32::ZERO | prop::num::f32::SUBNORMAL,
        ) {
            prop_assert!(x.is_finite());
            prop_assert!(x >= 0.0, "positive implied without sign flags: {}", x);
        }

        #[test]
        fn normal_class_is_normal(x in prop::num::f64::NORMAL) {
            prop_assert!(x.is_normal());
        }

        #[test]
        fn tuple_patterns_work((a, b) in (0u32..10).pair()) {
            prop_assert!(a < 10 && b < 10);
        }
    }

    // Helper used above: a minimal tuple strategy for the shim's own
    // tests (the workspace itself only uses single-value strategies).
    trait PairExt: Strategy + Sized {
        fn pair(self) -> PairStrategy<Self> {
            PairStrategy(self)
        }
    }
    impl<S: Strategy + Sized> PairExt for S {}

    struct PairStrategy<S>(S);
    impl<S: Strategy> Strategy for PairStrategy<S> {
        type Value = (S::Value, S::Value);
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.generate(rng), self.0.generate(rng))
        }
    }

    #[test]
    fn deterministic_generation_per_name() {
        let mut a = TestRng::for_test("same::name");
        let mut b = TestRng::for_test("same::name");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_test("other::name");
        assert_ne!(TestRng::for_test("same::name").next_u64(), c.next_u64());
    }
}
