//! Offline stand-in for the slice of `rand` 0.8 this workspace uses:
//! `rngs::StdRng`, `SeedableRng::seed_from_u64`, and the `Rng` methods
//! `gen`, `gen_range`, and `gen_bool`.
//!
//! The generator is a SplitMix64 — statistically fine for test-data
//! generation, deterministic for a given seed, and dependency-free. It
//! is NOT the same stream as upstream `StdRng`, so seeds produce
//! different (but still reproducible) data.

use std::ops::Range;

/// Types that can be created from a seed.
pub trait SeedableRng: Sized {
    /// Construct the generator from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling interface (subset of rand 0.8's `Rng`).
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Sample a value of `T` from its standard distribution
    /// (full range for integers, `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a half-open range.
    ///
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    /// Bernoulli trial with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

/// Standard-distribution sampling (rand's `Standard`).
pub trait Standard: Sized {
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

/// Uniform sampling over a half-open range (rand's `SampleUniform`).
pub trait SampleUniform: Sized {
    fn sample_range<R: Rng>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: Rng>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Uniform integer in `[0, bound)` by widening multiply (Lemire-style,
/// without the rejection step: the bias is < 2^-32 for the bounds used
/// in tests and benchmarks).
fn below<R: Rng>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = range.end.wrapping_sub(range.start) as u64;
                range.start.wrapping_add(below(rng, span) as $t)
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                let v = range.start + unit * (range.end - range.start);
                if v >= range.end { range.start } else { v }
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic stand-in for rand's `StdRng` (SplitMix64 core).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 16];
        for _ in 0..1_000 {
            let v = rng.gen_range(0usize..16);
            assert!(v < 16);
            seen[v] = true;
            let s = rng.gen_range(-50i32..50);
            assert!((-50..50).contains(&s));
        }
        assert!(seen.iter().all(|&b| b), "all residues should be hit");
    }

    #[test]
    fn mean_is_roughly_centered() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
